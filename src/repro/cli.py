"""Command-line entry point: regenerate any table or figure.

Usage (installed as ``cmp-repro`` or via ``python -m repro``)::

    cmp-repro table1
    cmp-repro fig14 --sizes 20000 50000 100000
    cmp-repro fig16 --function F2
    cmp-repro fig18
    cmp-repro fig19
    cmp-repro prediction
    cmp-repro demo --function Ff --records 50000
    cmp-repro demo --records 20000 --trace trace.jsonl --metrics out.prom
    cmp-repro inspect-trace trace.jsonl --format json
    cmp-repro serve-bench --access-log access.jsonl --slo-availability 0.999
    cmp-repro bench-history --append BENCH_*.json --check
    cmp-repro verify --seeds 25
    cmp-repro verify --fuzz --seeds 10 --corpus-dir tests/data/corpus
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.config import BuilderConfig
from repro.core.cmp_full import CMPBuilder
from repro.data.synthetic import generate_agrawal
from repro.eval import experiments
from repro.eval.harness import format_table, run_builder
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    format_summary,
    load_trace_jsonl,
    record_admission,
    record_breaker,
    record_build_stats,
    record_serving_stats,
    render_tree,
    summarize_trace,
    write_metrics,
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--intervals", type=int, default=100)
    parser.add_argument("--max-depth", type=int, default=12)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="chunk-routing workers per scan (trees are bit-identical "
        "for any worker count; default 1 = serial)",
    )
    parser.add_argument(
        "--scan-backend",
        choices=("thread", "process"),
        default="thread",
        help="how scan workers execute: GIL-sharing threads, or forked "
        "processes that scale past the GIL (bit-identical trees either "
        "way; 'process' falls back to threads where fork is unavailable)",
    )
    _add_obs(parser)


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record spans (builds, levels, scans, retries, serve batches) "
        "and write them to FILE as JSONL; inspect with `cmp-repro "
        "inspect-trace FILE`",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="export counters and latency histograms to FILE — Prometheus "
        "text exposition, or a JSON snapshot when FILE ends in .json",
    )


def _config(args: argparse.Namespace) -> BuilderConfig:
    return experiments.default_config(
        n_intervals=args.intervals,
        max_depth=args.max_depth,
        scan_workers=args.workers,
        scan_backend=args.scan_backend,
    )


def _obs_objects(args: argparse.Namespace):
    """(tracer, registry) for this invocation — real only when asked for."""
    tracer = Tracer() if getattr(args, "trace", None) else NULL_TRACER
    registry = MetricsRegistry() if getattr(args, "metrics", None) else None
    return tracer, registry


def _write_obs(args: argparse.Namespace, tracer, registry) -> None:
    """Flush --trace / --metrics outputs (status lines go to stderr)."""
    if getattr(args, "trace", None):
        n = tracer.write_jsonl(args.trace)
        print(f"wrote {n} spans to {args.trace}", file=sys.stderr)
    if registry is not None and getattr(args, "metrics", None):
        write_metrics(registry, args.metrics)
        print(f"wrote metrics to {args.metrics}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="cmp-repro",
        description="Reproduce tables and figures of the CMP paper (ICDE 2000).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="Table 1: exact vs CMP root splits")
    p.add_argument("--records", type=int, default=100_000)
    p.add_argument("--seed", type=int, default=0)

    for name, help_text in [
        ("fig14", "Figure 14: CMP family scalability on Function 2"),
        ("fig15", "Figure 15: CMP family scalability on Function 7"),
        ("fig16", "Figure 16: comparison on Function 2"),
        ("fig17", "Figure 17: comparison on Function 7"),
    ]:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--sizes", type=int, nargs="+", default=[20_000, 50_000, 100_000])
        p.add_argument("--function", default=None)
        _add_common(p)

    p = sub.add_parser("fig18", help="Figure 18: comparison on Function f")
    p.add_argument("--sizes", type=int, nargs="+", default=[20_000, 50_000])
    _add_common(p)

    p = sub.add_parser("fig19", help="Figure 19: memory usage comparison")
    p.add_argument("--sizes", type=int, nargs="+", default=[20_000, 50_000, 100_000])
    p.add_argument("--function", default="F2")
    _add_common(p)

    p = sub.add_parser("prediction", help="predictSplit accuracy on Function 2")
    p.add_argument("--records", type=int, default=100_000)
    _add_common(p)

    p = sub.add_parser(
        "serve-bench",
        help="Benchmark the compiled serving engine against the object walker",
    )
    p.add_argument("--records", type=int, default=200_000)
    p.add_argument("--depth", type=int, default=10)
    p.add_argument(
        "--batch",
        type=int,
        default=50_000,
        metavar="N",
        help="rows per serving request (the record stream is split into "
        "ceil(records/batch) requests)",
    )
    p.add_argument(
        "--serve-workers",
        type=int,
        default=1,
        metavar="N",
        help="row-sharding threads inside the serving engine",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="admission bound on concurrent requests; excess load is "
        "shed with Overloaded instead of queueing (default: unbounded)",
    )
    p.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-request latency budget; a request past it fails with "
        "DeadlineExceeded (default: none)",
    )
    p.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        metavar="N",
        help="trip the per-model circuit breaker after N consecutive "
        "failures (default: no breaker)",
    )
    p.add_argument(
        "--fallback",
        default=None,
        metavar="FP",
        help="degraded answer while the breaker is open: a registered "
        "fingerprint, or 'prior' for the majority-class prior",
    )
    p.add_argument(
        "--access-log",
        default=None,
        metavar="FILE",
        help="write one structured JSONL record per serving request to "
        "FILE; per-outcome counts are cross-checked against the "
        "ServingStats counters (mismatch fails the run)",
    )
    p.add_argument(
        "--slo-availability",
        type=float,
        default=None,
        metavar="OBJ",
        help="evaluate an availability SLO with objective OBJ (e.g. "
        "0.999) over the run and report burn rates",
    )
    p.add_argument(
        "--slo-latency-ms",
        type=float,
        default=None,
        metavar="MS",
        help="evaluate a latency SLO (answers within MS milliseconds) "
        "over the run and report burn rates",
    )
    p.add_argument(
        "--slo-latency-objective",
        type=float,
        default=0.99,
        metavar="OBJ",
        help="good-fraction objective for --slo-latency-ms (default 0.99)",
    )
    _add_obs(p)

    p = sub.add_parser(
        "inspect-trace",
        help="Summarize a --trace JSONL file: slowest spans, per-phase "
        "rollup, and a scan-count cross-check against IOStats.scans",
    )
    p.add_argument("file", metavar="FILE", help="trace JSONL written by --trace")
    p.add_argument(
        "--top", type=int, default=10, metavar="N", help="slowest spans to show"
    )
    p.add_argument(
        "--render",
        action="store_true",
        help="also print the full indented span tree (text format only)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format; 'json' emits the full summary (phases, "
        "slowest spans, per-build cross-checks) for scripted consumers",
    )

    p = sub.add_parser(
        "bench-history",
        help="Fold BENCH_*.json artifacts into an append-only trajectory "
        "and gate the newest run against a rolling baseline",
    )
    p.add_argument(
        "--history",
        default="BENCH_history.json",
        metavar="FILE",
        help="trajectory file (created on first --append)",
    )
    p.add_argument(
        "--append",
        nargs="+",
        default=None,
        metavar="ARTIFACT",
        help="bench artifact(s) to fold in as one new run",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero if the newest run regressed any gated metric "
        "past --tolerance vs the rolling-median baseline",
    )
    p.add_argument(
        "--run-id",
        default=None,
        metavar="ID",
        help="identifier for the appended run (e.g. the commit SHA)",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="relative movement in a metric's bad direction that counts "
        "as a regression (default 0.25 = 25%%)",
    )
    p.add_argument(
        "--min-runs",
        type=int,
        default=3,
        metavar="N",
        help="prior observations a metric needs before it is gated",
    )
    p.add_argument(
        "--window",
        type=int,
        default=5,
        metavar="N",
        help="prior runs the rolling median baseline is computed over",
    )
    p.add_argument(
        "--max-runs",
        type=int,
        default=200,
        metavar="N",
        help="newest runs retained in the history file",
    )

    p = sub.add_parser(
        "verify",
        help="Differential + metamorphic correctness harness: every builder "
        "against the exact split oracle on adversarial datasets",
    )
    p.add_argument(
        "--seeds",
        type=int,
        default=25,
        metavar="N",
        help="seeded datasets to check (profiles rotate across seeds)",
    )
    p.add_argument("--records", type=int, default=300, metavar="N")
    p.add_argument(
        "--profiles",
        nargs="+",
        default=None,
        metavar="NAME",
        help="adversarial profiles to draw from (default: all)",
    )
    p.add_argument(
        "--builders",
        nargs="+",
        default=None,
        metavar="NAME",
        help="builders to verify (default: CMP-S CMP-B CMP CLOUDS SLIQ)",
    )
    p.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[4],
        metavar="N",
        help="scan worker counts whose trees must be bit-identical to serial",
    )
    p.add_argument(
        "--checks",
        nargs="+",
        default=None,
        metavar="NAME",
        help="metamorphic checks to run (default: the full battery)",
    )
    p.add_argument(
        "--safety",
        type=float,
        default=2.0,
        help="multiplier on the footnote-1 estimator bound (grid drift margin)",
    )
    p.add_argument(
        "--forest-every",
        type=int,
        default=5,
        metavar="N",
        help="run the shared-scan forest differential on every Nth dataset "
        "(0 disables)",
    )
    p.add_argument(
        "--fuzz",
        action="store_true",
        help="fuzz instead of the fixed sweep: shrink any failing dataset "
        "and write it as a replayable JSON case under --corpus-dir",
    )
    p.add_argument("--corpus-dir", default="tests/data/corpus", metavar="DIR")
    p.add_argument("--intervals", type=int, default=16)
    p.add_argument("--max-depth", type=int, default=6)
    p.add_argument("--min-records", type=int, default=25)
    _add_obs(p)

    p = sub.add_parser("demo", help="Train CMP on a synthetic function, print the tree")
    p.add_argument("--function", default="Ff")
    p.add_argument("--records", type=int, default=50_000)
    p.add_argument(
        "--ensemble",
        choices=("bagged", "boosted"),
        default=None,
        help="train a shared-scan ensemble instead of a single tree: "
        "'bagged' bootstrap-sampled CMP-S members (soft voting), "
        "'boosted' histogram gradient boosting over the binned scan",
    )
    p.add_argument(
        "--n-trees",
        type=int,
        default=8,
        metavar="N",
        help="bagged member trees, or boosting iterations (--ensemble only)",
    )
    p.add_argument(
        "--learning-rate",
        type=float,
        default=0.1,
        metavar="LR",
        help="shrinkage for --ensemble boosted",
    )
    p.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write a checkpoint to PATH after every completed tree level",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted build from --checkpoint if one exists",
    )
    _add_common(p)

    p = sub.add_parser(
        "stream-demo",
        help="One-pass streaming training + sliding-window hot-swap refresh "
        "on a concept-drifting Agrawal stream",
    )
    p.add_argument(
        "--segments",
        nargs="+",
        default=["F2:8000", "F5:8000"],
        metavar="FN:N",
        help="drift segments as function:records pairs, in stream order",
    )
    p.add_argument("--chunk", type=int, default=500, metavar="N")
    p.add_argument("--window", type=int, default=4000, metavar="N")
    p.add_argument("--refresh-every", type=int, default=2000, metavar="N")
    p.add_argument("--eps", type=float, default=0.02)
    p.add_argument(
        "--memory-budget",
        type=int,
        default=0,
        metavar="BYTES",
        help="sketch memory budget for the one-pass trainer (0 = unbounded)",
    )
    p.add_argument(
        "--battery",
        type=int,
        default=0,
        metavar="SEEDS",
        help="also run the N-seed streaming differential battery "
        "(every sketch split vs the exact oracle)",
    )
    p.add_argument("--intervals", type=int, default=32)
    p.add_argument("--max-depth", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    _add_obs(p)

    args = parser.parse_args(argv)

    if args.command == "table1":
        rows = experiments.table1(seed=args.seed, agrawal_records=args.records)
        print(format_table(rows))
        return 0
    if args.command in ("fig14", "fig15"):
        function = args.function or ("F2" if args.command == "fig14" else "F7")
        tracer, registry = _obs_objects(args)
        records = experiments.scalability(
            function, args.sizes, _config(args), args.seed, tracer, registry
        )
        print(format_table(experiments.records_as_rows(records)))
        _write_obs(args, tracer, registry)
        return 0
    if args.command in ("fig16", "fig17"):
        function = args.function or ("F2" if args.command == "fig16" else "F7")
        tracer, registry = _obs_objects(args)
        records = experiments.comparison(
            function, args.sizes, _config(args), args.seed, tracer, registry
        )
        print(format_table(experiments.records_as_rows(records)))
        _write_obs(args, tracer, registry)
        return 0
    if args.command == "fig18":
        tracer, registry = _obs_objects(args)
        records = experiments.comparison_f(
            args.sizes, _config(args), args.seed, tracer, registry
        )
        print(format_table(experiments.records_as_rows(records)))
        _write_obs(args, tracer, registry)
        return 0
    if args.command == "fig19":
        tracer, registry = _obs_objects(args)
        records = experiments.memory_usage(
            args.function, args.sizes, _config(args), args.seed, tracer, registry
        )
        print(format_table(experiments.records_as_rows(records)))
        _write_obs(args, tracer, registry)
        return 0
    if args.command == "prediction":
        tracer, registry = _obs_objects(args)
        print(
            experiments.prediction_accuracy(
                args.records, _config(args), args.seed, tracer, registry
            )
        )
        _write_obs(args, tracer, registry)
        return 0
    if args.command == "serve-bench":
        import time

        from repro.eval.treegen import random_batch, random_tree
        from repro.obs import AccessLog, SLODefinition, SLOMonitor
        from repro.serve import BreakerPolicy, ModelRegistry, ServingEngine

        tracer, metrics_registry = _obs_objects(args)
        tree = random_tree(depth=args.depth, seed=args.seed)
        registry = ModelRegistry()
        key = registry.register(tree)
        X = random_batch(tree.schema, args.records, seed=args.seed + 1)

        start = time.perf_counter()
        walked = tree.walk_predict(X)
        walk_s = time.perf_counter() - start

        breaker_policy = (
            BreakerPolicy(failure_threshold=args.breaker_threshold)
            if args.breaker_threshold is not None
            else None
        )
        deadline_s = (
            args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
        )
        # The latency SLO is computed from access records, so any SLO
        # flag turns the (in-memory) access log on.
        access = (
            AccessLog(metrics=metrics_registry)
            if args.access_log
            or args.slo_availability is not None
            or args.slo_latency_ms is not None
            else None
        )
        avail_mon = (
            SLOMonitor(
                SLODefinition(
                    name="serve-availability", objective=args.slo_availability
                )
            )
            if args.slo_availability is not None
            else None
        )
        latency_mon = (
            SLOMonitor(
                SLODefinition(
                    name="serve-latency",
                    objective=args.slo_latency_objective,
                    kind="latency",
                    latency_threshold_s=args.slo_latency_ms / 1000.0,
                )
            )
            if args.slo_latency_ms is not None
            else None
        )
        if avail_mon is not None:
            avail_mon.observe(0, 0)
        if latency_mon is not None:
            latency_mon.observe(0, 0)
        with ServingEngine(
            registry,
            workers=args.serve_workers,
            tracer=tracer,
            access_log=access,
            max_queue_depth=args.max_queue_depth,
            breaker_policy=breaker_policy,
            fallback=args.fallback,
        ) as engine:
            parts = []
            for lo in range(0, args.records, args.batch):
                parts.append(
                    engine.predict(key, X[lo : lo + args.batch], deadline=deadline_s)
                )
            served = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        snap = registry.stats(key).snapshot()
        if metrics_registry is not None:
            record_serving_stats(metrics_registry, registry.stats(key), {"model": key})
            if engine.admission is not None:
                record_admission(metrics_registry, engine.admission, {"model": key})
            breaker = engine.breaker(key)
            if breaker is not None:
                record_breaker(metrics_registry, breaker, {"model": key})

        identical = bool(np.array_equal(served, walked))
        log_consistent = True
        if access is not None:
            counts = access.outcome_counts()
            # Every engine call must have produced exactly one record
            # whose outcome mirrors the aggregate counters.
            expected = {
                "ok": int(snap["batches"]),
                "shed": int(snap["shed"]),
                "deadline": int(snap["timeouts"]),
                "fallback": int(snap["fallbacks"]),
                "breaker": int(snap["breaker_rejections"]) - int(snap["fallbacks"]),
                "error": 0,
            }
            log_consistent = counts == expected
            if not log_consistent:
                print(
                    f"access-log cross-check: MISMATCH (log {counts} != "
                    f"stats {expected})",
                    file=sys.stderr,
                )
            if args.access_log:
                n = access.write_jsonl(args.access_log)
                print(
                    f"wrote {n} access records to {args.access_log} "
                    f"(outcomes: "
                    + " ".join(f"{k}={v}" for k, v in counts.items() if v)
                    + ")",
                    file=sys.stderr,
                )
        slo_reports = []
        if avail_mon is not None:
            avail_mon.observe_stats(snap)
            slo_reports.append(avail_mon.snapshot())
        if latency_mon is not None:
            lat_hist = MetricsRegistry().histogram(
                "latency", "request latency", {}
            )
            for rec in access.records():
                if rec.outcome in ("ok", "fallback"):
                    lat_hist.observe(rec.latency_s)
            latency_mon.observe_histogram(lat_hist)
            slo_reports.append(latency_mon.snapshot())
        rows = [
            {
                "model": key,
                "nodes": tree.n_nodes,
                "records": args.records,
                "batches": int(snap["batches"]),
                "mean_batch": round(snap["mean_batch"], 1),
                "mean_latency_ms": round(snap["mean_latency_ms"], 3),
                "p50_latency_ms": round(snap["p50_latency_ms"], 3),
                "p90_latency_ms": round(snap["p90_latency_ms"], 3),
                "p99_latency_ms": round(snap["p99_latency_ms"], 3),
                "records_per_s": round(snap["records_per_s"], 1),
                "shed": int(snap["shed"]),
                "timeouts": int(snap["timeouts"]),
                "walker_records_per_s": round(args.records / max(walk_s, 1e-9), 1),
                "speedup": round(
                    snap["records_per_s"] / max(args.records / max(walk_s, 1e-9), 1e-9),
                    2,
                ),
                "bit_identical": identical,
            }
        ]
        print(format_table(rows))
        for report in slo_reports:
            print(f"slo {report['slo']}: {json.dumps(report)}")
        _write_obs(args, tracer, metrics_registry)
        return 0 if identical and log_consistent else 1
    if args.command == "inspect-trace":
        try:
            spans = load_trace_jsonl(args.file)
        except (OSError, ValueError) as exc:
            print(f"cannot read trace: {exc}", file=sys.stderr)
            return 2
        summary = summarize_trace(spans, top=args.top)
        if args.format == "json":
            print(json.dumps(summary.to_dict(), indent=1))
        else:
            print(format_summary(summary))
            if args.render:
                print()
                print(render_tree(spans))
        return 0 if summary.consistent else 1
    if args.command == "bench-history":
        from repro.obs import (
            append_run,
            check_regressions,
            load_history,
            save_history,
            summarize_history,
        )

        try:
            history = load_history(args.history)
        except (OSError, ValueError) as exc:
            print(f"cannot read history: {exc}", file=sys.stderr)
            return 2
        if args.append:
            try:
                entry = append_run(
                    history,
                    args.append,
                    run_id=args.run_id,
                    max_runs=args.max_runs,
                )
            except (OSError, ValueError) as exc:
                print(f"cannot append artifacts: {exc}", file=sys.stderr)
                return 2
            save_history(args.history, history)
            n_metrics = sum(
                len(b["metrics"]) for b in entry["benchmarks"].values()
            )
            print(
                f"appended {entry['run_id']}: "
                f"{len(entry['benchmarks'])} benchmark(s), "
                f"{n_metrics} metric(s) -> {args.history}"
            )
        if args.check:
            regressions = check_regressions(
                history,
                tolerance=args.tolerance,
                min_runs=args.min_runs,
                window=args.window,
            )
            for reg in regressions:
                print(f"REGRESSION: {reg.describe()}")
            if regressions:
                return 1
            print(
                f"no regressions ({len(history['runs'])} run(s), "
                f"tolerance {args.tolerance:.0%})"
            )
        if not args.append and not args.check:
            print(json.dumps(summarize_history(history), indent=1))
        return 0
    if args.command == "verify":
        import os

        from repro.eval.treegen import ADVERSARIAL_PROFILES
        from repro.verify import run_fuzz, run_verify, save_case
        from repro.verify.runner import DEFAULT_BUILDERS

        config = BuilderConfig(
            n_intervals=args.intervals,
            max_depth=args.max_depth,
            min_records=args.min_records,
            reservoir_capacity=5000,
        )
        profiles = tuple(args.profiles or ADVERSARIAL_PROFILES)
        unknown = [p_ for p_ in profiles if p_ not in ADVERSARIAL_PROFILES]
        if unknown:
            parser.error(
                f"unknown profile(s) {unknown}; "
                f"choose from {sorted(ADVERSARIAL_PROFILES)}"
            )
        builders = tuple(args.builders or DEFAULT_BUILDERS)
        tracer, registry = _obs_objects(args)

        def log(line: str) -> None:
            print(line, file=sys.stderr)

        if args.fuzz:
            cases, runs = run_fuzz(
                config,
                profiles=profiles,
                seeds=range(args.seeds),
                n=args.records,
                builders=builders,
                workers=tuple(args.workers),
                safety=args.safety,
                log=log,
            )
            for case in cases:
                os.makedirs(args.corpus_dir, exist_ok=True)
                path = os.path.join(args.corpus_dir, f"{case.name}.json")
                save_case(case, path)
                print(f"wrote {path}")
            print(
                f"fuzz: {runs} dataset(s), {len(cases)} failure(s)"
                + (f" shrunk into {args.corpus_dir}" if cases else "")
            )
            _write_obs(args, tracer, registry)
            return 0 if not cases else 1

        summary = run_verify(
            config,
            seeds=args.seeds,
            profiles=profiles,
            builders=builders,
            workers=tuple(args.workers),
            n=args.records,
            metamorphic_checks=tuple(args.checks) if args.checks else None,
            safety=args.safety,
            forest_every=args.forest_every,
            tracer=tracer,
            registry=registry,
            log=log,
        )
        print(format_table(summary.builder_rows()))
        errors = [f for f in summary.findings if f.severity == "error"]
        warnings = [f for f in summary.findings if f.severity != "error"]
        for f in errors + warnings:
            print(f)
        print(
            f"verify: {summary.datasets_run} dataset(s), "
            f"{len(errors)} error(s), {len(warnings)} warning(s)"
        )
        _write_obs(args, tracer, registry)
        return 0 if summary.ok else 1
    if args.command == "stream-demo":
        from repro.data.synthetic import drift_boundaries, generate_drift
        from repro.serve.engine import ModelRegistry, ServingEngine
        from repro.stream import SlidingWindowRefresher, StreamingTrainer

        try:
            segments = tuple(
                (part.split(":")[0], int(part.split(":")[1]))
                for part in args.segments
            )
        except (IndexError, ValueError):
            parser.error("--segments entries must look like F2:8000")
        config = BuilderConfig(
            n_intervals=args.intervals,
            max_depth=args.max_depth,
            min_records=20,
            seed=args.seed,
        )
        tracer, registry = _obs_objects(args)
        stream = generate_drift(segments, seed=args.seed)
        bounds = drift_boundaries(segments)

        # Static baseline: one-pass tree trained on the first window only.
        static_trainer = StreamingTrainer(
            stream.schema,
            config,
            eps=args.eps,
            memory_budget_bytes=args.memory_budget,
            metrics=registry,
            tracer=tracer,
        )
        first = min(args.window, stream.n_records)
        static = static_trainer.fit_stream(
            iter([(stream.X[:first], stream.y[:first])])
        )

        # Refreshed: sliding window, hot-swapped into a live endpoint.
        reg = ModelRegistry()
        engine = ServingEngine(reg, tracer=tracer)
        refresher = SlidingWindowRefresher(
            reg,
            "stream-demo",
            stream.schema,
            window_records=args.window,
            refresh_every=args.refresh_every,
            config=config,
            eps=args.eps,
            metrics=registry,
            tracer=tracer,
        )
        # Prequential replay: score each chunk before absorbing it.
        static_hits = np.zeros(len(bounds))
        refresh_hits = np.zeros(len(bounds))
        seen = np.zeros(len(bounds))
        for start in range(0, stream.n_records, args.chunk):
            stop = min(start + args.chunk, stream.n_records)
            Xc, yc = stream.X[start:stop], stream.y[start:stop]
            seg = next(i for i, b in enumerate(bounds) if start < b)
            if start >= first:
                static_hits[seg] += float(
                    np.sum(static.tree.predict(Xc) == yc)
                )
                if refresher.history:
                    refresh_hits[seg] += float(
                        np.sum(engine.predict("stream-demo", Xc) == yc)
                    )
                seen[seg] += len(yc)
            refresher.observe(Xc, yc)
        rows = []
        for i, (function, _) in enumerate(segments):
            rows.append(
                {
                    "segment": f"{i}:{function}",
                    "records": int(seen[i]),
                    "static_acc": round(static_hits[i] / max(seen[i], 1), 4),
                    "refresh_acc": round(refresh_hits[i] / max(seen[i], 1), 4),
                }
            )
        print(format_table(rows))
        print(
            f"refreshes: {len(refresher.history)}  "
            f"endpoint version: {reg.endpoint_version('stream-demo')}  "
            f"static sketch peak: {static.sketch_bytes_peak} bytes"
        )
        exit_code = 0
        if args.battery:
            from repro.verify.stream import run_stream_battery

            report = run_stream_battery(
                n_seeds=args.battery, config=config, eps=args.eps
            )
            print(format_table(report.rows))
            for finding in report.findings:
                print(finding, file=sys.stderr)
            print(
                f"battery: {len(report.rows)} runs, {report.n_splits} splits, "
                f"{'OK' if report.ok else 'FAILED'}"
            )
            exit_code = 0 if report.ok else 1
        _write_obs(args, tracer, registry)
        return exit_code
    if args.command == "demo":
        if args.resume and not args.checkpoint:
            parser.error("--resume requires --checkpoint")
        config = _config(args)
        if args.ensemble and args.checkpoint:
            parser.error("--ensemble does not support --checkpoint")
        if args.checkpoint:
            config = config.with_(
                checkpoint_path=args.checkpoint, resume=args.resume
            )
        tracer, registry = _obs_objects(args)
        dataset = generate_agrawal(args.function, args.records, seed=args.seed)
        if args.ensemble:
            from repro.ensemble import (
                BaggedForestBuilder,
                HistGradientBoostingBuilder,
            )

            if args.ensemble == "bagged":
                builder = BaggedForestBuilder(
                    config, n_trees=args.n_trees, tracer=tracer
                )
            else:
                builder = HistGradientBoostingBuilder(
                    config,
                    n_iterations=args.n_trees,
                    learning_rate=args.learning_rate,
                    tracer=tracer,
                )
            result = builder.build(dataset)
            forest = result.forest
            accuracy = float(np.mean(forest.predict(dataset.X) == dataset.y))
            if registry is not None:
                record_build_stats(
                    registry,
                    result.stats,
                    {"builder": builder.name, "records": str(args.records)},
                )
            print(
                format_table(
                    [
                        {
                            "builder": builder.name,
                            "members": forest.n_trees,
                            "records": args.records,
                            "accuracy": round(accuracy, 4),
                            "scans": result.stats.io.scans,
                            "shared_level_scans": result.stats.shared_level_scans,
                            "wall_seconds": round(result.stats.wall_seconds, 3),
                            "fingerprint": forest.compiled().fingerprint[:16],
                        }
                    ]
                )
            )
            _write_obs(args, tracer, registry)
            return 0
        record, result = run_builder(CMPBuilder(config, tracer=tracer), dataset)
        if registry is not None:
            record_build_stats(
                registry,
                result.stats,
                {"builder": record.builder, "records": str(args.records)},
            )
        print(format_table([record.as_dict()]))
        print()
        print(result.tree.render())
        _write_obs(args, tracer, registry)
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
