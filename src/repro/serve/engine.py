"""Model registry and batch execution engine for compiled trees.

:class:`ModelRegistry` keys deployed models by the compiled tree's
content fingerprint — registering the same tree twice (or the same tree
rebuilt from JSON) lands on one entry, and a pruned tree registers as a
*different* model, because pruning changes the flattened arrays and
therefore the fingerprint.

:class:`ServingEngine` executes prediction batches against registered
models.  Large batches are sharded row-wise across a thread pool using
the same contiguous-partition idiom as the training-side scan engine
(:func:`repro.core.parallel.partition_chunks`): shards are contiguous
row ranges, results are written into a preallocated output in shard
order, so the merged output is identical to the single-threaded call for
any worker count.  Every executed batch feeds the model's
:class:`~repro.io.metrics.ServingStats`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.compiled import CompiledTree, compile_tree
from repro.core.tree import DecisionTree, _as_batch
from repro.io.metrics import ServingStats
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer


class ModelRegistry:
    """Fingerprint-keyed store of compiled models and their serving stats."""

    def __init__(self) -> None:
        self._models: dict[str, CompiledTree] = {}
        self._stats: dict[str, ServingStats] = {}
        self._lock = threading.Lock()

    def register(self, model: DecisionTree | CompiledTree) -> str:
        """Register a model; returns its fingerprint (the serving key).

        Idempotent: re-registering a structurally identical model reuses
        the existing entry and its accumulated stats.
        """
        compiled = model if isinstance(model, CompiledTree) else compile_tree(model)
        key = compiled.fingerprint
        with self._lock:
            if key not in self._models:
                self._models[key] = compiled
                self._stats[key] = ServingStats()
        return key

    def get(self, fingerprint: str) -> CompiledTree:
        """The compiled model registered under ``fingerprint``."""
        with self._lock:
            try:
                return self._models[fingerprint]
            except KeyError:
                raise KeyError(f"no model registered as {fingerprint!r}") from None

    def stats(self, fingerprint: str) -> ServingStats:
        """The serving counters of one registered model."""
        with self._lock:
            try:
                return self._stats[fingerprint]
            except KeyError:
                raise KeyError(f"no model registered as {fingerprint!r}") from None

    def fingerprints(self) -> list[str]:
        """Registered model keys, in registration order."""
        with self._lock:
            return list(self._models)

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def __contains__(self, fingerprint: object) -> bool:
        with self._lock:
            return fingerprint in self._models


class ServingEngine:
    """Executes prediction batches against a :class:`ModelRegistry`.

    Parameters
    ----------
    registry:
        Shared model store; one engine can serve every registered model.
    workers:
        Row-sharding threads per batch.  ``1`` keeps the plain
        single-call path; batches shorter than ``min_shard_rows`` stay
        single-threaded regardless, so tiny requests skip pool overhead.
    min_shard_rows:
        Minimum rows per shard before a batch is split.
    tracer:
        Optional span recorder: each executed batch records one
        ``serve_batch`` span (model, method, rows, shard count).
        Tracing never changes predictions.
    """

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        workers: int = 1,
        min_shard_rows: int = 8192,
        tracer: "Tracer | NullTracer | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if min_shard_rows < 1:
            raise ValueError("min_shard_rows must be at least 1")
        self.registry = registry if registry is not None else ModelRegistry()
        self.workers = workers
        self.min_shard_rows = min_shard_rows
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="cmp-serve"
            )
        return self._pool

    def close(self) -> None:
        """Shut the shard pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- execution -----------------------------------------------------------

    def _run(self, fingerprint: str, X: np.ndarray, method: str) -> np.ndarray:
        model = self.registry.get(fingerprint)
        stats = self.registry.stats(fingerprint)
        X = _as_batch(X)
        n = len(X)
        fn = getattr(model, method)
        with self.tracer.span(
            "serve_batch", model=fingerprint[:12], method=method, rows=n
        ) as span:
            start = time.perf_counter()
            if self.workers == 1 or n < 2 * self.min_shard_rows:
                out = fn(X)
            else:
                # Contiguous, balanced row ranges — the partition_chunks rule,
                # computed as bounds so a million-row batch is not listed out.
                shards = max(2, min(self.workers, n // self.min_shard_rows))
                base, extra = divmod(n, shards)
                bounds = []
                lo = 0
                for i in range(shards):
                    hi = lo + base + (1 if i < extra else 0)
                    bounds.append((lo, hi))
                    lo = hi
                span.annotate(shards=shards)
                pool = self._ensure_pool()
                futures = [pool.submit(fn, X[a:b]) for a, b in bounds]
                parts = [f.result() for f in futures]
                out = np.concatenate(parts, axis=0)
            stats.observe_batch(n, time.perf_counter() - start)
        return out

    def predict(self, fingerprint: str, X: np.ndarray) -> np.ndarray:
        """Majority-class labels for ``X`` under one registered model."""
        return self._run(fingerprint, X, "predict")

    def predict_proba(self, fingerprint: str, X: np.ndarray) -> np.ndarray:
        """Per-class probabilities for ``X`` under one registered model."""
        return self._run(fingerprint, X, "predict_proba")

    def apply(self, fingerprint: str, X: np.ndarray) -> np.ndarray:
        """Leaf node ids for ``X`` under one registered model."""
        return self._run(fingerprint, X, "apply")


__all__ = ["ModelRegistry", "ServingEngine"]
