"""Model registry, versioned rollout, and the hardened batch execution engine.

:class:`ModelRegistry` keys deployed models by the compiled tree's
content fingerprint — registering the same tree twice (or the same tree
rebuilt from JSON) lands on one entry, and a pruned tree registers as a
*different* model, because pruning changes the flattened arrays and
therefore the fingerprint.  On top of the fingerprint store it carries:

* **named endpoints** (:mod:`repro.serve.rollout`): clients address
  ``registry.deploy("scorer", fp)`` names; a weighted canary splits
  traffic deterministically by ``route_key`` and promote/rollback are
  single atomic pointer flips;
* **drain-aware removal**: :meth:`ModelRegistry.unregister` refuses to
  drop a fingerprint an endpoint still routes to, and defers removal
  while leased requests are in flight, so hot swaps never yank a model
  out from under a running batch.

:class:`ServingEngine` executes prediction batches against registered
models.  Large batches are sharded row-wise across a thread pool using
the same contiguous-partition idiom as the training-side scan engine
(:func:`repro.core.parallel.partition_chunks`): shards are contiguous
row ranges, results are written in shard order, so the merged output is
identical to the single-threaded call for any worker count.  Around
that unchanged execution core sits the robustness layer:

* **admission control** — an optional bounded queue
  (:class:`~repro.serve.admission.AdmissionController`); excess load is
  rejected immediately with :class:`~repro.serve.admission.Overloaded`;
* **deadlines** — a per-request budget checked before execution and
  enforced on shard waits (:class:`~repro.serve.admission.Deadline`);
* **circuit breaking** — one
  :class:`~repro.serve.breaker.CircuitBreaker` per fingerprint, tripped
  by consecutive execution failures, with graceful degradation to a
  configured fallback model or the majority-class prior;
* **shard retry** — a failed shard is retried (with deterministic
  backoff) before the batch fails.

Every executed batch feeds the model's
:class:`~repro.io.metrics.ServingStats`, including the shed / timeout /
breaker / fallback counters the robustness paths increment.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.core.compiled import CompiledTree, compile_tree
from repro.core.tree import DecisionTree, _as_batch
from repro.io.metrics import ServingStats
from repro.obs.access import AccessLog
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.serve.admission import (
    AdmissionController,
    Deadline,
    DeadlineExceeded,
    Overloaded,
    as_deadline,
)
from repro.serve.breaker import BreakerPolicy, CircuitBreaker, CircuitOpen
from repro.serve.rollout import ModelInUseError, RolloutManager

#: ``fallback=PRIOR_FALLBACK`` degrades to the model's majority-class prior.
PRIOR_FALLBACK = "prior"


class ModelRegistry:
    """Fingerprint-keyed store of models, endpoints, and serving stats."""

    def __init__(self) -> None:
        self._models: dict[str, object] = {}
        self._stats: dict[str, ServingStats] = {}
        self._inflight: dict[str, int] = {}
        self._pending_removal: set[str] = set()
        self._rollout = RolloutManager()
        self._lock = threading.Lock()

    def register(self, model: "DecisionTree | CompiledTree | object") -> str:
        """Register a model; returns its fingerprint (the serving key).

        Accepts a :class:`DecisionTree` (compiled on the spot), a
        :class:`CompiledTree`, an ensemble :class:`~repro.ensemble.Forest`
        (packed into a :class:`~repro.core.compiled.CompiledForest` on the
        spot — anything exposing a ``compiled()`` factory compiles the
        same way), or any object exposing ``fingerprint`` plus the
        prediction methods — which is how the fault-injection wrappers of
        :mod:`repro.serve.faults` deploy alongside real models.
        Idempotent: re-registering a structurally identical model reuses
        the existing entry and its accumulated stats.
        """
        if isinstance(model, DecisionTree):
            compiled: object = compile_tree(model)
        elif hasattr(model, "fingerprint") and hasattr(model, "predict"):
            compiled = model
        elif callable(getattr(model, "compiled", None)):
            compiled = model.compiled()  # type: ignore[operator]
        else:
            raise TypeError(
                f"cannot register {type(model).__name__}: need a DecisionTree, "
                "a CompiledTree, or a fingerprinted model wrapper"
            )
        key = compiled.fingerprint  # type: ignore[attr-defined]
        with self._lock:
            if key not in self._models:
                self._models[key] = compiled
                self._stats[key] = ServingStats()
            self._pending_removal.discard(key)
        return key

    #: Shortest fingerprint prefix the registry resolves (back-compat with
    #: the former 16-hex-char truncated keys; anything shorter is too
    #: collision-prone to be useful as an address).
    MIN_PREFIX = 8

    def _canonical_locked(self, fingerprint: str) -> str:
        """Resolve a full fingerprint or a unique prefix to the stored key.

        Fingerprints are full sha256 hex digests (64 chars); callers that
        recorded the historical 16-char truncation — or any prefix of at
        least :attr:`MIN_PREFIX` chars — still resolve, as long as the
        prefix is unambiguous.  Must be called with ``self._lock`` held.
        Unknown keys are returned unchanged so each caller raises its own
        ``KeyError`` with the caller's wording.
        """
        if fingerprint in self._models or len(fingerprint) < self.MIN_PREFIX:
            return fingerprint
        matches = [k for k in self._models if k.startswith(fingerprint)]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise KeyError(
                f"fingerprint prefix {fingerprint!r} is ambiguous: matches "
                f"{len(matches)} registered models"
            )
        return fingerprint

    def _canonical(self, fingerprint: str) -> str:
        with self._lock:
            return self._canonical_locked(fingerprint)

    def unregister(self, fingerprint: str) -> bool:
        """Remove a model, honouring rollout and drain semantics.

        Raises :class:`~repro.serve.rollout.ModelInUseError` while any
        endpoint still routes to the fingerprint (repoint or roll back
        first).  If leased requests are in flight, removal is *deferred*
        — new leases are refused immediately and the entry is dropped
        when the last in-flight request completes — and ``False`` is
        returned; ``True`` means the model is gone now.
        """
        with self._lock:
            fingerprint = self._canonical_locked(fingerprint)
            if fingerprint not in self._models:
                raise KeyError(f"no model registered as {fingerprint!r}")
            routed = self._rollout.routes_to(fingerprint)
            if routed:
                raise ModelInUseError(
                    f"model {fingerprint!r} still routed by endpoint(s) "
                    f"{sorted(routed)}; promote, rollback or remove them first"
                )
            if self._inflight.get(fingerprint, 0) > 0:
                self._pending_removal.add(fingerprint)
                return False
            self._drop(fingerprint)
            return True

    def _drop(self, fingerprint: str) -> None:
        del self._models[fingerprint]
        del self._stats[fingerprint]
        self._inflight.pop(fingerprint, None)
        self._pending_removal.discard(fingerprint)

    @contextmanager
    def lease(self, fingerprint: str) -> Iterator[object]:
        """Hold a model for one request's execution (drain accounting).

        A leased fingerprint cannot disappear mid-request: deferred
        removal waits for the in-flight count to hit zero.  Leasing a
        draining model is refused like an unknown one.
        """
        with self._lock:
            fingerprint = self._canonical_locked(fingerprint)
            if fingerprint in self._pending_removal:
                raise KeyError(f"model {fingerprint!r} is draining for removal")
            try:
                model = self._models[fingerprint]
            except KeyError:
                raise KeyError(f"no model registered as {fingerprint!r}") from None
            self._inflight[fingerprint] = self._inflight.get(fingerprint, 0) + 1
        try:
            yield model
        finally:
            with self._lock:
                remaining = self._inflight.get(fingerprint, 1) - 1
                self._inflight[fingerprint] = remaining
                if remaining <= 0 and fingerprint in self._pending_removal:
                    self._drop(fingerprint)

    def inflight(self, fingerprint: str) -> int:
        """Requests currently leasing ``fingerprint``."""
        with self._lock:
            return self._inflight.get(self._canonical_locked(fingerprint), 0)

    # -- endpoints (versioned rollout) ---------------------------------------

    def deploy(self, name: str, fingerprint: str) -> None:
        """Point endpoint ``name`` (created on first use) at a stable model."""
        fingerprint = self._require_registered(fingerprint)
        self._rollout.deploy(name, fingerprint)

    def set_canary(self, name: str, fingerprint: str, weight: float) -> None:
        """Send ``weight`` of ``name``'s traffic to a canary model."""
        fingerprint = self._require_registered(fingerprint)
        self._rollout.set_canary(name, fingerprint, weight)

    def promote(self, name: str) -> str:
        """Canary becomes stable in one atomic flip; returns the old stable."""
        return self._rollout.promote(name)

    def hot_swap(
        self,
        name: str,
        model: "DecisionTree | CompiledTree | object",
        *,
        canary_weight: float = 1.0,
        retire: bool = True,
    ) -> str:
        """Register ``model`` and make it endpoint ``name``'s stable version.

        The zero-downtime refresh primitive: the first call creates the
        endpoint; every later call goes through the rollout path —
        register, canary at ``canary_weight``, promote — so the stable
        pointer flips atomically and no request ever observes an
        endpoint without a model.  With ``retire`` (the default) the
        displaced stable is unregistered afterwards, honouring drain
        semantics: removal is deferred while leased requests are in
        flight and skipped entirely if another endpoint still routes to
        it.  Returns the new fingerprint.
        """
        fingerprint = self.register(model)
        if not self._rollout.has_endpoint(name):
            self._rollout.deploy(name, fingerprint)
            return fingerprint
        old = self._rollout.peek(name)
        if old == fingerprint:
            return fingerprint
        self._rollout.set_canary(name, fingerprint, canary_weight)
        self._rollout.promote(name)
        if retire:
            try:
                self.unregister(old)
            except ModelInUseError:
                pass  # another endpoint still serves the displaced model
        return fingerprint

    def endpoint_version(self, name: str) -> int:
        """Monotone stable-version counter of endpoint ``name``."""
        return self._rollout.version(name)

    def rollback(self, name: str) -> str:
        """Drop the canary in one atomic flip; returns its fingerprint."""
        return self._rollout.rollback(name)

    def remove_endpoint(self, name: str) -> None:
        """Delete an endpoint (its models stay registered)."""
        self._rollout.remove_endpoint(name)

    def endpoints(self) -> list[dict[str, object]]:
        """Snapshot of every endpoint's routing state."""
        return self._rollout.endpoints()

    def resolve(self, target: str, route_key: object = None) -> str:
        """Resolve an endpoint name or raw fingerprint to a fingerprint.

        Endpoint names win over fingerprints (names are human-chosen,
        fingerprints are full sha256 hex digests, and an explicit
        fingerprint still resolves as itself when no endpoint shadows
        it).  A unique fingerprint prefix of at least
        :attr:`MIN_PREFIX` chars — e.g. a historical 16-char truncated
        key — resolves to the full digest.
        """
        return self.resolve_route(target, route_key)[0]

    def resolve_route(
        self, target: str, route_key: object = None
    ) -> tuple[str, str]:
        """Like :meth:`resolve`, also naming the route taken.

        Returns ``(fingerprint, route)``: ``"stable"`` or ``"canary"``
        for endpoint traffic, ``"direct"`` for raw fingerprint targets
        — the per-request attribution the access log records.
        """
        if self._rollout.has_endpoint(target):
            return self._rollout.resolve_with_route(target, route_key)
        with self._lock:
            target = self._canonical_locked(target)
            if target in self._models:
                return target, "direct"
        raise KeyError(f"no endpoint or model registered as {target!r}")

    def _require_registered(self, fingerprint: str) -> str:
        with self._lock:
            fingerprint = self._canonical_locked(fingerprint)
            if fingerprint not in self._models:
                raise KeyError(f"no model registered as {fingerprint!r}")
            return fingerprint

    # -- plain lookups -------------------------------------------------------

    def get(self, fingerprint: str) -> "CompiledTree | object":
        """The model registered under ``fingerprint`` (or a unique prefix)."""
        with self._lock:
            fingerprint = self._canonical_locked(fingerprint)
            try:
                return self._models[fingerprint]
            except KeyError:
                raise KeyError(f"no model registered as {fingerprint!r}") from None

    def stats_for(self, target: str) -> ServingStats:
        """Stats of an endpoint's stable model or of a raw fingerprint.

        Unlike :meth:`resolve`, looking up stats never advances routing
        counters.
        """
        if self._rollout.has_endpoint(target):
            return self.stats(self._rollout.peek(target))
        return self.stats(target)

    def stats(self, fingerprint: str) -> ServingStats:
        """The serving counters of one registered model."""
        with self._lock:
            fingerprint = self._canonical_locked(fingerprint)
            try:
                return self._stats[fingerprint]
            except KeyError:
                raise KeyError(f"no model registered as {fingerprint!r}") from None

    def fingerprints(self) -> list[str]:
        """Registered model keys, in registration order."""
        with self._lock:
            return list(self._models)

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def __contains__(self, fingerprint: object) -> bool:
        with self._lock:
            if not isinstance(fingerprint, str):
                return False
            return self._canonical_locked(fingerprint) in self._models


class ServingEngine:
    """Executes prediction batches against a :class:`ModelRegistry`.

    Parameters
    ----------
    registry:
        Shared model store; one engine can serve every registered model.
    workers:
        Row-sharding threads per batch.  ``1`` keeps the plain
        single-call path; batches shorter than ``min_shard_rows`` stay
        single-threaded regardless, so tiny requests skip pool overhead.
    min_shard_rows:
        Minimum rows per shard before a batch is split.
    tracer:
        Optional span recorder: every request records one ``request``
        span (endpoint, method, outcome) whose id is the access log's
        trace exemplar, and each executed batch records a nested
        ``serve_batch`` span (model, method, rows, shard count).
        Tracing never changes predictions.
    access_log:
        Optional :class:`~repro.obs.access.AccessLog`; when set, every
        request — served, shed, expired, broken or failed — emits
        exactly one structured record (see :mod:`repro.obs.access`).
    max_queue_depth:
        Admission-control bound on concurrently in-flight requests;
        ``None`` disables admission (the pre-hardening behaviour).  An
        existing :class:`AdmissionController` may be passed to share one
        gate across engines.
    breaker_policy:
        When set, each served fingerprint gets a circuit breaker built
        from this policy; ``None`` disables circuit breaking.
    fallback:
        Degraded answer when a breaker rejects a request:
        :data:`PRIOR_FALLBACK` serves the model's majority-class prior,
        a fingerprint serves that registered model, ``None`` (default)
        raises :class:`~repro.serve.breaker.CircuitOpen`.
    shard_retries / shard_backoff_s:
        Failed shard executions are retried up to ``shard_retries``
        times, sleeping ``shard_backoff_s * attempt`` between tries.
    """

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        workers: int = 1,
        min_shard_rows: int = 8192,
        tracer: "Tracer | NullTracer | None" = None,
        access_log: AccessLog | None = None,
        max_queue_depth: "int | AdmissionController | None" = None,
        breaker_policy: BreakerPolicy | None = None,
        fallback: str | None = None,
        shard_retries: int = 1,
        shard_backoff_s: float = 0.001,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if min_shard_rows < 1:
            raise ValueError("min_shard_rows must be at least 1")
        if shard_retries < 0:
            raise ValueError("shard_retries must be non-negative")
        if shard_backoff_s < 0:
            raise ValueError("shard_backoff_s must be non-negative")
        self.registry = registry if registry is not None else ModelRegistry()
        self.workers = workers
        self.min_shard_rows = min_shard_rows
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.access_log = access_log
        if isinstance(max_queue_depth, AdmissionController):
            self.admission: AdmissionController | None = max_queue_depth
        elif max_queue_depth is not None:
            self.admission = AdmissionController(max_queue_depth)
        else:
            self.admission = None
        self.breaker_policy = breaker_policy
        self.fallback = fallback
        self.shard_retries = shard_retries
        self.shard_backoff_s = shard_backoff_s
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="cmp-serve"
            )
        return self._pool

    def close(self) -> None:
        """Shut the shard pool down and refuse further requests (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- robustness plumbing -------------------------------------------------

    def breaker(self, fingerprint: str) -> CircuitBreaker | None:
        """This fingerprint's circuit breaker (created lazily), or ``None``."""
        if self.breaker_policy is None:
            return None
        with self._breakers_lock:
            breaker = self._breakers.get(fingerprint)
            if breaker is None:
                breaker = self.breaker_policy.build()
                self._breakers[fingerprint] = breaker
            return breaker

    def breakers(self) -> dict[str, CircuitBreaker]:
        """Snapshot of every instantiated breaker, keyed by fingerprint."""
        with self._breakers_lock:
            return dict(self._breakers)

    def _validate_batch(self, fingerprint: str, model: object, X: np.ndarray) -> None:
        """Reject malformed input before it reaches the compiled kernel."""
        if X.ndim != 2:
            raise ValueError(
                f"model {fingerprint!r}: expected a 2-D record batch, got "
                f"{X.ndim}-D input of shape {X.shape}"
            )
        width = getattr(model, "n_attributes", None)
        if width is not None and len(X) > 0 and X.shape[1] != width:
            raise ValueError(
                f"model {fingerprint!r}: expected {width} attribute column(s), "
                f"got batch of shape {X.shape}"
            )

    def _degrade(
        self, fingerprint: str, model: object, X: np.ndarray, method: str
    ) -> np.ndarray:
        """Answer from the fallback path while the breaker holds traffic."""
        stats = self.registry.stats(fingerprint)
        if self.fallback is None:
            raise CircuitOpen(
                f"circuit open for model {fingerprint!r} and no fallback "
                "is configured"
            )
        if self.fallback == PRIOR_FALLBACK:
            counts = getattr(model, "counts", None)
            if method == "apply" or counts is None:
                raise CircuitOpen(
                    f"circuit open for model {fingerprint!r}: majority-class "
                    f"prior cannot answer {method!r}"
                )
            totals = np.asarray(counts, dtype=np.float64).sum(axis=0)
            stats.count_fallback()
            if method == "predict":
                return np.full(len(X), int(np.argmax(totals)), dtype=np.int64)
            grand = totals.sum()
            proba = (
                totals / grand
                if grand > 0
                else np.full_like(totals, 1.0 / len(totals))
            )
            return np.tile(proba, (len(X), 1))
        fallback_model = self.registry.get(self.fallback)
        stats.count_fallback()
        return getattr(fallback_model, method)(X)

    def _shard_call(self, fn, X: np.ndarray, stats: ServingStats) -> np.ndarray:
        """One shard's execution, with bounded retry + deterministic backoff."""
        attempt = 0
        while True:
            try:
                return fn(X)
            except Exception:
                attempt += 1
                if attempt > self.shard_retries:
                    raise
                stats.count_shard_retry()
                if self.shard_backoff_s:
                    time.sleep(self.shard_backoff_s * attempt)

    # -- execution -----------------------------------------------------------

    def _run(
        self,
        target: str,
        X: np.ndarray,
        method: str,
        route_key: object = None,
        deadline: "Deadline | float | None" = None,
    ) -> np.ndarray:
        if self._closed:
            raise RuntimeError(
                "serving engine is closed; create a new engine to serve"
            )
        start = time.perf_counter()
        outcome = "error"
        error_name: str | None = None
        fingerprint: str | None = None
        route: str | None = None
        rows = 0
        with self.tracer.span(
            "request", endpoint=str(target), method=method
        ) as req_span:
            try:
                dl = as_deadline(deadline)
                fingerprint, route = self.registry.resolve_route(target, route_key)
                stats = self.registry.stats(fingerprint)
                model = self.registry.get(fingerprint)
                X = _as_batch(X)
                rows = len(X)
                self._validate_batch(fingerprint, model, X)
                if self.admission is not None and not self.admission.try_acquire():
                    stats.count_shed()
                    outcome = "shed"
                    raise Overloaded(
                        f"serve queue full ({self.admission.max_depth} in "
                        f"flight); request for {fingerprint!r} shed",
                        depth=self.admission.max_depth,
                        max_depth=self.admission.max_depth,
                    )
                try:
                    if dl.expired:
                        stats.count_timeout()
                        outcome = "deadline"
                        raise DeadlineExceeded(
                            f"deadline expired before executing request for "
                            f"{fingerprint!r}"
                        )
                    breaker = self.breaker(fingerprint)
                    if breaker is not None and not breaker.allow():
                        stats.count_breaker_rejection()
                        # _degrade either answers (fallback) or raises
                        # CircuitOpen, in which case "breaker" stands.
                        outcome = "breaker"
                        out = self._degrade(fingerprint, model, X, method)
                        outcome = "fallback"
                        return out
                    out = self._execute(fingerprint, X, method, dl, breaker, stats)
                    outcome = "ok"
                    return out
                finally:
                    if self.admission is not None:
                        self.admission.release()
            except DeadlineExceeded:
                outcome = "deadline"
                raise
            except BaseException as exc:
                if outcome == "error":
                    error_name = type(exc).__name__
                raise
            finally:
                req_span.annotate(outcome=outcome, rows=rows)
                if fingerprint is not None:
                    req_span.annotate(model=fingerprint[:12], route=route)
                if self.access_log is not None:
                    self.access_log.record(
                        source="engine",
                        endpoint=str(target),
                        fingerprint=fingerprint,
                        route=route,
                        method=method,
                        rows=rows,
                        outcome=outcome,
                        latency_s=time.perf_counter() - start,
                        trace_id=req_span.span_id if req_span.span_id >= 0 else None,
                        error=error_name,
                        route_key=None if route_key is None else str(route_key),
                    )

    def _execute(
        self,
        fingerprint: str,
        X: np.ndarray,
        method: str,
        dl: Deadline,
        breaker: CircuitBreaker | None,
        stats: ServingStats,
    ) -> np.ndarray:
        n = len(X)
        with self.registry.lease(fingerprint) as model:
            fn = getattr(model, method)
            with self.tracer.span(
                "serve_batch", model=fingerprint[:12], method=method, rows=n
            ) as span:
                start = time.perf_counter()
                try:
                    if self.workers == 1 or n < 2 * self.min_shard_rows:
                        out = self._shard_call(fn, X, stats)
                    else:
                        out = self._run_sharded(fn, X, n, dl, stats, span)
                except FutureTimeout:
                    stats.count_timeout()
                    if breaker is not None:
                        breaker.record_failure()
                    raise DeadlineExceeded(
                        f"deadline expired while executing a sharded batch "
                        f"for {fingerprint!r}"
                    ) from None
                except Exception:
                    if breaker is not None:
                        breaker.record_failure()
                    raise
                if breaker is not None:
                    breaker.record_success()
                stats.observe_batch(n, time.perf_counter() - start)
        return out

    def _run_sharded(
        self, fn, X: np.ndarray, n: int, dl: Deadline, stats: ServingStats, span
    ) -> np.ndarray:
        # Contiguous, balanced row ranges — the partition_chunks rule,
        # computed as bounds so a million-row batch is not listed out.
        shards = max(2, min(self.workers, n // self.min_shard_rows))
        base, extra = divmod(n, shards)
        bounds = []
        lo = 0
        for i in range(shards):
            hi = lo + base + (1 if i < extra else 0)
            bounds.append((lo, hi))
            lo = hi
        span.annotate(shards=shards)
        pool = self._ensure_pool()
        futures = [
            pool.submit(self._shard_call, fn, X[a:b], stats) for a, b in bounds
        ]
        parts = []
        try:
            for f in futures:
                parts.append(f.result(timeout=dl.remaining()))
        finally:
            if len(parts) < len(futures):
                for f in futures:
                    f.cancel()
        return np.concatenate(parts, axis=0)

    def predict(
        self,
        target: str,
        X: np.ndarray,
        *,
        route_key: object = None,
        deadline: "Deadline | float | None" = None,
    ) -> np.ndarray:
        """Majority-class labels for ``X`` under a model or endpoint."""
        return self._run(target, X, "predict", route_key, deadline)

    def predict_proba(
        self,
        target: str,
        X: np.ndarray,
        *,
        route_key: object = None,
        deadline: "Deadline | float | None" = None,
    ) -> np.ndarray:
        """Per-class probabilities for ``X`` under a model or endpoint."""
        return self._run(target, X, "predict_proba", route_key, deadline)

    def apply(
        self,
        target: str,
        X: np.ndarray,
        *,
        route_key: object = None,
        deadline: "Deadline | float | None" = None,
    ) -> np.ndarray:
        """Leaf node ids for ``X`` under a model or endpoint."""
        return self._run(target, X, "apply", route_key, deadline)


__all__ = ["ModelRegistry", "ServingEngine", "PRIOR_FALLBACK"]
