"""Deterministic fault injection for the serve path.

The training side earned its robustness claims through injected faults
(:mod:`repro.io.faults`); the serve path gets the same treatment.  Each
wrapper decorates a compiled model while keeping its ``fingerprint``
(and every other attribute) intact, so it registers and routes exactly
like the real model — the engine cannot tell it is being tested:

* :class:`SlowModel` — adds a fixed service delay per call; the knob
  behind the saturation benchmark's deterministic capacity.
* :class:`FlakyModel` — raises :class:`ModelExecutionError` on an
  explicit schedule (call indices) or at a seeded rate, bounded by
  ``max_consecutive`` like the I/O injector, so breaker trip/recovery
  sequences replay identically run to run.
* :class:`StuckModel` — blocks until an :class:`threading.Event` is
  set: the "stuck batch" case behind deadline and drain tests.

All wrappers count their calls (``calls``/``failures``) for test
assertions and are thread-safe.
"""

from __future__ import annotations

import threading
import time

import numpy as np


class ModelExecutionError(RuntimeError):
    """Injected model failure (the serve-side analogue of a read fault)."""


class _ModelWrapper:
    """Delegating base: everything not overridden falls through."""

    _METHODS = ("predict", "predict_proba", "apply")

    def __init__(self, inner) -> None:
        self._inner = inner
        self.calls = 0
        self._lock = threading.Lock()

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def _before_call(self) -> int:
        """Bump and return this call's 0-based index."""
        with self._lock:
            index = self.calls
            self.calls += 1
        return index

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._call("predict", X)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self._call("predict_proba", X)

    def apply(self, X: np.ndarray) -> np.ndarray:
        return self._call("apply", X)

    def _call(self, method: str, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class SlowModel(_ModelWrapper):
    """Adds ``delay_s`` of service time to every call, then delegates."""

    def __init__(self, inner, delay_s: float) -> None:
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        super().__init__(inner)
        self.delay_s = delay_s

    def _call(self, method: str, X: np.ndarray) -> np.ndarray:
        self._before_call()
        time.sleep(self.delay_s)
        return getattr(self._inner, method)(X)


class FlakyModel(_ModelWrapper):
    """Fails on a deterministic schedule, otherwise delegates.

    Parameters
    ----------
    fail_calls:
        Explicit 0-based call indices that raise — exact scripting for
        breaker tests (``range(5)`` = first five calls fail).
    fail_rate / seed / max_consecutive:
        Seeded random failures at ``fail_rate``, with at most
        ``max_consecutive`` back-to-back (the :mod:`repro.io.faults`
        bound: any retry budget above it is guaranteed to make
        progress).  Ignored when ``fail_calls`` is given.
    """

    def __init__(
        self,
        inner,
        fail_calls: "set[int] | None" = None,
        fail_rate: float = 0.0,
        seed: int = 0,
        max_consecutive: int = 2,
    ) -> None:
        if not 0.0 <= fail_rate <= 1.0:
            raise ValueError("fail_rate must be in [0, 1]")
        if max_consecutive < 1:
            raise ValueError("max_consecutive must be at least 1")
        super().__init__(inner)
        self.fail_calls = set(fail_calls) if fail_calls is not None else None
        self.fail_rate = fail_rate
        self.max_consecutive = max_consecutive
        self._rng = np.random.default_rng(seed)
        self._streak = 0
        self.failures = 0

    def _should_fail(self, index: int) -> bool:
        with self._lock:
            if self.fail_calls is not None:
                fail = index in self.fail_calls
            elif self._streak >= self.max_consecutive:
                fail = False
            else:
                fail = float(self._rng.random()) < self.fail_rate
            self._streak = self._streak + 1 if fail else 0
            if fail:
                self.failures += 1
            return fail

    def _call(self, method: str, X: np.ndarray) -> np.ndarray:
        index = self._before_call()
        if self._should_fail(index):
            raise ModelExecutionError(
                f"injected model failure on call {index} ({method})"
            )
        return getattr(self._inner, method)(X)


class StuckModel(_ModelWrapper):
    """Blocks every call until :attr:`release` is set (a stuck batch).

    ``entered`` is set as soon as a call starts blocking, so a test can
    wait for the batch to be verifiably in flight before acting.
    ``timeout_s`` bounds the stall so a broken test cannot hang the
    suite: an un-released call raises after the timeout.
    """

    def __init__(self, inner, timeout_s: float = 30.0) -> None:
        super().__init__(inner)
        self.release = threading.Event()
        self.entered = threading.Event()
        self.timeout_s = timeout_s

    def _call(self, method: str, X: np.ndarray) -> np.ndarray:
        self._before_call()
        self.entered.set()
        if not self.release.wait(self.timeout_s):
            raise ModelExecutionError("stuck model was never released")
        return getattr(self._inner, method)(X)


__all__ = ["FlakyModel", "ModelExecutionError", "SlowModel", "StuckModel"]
