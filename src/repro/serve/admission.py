"""Admission control and deadlines for the serving front-end.

A serving engine without overload protection converts excess load into
unbounded queueing: every caller eventually waits behind everyone else
and p99 latency grows without limit.  The production rule is the
opposite — **bound the queue and shed the excess**:

* :class:`AdmissionController` caps concurrent in-flight requests at an
  explicit depth.  Admission is non-blocking: a request arriving at a
  full queue is rejected *immediately* with :class:`Overloaded` instead
  of waiting, so admitted requests see bounded latency and rejected
  callers can retry elsewhere (or degrade) without stacking up.
* :class:`Deadline` carries a request's latency budget end-to-end
  (submit → batch → predict).  Work whose deadline has already expired
  is skipped — executing it would waste capacity producing an answer
  nobody is waiting for — and surfaces as :class:`DeadlineExceeded`.

Both are engine-agnostic and deterministic under an injectable clock,
so overload behaviour is unit-testable without wall-clock sleeps.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator


class Overloaded(RuntimeError):
    """Request rejected by admission control: the serve queue is full.

    Carries the queue state so callers (and tests) can see *why*:
    ``depth`` in-flight requests against a limit of ``max_depth``.
    """

    def __init__(self, message: str, depth: int = -1, max_depth: int = -1) -> None:
        super().__init__(message)
        self.depth = depth
        self.max_depth = max_depth


class DeadlineExceeded(TimeoutError):
    """A request's latency budget ran out before its answer was delivered."""


class Deadline:
    """An absolute point on a monotonic clock by which work must finish.

    ``Deadline(None)`` (aliased :data:`NO_DEADLINE`) never expires, so
    call sites need no ``is None`` branching.  Instances are immutable
    and safe to share across threads.
    """

    __slots__ = ("_at", "_clock")

    def __init__(
        self, at: float | None, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self._at = at
        self._clock = clock

    @classmethod
    def after(
        cls, seconds: float | None, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """Deadline ``seconds`` from now (``None`` → never expires)."""
        if seconds is None:
            return cls(None, clock)
        if seconds < 0:
            raise ValueError("deadline must be non-negative")
        return cls(clock() + seconds, clock)

    @property
    def expired(self) -> bool:
        """True once the clock has passed the deadline."""
        return self._at is not None and self._clock() >= self._at

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0), or ``None`` for no deadline."""
        if self._at is None:
            return None
        return max(0.0, self._at - self._clock())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._at is None:
            return "Deadline(None)"
        return f"Deadline(remaining={self.remaining():.4f}s)"


#: Shared never-expiring deadline.
NO_DEADLINE = Deadline(None)


def as_deadline(
    deadline: "Deadline | float | None", clock: Callable[[], float] = time.monotonic
) -> Deadline:
    """Coerce an API argument to a :class:`Deadline`.

    Accepts an existing deadline, a relative budget in seconds, or
    ``None`` (no deadline) — the lenient form every serve entry point
    takes.
    """
    if deadline is None:
        return NO_DEADLINE
    if isinstance(deadline, Deadline):
        return deadline
    return Deadline.after(float(deadline), clock)


class AdmissionController:
    """Bounded-depth, non-blocking admission gate for in-flight requests.

    ``max_depth`` is the hard cap on concurrently admitted requests
    (queued *and* executing — the engine holds the permit for the whole
    request).  :meth:`admit` either grants a permit immediately or
    raises :class:`Overloaded`; it never blocks, so shedding latency is
    O(1) no matter how saturated the engine is.

    Counters (``admitted`` / ``shed`` / ``peak_depth``) are cumulative
    and exported to Prometheus by
    :func:`repro.obs.export.record_admission`.
    """

    def __init__(self, max_depth: int) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self._depth = 0
        self.admitted = 0
        self.shed = 0
        self.peak_depth = 0
        self._lock = threading.Lock()

    @property
    def depth(self) -> int:
        """Requests currently holding a permit."""
        with self._lock:
            return self._depth

    def try_acquire(self) -> bool:
        """Take one permit if available; ``False`` (not blocking) if full."""
        with self._lock:
            if self._depth >= self.max_depth:
                self.shed += 1
                return False
            self._depth += 1
            self.admitted += 1
            if self._depth > self.peak_depth:
                self.peak_depth = self._depth
            return True

    def release(self) -> None:
        """Return one permit (paired with a successful :meth:`try_acquire`)."""
        with self._lock:
            if self._depth <= 0:
                raise RuntimeError("release without a matching acquire")
            self._depth -= 1

    @contextmanager
    def admit(self) -> Iterator[None]:
        """Hold a permit for the duration of one request.

        Raises :class:`Overloaded` immediately when the queue is full.
        """
        if not self.try_acquire():
            raise Overloaded(
                f"serve queue full: {self.max_depth} requests in flight",
                depth=self.max_depth,
                max_depth=self.max_depth,
            )
        try:
            yield
        finally:
            self.release()

    def snapshot(self) -> dict[str, int]:
        """Copy of the gate's counters and current depth."""
        with self._lock:
            return {
                "depth": self._depth,
                "max_depth": self.max_depth,
                "peak_depth": self.peak_depth,
                "admitted": self.admitted,
                "shed": self.shed,
            }


__all__ = [
    "AdmissionController",
    "Deadline",
    "DeadlineExceeded",
    "NO_DEADLINE",
    "Overloaded",
    "as_deadline",
]
