"""Per-model circuit breaking for the serving engine.

A model that fails every call (bad deploy, poisoned input distribution,
broken native kernel on one host) should not be allowed to consume the
serve queue failing one request at a time.  The classic three-state
breaker cuts it off:

* **closed** — traffic flows; consecutive failures are counted and any
  success resets the count.  ``failure_threshold`` consecutive failures
  *trip* the breaker.
* **open** — every call is rejected instantly (no model execution at
  all) until ``reset_timeout_s`` has elapsed on the breaker's clock.
* **half-open** — after the timeout, up to ``half_open_max_probes``
  concurrent probe requests are let through.  A probe success closes
  the breaker (full recovery); a probe failure re-opens it and restarts
  the timeout.

The clock is injectable, so trip/recovery sequences are exercised
deterministically in tests — no wall-clock sleeps.  State transitions
are counted (``trips`` / ``rejections``) and exported to Prometheus by
:func:`repro.obs.export.record_breaker` with the numeric state encoding
in :data:`STATE_CODES`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

#: Breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

#: Numeric encoding for the Prometheus state gauge.
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitOpen(RuntimeError):
    """Request refused because the model's circuit breaker is open."""


@dataclass(frozen=True)
class BreakerPolicy:
    """Configuration for the per-model breakers a serving engine creates.

    ``clock`` is the time source used for the open → half-open
    transition; tests pass a fake to step through recovery
    deterministically.
    """

    failure_threshold: int = 5
    reset_timeout_s: float = 30.0
    half_open_max_probes: int = 1
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be non-negative")
        if self.half_open_max_probes < 1:
            raise ValueError("half_open_max_probes must be at least 1")

    def build(self) -> "CircuitBreaker":
        """One breaker instance under this policy."""
        return CircuitBreaker(
            failure_threshold=self.failure_threshold,
            reset_timeout_s=self.reset_timeout_s,
            half_open_max_probes=self.half_open_max_probes,
            clock=self.clock,
        )


class CircuitBreaker:
    """Thread-safe consecutive-failure circuit breaker (see module doc)."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        half_open_max_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        BreakerPolicy(failure_threshold, reset_timeout_s, half_open_max_probes)
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_max_probes = half_open_max_probes
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.trips = 0
        self.rejections = 0
        self.probes = 0
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        """Current state, refreshing the open → half-open transition."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = HALF_OPEN
            self._probes_in_flight = 0

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._probes_in_flight = 0
        self.trips += 1

    def allow(self) -> bool:
        """May one request proceed right now?

        Counts a rejection when the answer is no; in half-open state,
        grants at most ``half_open_max_probes`` concurrent probes (the
        caller must report the probe's outcome via
        :meth:`record_success` / :meth:`record_failure`).
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._probes_in_flight < self.half_open_max_probes:
                    self._probes_in_flight += 1
                    self.probes += 1
                    return True
            self.rejections += 1
            return False

    def record_success(self) -> None:
        """Report one successful model execution."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._probes_in_flight = 0
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        """Report one failed model execution; may trip the breaker."""
        with self._lock:
            if self._state == HALF_OPEN:
                # The probe failed: the model is still unhealthy.
                self._trip()
                self._consecutive_failures = self.failure_threshold
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def snapshot(self) -> dict[str, object]:
        """Copy of the breaker's state and counters (metrics surface)."""
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "state_code": STATE_CODES[self._state],
                "consecutive_failures": self._consecutive_failures,
                "trips": self.trips,
                "rejections": self.rejections,
                "probes": self.probes,
            }


__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "CircuitOpen",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "STATE_CODES",
]
