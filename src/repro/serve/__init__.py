"""Model serving on top of the compiled inference engine.

:mod:`repro.serve.engine` holds the model registry (keyed by compiled-tree
fingerprint) and the batch execution engine; :mod:`repro.serve.batcher`
coalesces single-record requests into micro-batches for it.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.engine import ModelRegistry, ServingEngine

__all__ = ["ModelRegistry", "ServingEngine", "MicroBatcher"]
