"""Model serving on top of the compiled inference engine.

:mod:`repro.serve.engine` holds the model registry (fingerprint-keyed,
with named endpoints for canary rollout) and the batch execution engine;
:mod:`repro.serve.batcher` coalesces single-record requests into
micro-batches for it.  The robustness layer lives alongside:
:mod:`repro.serve.admission` (bounded queues, deadlines, load
shedding), :mod:`repro.serve.breaker` (per-model circuit breaking),
:mod:`repro.serve.rollout` (weighted stable/canary routing with
promote/rollback), and :mod:`repro.serve.faults` (deterministic
serve-path fault injection for tests and benchmarks).
"""

from repro.serve.admission import (
    AdmissionController,
    Deadline,
    DeadlineExceeded,
    NO_DEADLINE,
    Overloaded,
    as_deadline,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.breaker import BreakerPolicy, CircuitBreaker, CircuitOpen
from repro.serve.engine import PRIOR_FALLBACK, ModelRegistry, ServingEngine
from repro.serve.faults import (
    FlakyModel,
    ModelExecutionError,
    SlowModel,
    StuckModel,
)
from repro.serve.rollout import Endpoint, ModelInUseError, RolloutManager

__all__ = [
    "ModelRegistry",
    "ServingEngine",
    "MicroBatcher",
    "PRIOR_FALLBACK",
    "AdmissionController",
    "Deadline",
    "DeadlineExceeded",
    "NO_DEADLINE",
    "Overloaded",
    "as_deadline",
    "BreakerPolicy",
    "CircuitBreaker",
    "CircuitOpen",
    "Endpoint",
    "ModelInUseError",
    "RolloutManager",
    "FlakyModel",
    "ModelExecutionError",
    "SlowModel",
    "StuckModel",
]
