"""Request micro-batching for the serving engine.

Single-record prediction requests are the worst case for a vectorized
engine: every call pays batch setup for one row.  :class:`MicroBatcher`
sits in front of :class:`~repro.serve.engine.ServingEngine` and coalesces
concurrent requests:

* :meth:`submit` enqueues one record and returns a
  :class:`concurrent.futures.Future` immediately;
* a background flush thread drains the queue into one engine call when
  either ``max_batch`` records are waiting or the oldest request has
  waited ``max_delay_s`` (whichever comes first), then resolves every
  future from the batch result;
* :meth:`close` flushes whatever is queued and joins the thread, so no
  future is ever left pending.

An engine-side failure is propagated to every future in the failed
batch rather than killing the flush thread.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np

from repro.serve.engine import ServingEngine


class MicroBatcher:
    """Coalesces single-record requests into batched engine calls.

    Parameters
    ----------
    engine:
        The executing engine.
    fingerprint:
        Registry key of the model this batcher serves.
    method:
        Engine method to call per batch: ``"predict"``,
        ``"predict_proba"`` or ``"apply"``.
    max_batch:
        Flush as soon as this many records are queued.
    max_delay_s:
        Flush when the oldest queued record has waited this long.
    """

    def __init__(
        self,
        engine: ServingEngine,
        fingerprint: str,
        method: str = "predict",
        max_batch: int = 256,
        max_delay_s: float = 0.005,
    ) -> None:
        if method not in ("predict", "predict_proba", "apply"):
            raise ValueError(f"unknown engine method {method!r}")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay_s <= 0:
            raise ValueError("max_delay_s must be positive")
        engine.registry.get(fingerprint)  # fail fast on unknown models
        self.engine = engine
        self.fingerprint = fingerprint
        self.method = method
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self._rows: list[np.ndarray] = []
        self._futures: list[Future] = []
        self._deadline = 0.0
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self._thread = threading.Thread(
            target=self._flush_loop, name="cmp-batcher", daemon=True
        )
        self._thread.start()

    # -- client side ---------------------------------------------------------

    def submit(self, row: np.ndarray) -> Future:
        """Enqueue one record; the future resolves to its prediction."""
        x = np.asarray(row, dtype=np.float64).reshape(-1)
        future: Future = Future()
        with self._wake:
            if self._closed:
                raise RuntimeError("batcher is closed")
            if not self._rows:
                # The flush window is anchored to the *oldest* request.
                self._deadline = time.perf_counter() + self.max_delay_s
            self._rows.append(x)
            self._futures.append(future)
            self.engine.registry.stats(self.fingerprint).count_request()
            self._wake.notify()
        return future

    def close(self) -> None:
        """Flush pending requests and stop the background thread."""
        with self._wake:
            if self._closed:
                return
            self._closed = True
            self._wake.notify()
        self._thread.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- flush thread --------------------------------------------------------

    def _take_batch(self) -> tuple[list[np.ndarray], list[Future]]:
        rows, futures = self._rows, self._futures
        self._rows, self._futures = [], []
        return rows, futures

    def _flush_loop(self) -> None:
        while True:
            with self._wake:
                while not self._closed and len(self._rows) < self.max_batch:
                    if self._rows:
                        remaining = self._deadline - time.perf_counter()
                        if remaining <= 0:
                            break  # window expired: flush a partial batch
                        self._wake.wait(timeout=remaining)
                    else:
                        self._wake.wait()
                rows, futures = self._take_batch()
                done = self._closed
            if rows:
                self._execute(rows, futures)
            if done:
                return

    def _execute(self, rows: list[np.ndarray], futures: list[Future]) -> None:
        # The flush span wraps coalescing plus the engine call (which
        # records its own child serve_batch span on the same tracer).
        with self.engine.tracer.span(
            "flush", rows=len(rows), method=self.method
        ):
            try:
                X = np.vstack(rows)
                out = getattr(self.engine, self.method)(self.fingerprint, X)
            except BaseException as exc:  # propagate, don't kill the thread
                for f in futures:
                    f.set_exception(exc)
                return
            for i, f in enumerate(futures):
                f.set_result(out[i])


__all__ = ["MicroBatcher"]
