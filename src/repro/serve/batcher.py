"""Request micro-batching for the serving engine.

Single-record prediction requests are the worst case for a vectorized
engine: every call pays batch setup for one row.  :class:`MicroBatcher`
sits in front of :class:`~repro.serve.engine.ServingEngine` and coalesces
concurrent requests:

* :meth:`submit` enqueues one record and returns a
  :class:`concurrent.futures.Future` immediately;
* a background flush thread drains the queue into one engine call when
  either ``max_batch`` records are waiting or the oldest request has
  waited ``max_delay_s`` (whichever comes first), then resolves every
  future from the batch result;
* :meth:`close` flushes whatever is queued and joins the thread, so no
  future is ever left pending.

The batcher also enforces the serve path's robustness contract at
request granularity:

* **admission** — ``max_pending`` bounds the queue; a request arriving
  at a full queue is rejected immediately with
  :class:`~repro.serve.admission.Overloaded` (counted as shed);
* **deadlines** — each request may carry a latency budget.  The flush
  thread wakes no later than the earliest deadline, requests that
  expire before execution fail fast with
  :class:`~repro.serve.admission.DeadlineExceeded` *without* being sent
  to the engine (an all-expired batch skips the predict call entirely),
  and a request whose deadline lapses while its batch is mid-execution
  is failed at delivery rather than handed a late answer.

An engine-side failure is propagated to every future in the failed
batch rather than killing the flush thread.

When the engine carries an :class:`~repro.obs.access.AccessLog`, the
batcher emits one ``source="batcher"`` record per *submitted* request —
shed at submit, expired before or after execution, failed with the
batch, or answered — with its queue wait and flush ``batch_id``; the
engine's own ``source="engine"`` record covers the coalesced batch
call.  A request answered by the engine's fallback path logs ``ok``
here (it got an answer) while the engine record says ``fallback``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np

from repro.serve.admission import DeadlineExceeded, Overloaded
from repro.serve.breaker import CircuitOpen
from repro.serve.engine import ServingEngine


class MicroBatcher:
    """Coalesces single-record requests into batched engine calls.

    Parameters
    ----------
    engine:
        The executing engine.
    target:
        Registry key — or endpoint name — of the model this batcher
        serves.
    method:
        Engine method to call per batch: ``"predict"``,
        ``"predict_proba"`` or ``"apply"``.
    max_batch:
        Flush as soon as this many records are queued.
    max_delay_s:
        Flush when the oldest queued record has waited this long.
    max_pending:
        Bound on queued-but-unflushed requests; ``None`` keeps the
        queue unbounded (the pre-hardening behaviour).
    default_deadline_s:
        Latency budget applied to requests submitted without one;
        ``None`` means no deadline.
    """

    def __init__(
        self,
        engine: ServingEngine,
        target: str,
        method: str = "predict",
        max_batch: int = 256,
        max_delay_s: float = 0.005,
        max_pending: int | None = None,
        default_deadline_s: float | None = None,
    ) -> None:
        if method not in ("predict", "predict_proba", "apply"):
            raise ValueError(f"unknown engine method {method!r}")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay_s <= 0:
            raise ValueError("max_delay_s must be positive")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if default_deadline_s is not None and default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be positive")
        engine.registry.stats_for(target)  # fail fast on unknown targets
        self.engine = engine
        self.target = target
        self.method = method
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.max_pending = max_pending
        self.default_deadline_s = default_deadline_s
        self._rows: list[np.ndarray] = []
        self._futures: list[Future] = []
        self._expiries: list[float | None] = []
        self._submits: list[float] = []
        self._batch_seq = 0
        self._deadline = 0.0
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self._thread = threading.Thread(
            target=self._flush_loop, name="cmp-batcher", daemon=True
        )
        self._thread.start()

    @property
    def fingerprint(self) -> str:
        """Backwards-compatible alias for :attr:`target`."""
        return self.target

    def _stats(self):
        # Request-level counters land on the target's stable model; only
        # actual engine execution routes (and counts) canary traffic.
        return self.engine.registry.stats_for(self.target)

    def _log(
        self,
        outcome: str,
        submit_s: float,
        queue_wait_s: float | None,
        batch_id: int | None,
        error: str | None = None,
    ) -> None:
        """One per-request access record (no-op without an engine log).

        Fingerprint/route stay ``None``: routing happens inside the
        engine call, whose ``source="engine"`` record attributes the
        whole flush; these records attribute the *request's* fate.
        """
        log = self.engine.access_log
        if log is None:
            return
        log.record(
            source="batcher",
            endpoint=str(self.target),
            fingerprint=None,
            route=None,
            method=self.method,
            rows=1,
            outcome=outcome,
            latency_s=time.perf_counter() - submit_s,
            queue_wait_s=queue_wait_s,
            batch_id=batch_id,
            error=error,
        )

    # -- client side ---------------------------------------------------------

    def submit(self, row: np.ndarray, deadline_s: float | None = None) -> Future:
        """Enqueue one record; the future resolves to its prediction.

        ``deadline_s`` is this request's latency budget (falling back to
        ``default_deadline_s``): if it expires before the answer is
        delivered, the future fails with :class:`DeadlineExceeded`.
        Raises :class:`Overloaded` when ``max_pending`` requests are
        already queued, and :class:`RuntimeError` after :meth:`close`.
        """
        x = np.asarray(row, dtype=np.float64).reshape(-1)
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        future: Future = Future()
        with self._wake:
            if self._closed:
                raise RuntimeError(
                    "batcher is closed; its flush thread has stopped and "
                    "would never serve this request"
                )
            now = time.perf_counter()
            if (
                self.max_pending is not None
                and len(self._rows) >= self.max_pending
            ):
                self._stats().count_shed()
                self._log("shed", now, 0.0, None)
                raise Overloaded(
                    f"micro-batch queue full ({self.max_pending} pending)",
                    depth=len(self._rows),
                    max_depth=self.max_pending,
                )
            if not self._rows:
                # The flush window is anchored to the *oldest* request.
                self._deadline = now + self.max_delay_s
            self._rows.append(x)
            self._futures.append(future)
            self._expiries.append(
                None if deadline_s is None else now + deadline_s
            )
            self._submits.append(now)
            self._stats().count_request()
            self._wake.notify()
        return future

    def close(self) -> None:
        """Flush pending requests and stop the background thread."""
        with self._wake:
            if self._closed:
                return
            self._closed = True
            self._wake.notify()
        self._thread.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- flush thread --------------------------------------------------------

    def _take_batch(
        self,
    ) -> tuple[list[np.ndarray], list[Future], list[float | None], list[float]]:
        rows, futures = self._rows, self._futures
        expiries, submits = self._expiries, self._submits
        self._rows, self._futures, self._expiries, self._submits = [], [], [], []
        return rows, futures, expiries, submits

    def _wake_at(self) -> float:
        """Earliest moment the flush thread must act (window or deadline)."""
        wake = self._deadline
        for expiry in self._expiries:
            if expiry is not None and expiry < wake:
                wake = expiry
        return wake

    def _flush_loop(self) -> None:
        while True:
            with self._wake:
                while not self._closed and len(self._rows) < self.max_batch:
                    if self._rows:
                        remaining = self._wake_at() - time.perf_counter()
                        if remaining <= 0:
                            break  # window or a deadline expired: act now
                        self._wake.wait(timeout=remaining)
                    else:
                        self._wake.wait()
                rows, futures, expiries, submits = self._take_batch()
                done = self._closed
            if rows:
                self._execute(rows, futures, expiries, submits)
            if done:
                return

    def _reject_expired(
        self,
        rows: list[np.ndarray],
        futures: list[Future],
        expiries: list[float | None],
        submits: list[float],
        batch_id: int,
    ) -> tuple[list[np.ndarray], list[Future], list[float | None], list[float]]:
        """Fail requests whose budget already ran out; return the survivors."""
        now = time.perf_counter()
        live_rows: list[np.ndarray] = []
        live_futures: list[Future] = []
        live_expiries: list[float | None] = []
        live_submits: list[float] = []
        expired = 0
        for row, future, expiry, submit in zip(rows, futures, expiries, submits):
            if expiry is not None and now >= expiry:
                expired += 1
                self._log("deadline", submit, now - submit, batch_id)
                future.set_exception(
                    DeadlineExceeded("request deadline expired before execution")
                )
            else:
                live_rows.append(row)
                live_futures.append(future)
                live_expiries.append(expiry)
                live_submits.append(submit)
        if expired:
            self._stats().count_timeout(expired)
        return live_rows, live_futures, live_expiries, live_submits

    @staticmethod
    def _failure_outcome(exc: BaseException) -> str:
        """Access-log outcome for an engine-side batch failure."""
        if isinstance(exc, Overloaded):
            return "shed"
        if isinstance(exc, DeadlineExceeded):
            return "deadline"
        if isinstance(exc, CircuitOpen):
            return "breaker"
        return "error"

    def _execute(
        self,
        rows: list[np.ndarray],
        futures: list[Future],
        expiries: list[float | None],
        submits: list[float],
    ) -> None:
        batch_id = self._batch_seq
        self._batch_seq += 1
        rows, futures, expiries, submits = self._reject_expired(
            rows, futures, expiries, submits, batch_id
        )
        if not rows:
            return  # every request expired: skip the predict call entirely
        # The flush span wraps coalescing plus the engine call (which
        # records its own child request/serve_batch spans on the same
        # tracer).
        with self.engine.tracer.span(
            "flush", rows=len(rows), method=self.method, batch=batch_id
        ):
            exec_start = time.perf_counter()
            try:
                X = np.vstack(rows)
                out = getattr(self.engine, self.method)(self.target, X)
            except BaseException as exc:  # propagate, don't kill the thread
                outcome = self._failure_outcome(exc)
                for f, submit in zip(futures, submits):
                    self._log(
                        outcome,
                        submit,
                        exec_start - submit,
                        batch_id,
                        error=type(exc).__name__ if outcome == "error" else None,
                    )
                    f.set_exception(exc)
                return
            now = time.perf_counter()
            late = 0
            for i, (f, expiry, submit) in enumerate(
                zip(futures, expiries, submits)
            ):
                if expiry is not None and now >= expiry:
                    # The answer exists but arrived past the caller's
                    # budget: deliver the timeout, not a late result.
                    late += 1
                    self._log("deadline", submit, exec_start - submit, batch_id)
                    f.set_exception(
                        DeadlineExceeded(
                            "request deadline expired while its batch was "
                            "executing"
                        )
                    )
                else:
                    self._log("ok", submit, exec_start - submit, batch_id)
                    f.set_result(out[i])
            if late:
                self._stats().count_timeout(late)


__all__ = ["MicroBatcher"]
