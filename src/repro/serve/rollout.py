"""Versioned rollout: named endpoints over weighted {stable, canary} models.

Production serving never swaps a model by handing every client a new
fingerprint.  Clients address a stable *endpoint name*; the registry
maps the name to a *stable* fingerprint plus, during a rollout, a
*canary* fingerprint carrying a configurable fraction of traffic:

* **Deterministic hash routing** — a request's ``route_key`` (user id,
  session, shard…) is hashed with the endpoint name; keys whose hash
  fraction falls below ``canary_weight`` go to the canary.  The same
  key always lands on the same version (sticky, replayable), and the
  canary fraction converges to the weight across distinct keys.
  Requests without a key draw from a per-endpoint counter, which
  spreads traffic at the configured weight and stays deterministic for
  a given call sequence.
* **One-call promote / rollback** — :meth:`RolloutManager.promote`
  atomically makes the canary the new stable;
  :meth:`RolloutManager.rollback` atomically drops the canary.  Either
  is a single pointer flip under the manager lock, so there is no
  window where an endpoint routes to nothing (zero-downtime hot swap).
* **Drain awareness** — the manager knows which endpoints route to a
  fingerprint (:meth:`routes_to`), which the registry's
  ``unregister`` uses to refuse removing a live version and to defer
  removal until in-flight requests drain.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field


class ModelInUseError(RuntimeError):
    """Refused to remove a model that an endpoint still routes traffic to."""


def route_fraction(endpoint: str, key: str) -> float:
    """Deterministic hash of ``(endpoint, key)`` in ``[0, 1)``.

    Hashing the endpoint name in keeps one key's canary membership
    independent across endpoints — a user canaried on one endpoint is
    not automatically canaried on all of them.
    """
    digest = hashlib.sha256(f"{endpoint}\x00{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass
class Endpoint:
    """One named route: a stable fingerprint and an optional weighted canary."""

    name: str
    stable: str
    canary: str | None = None
    canary_weight: float = 0.0
    #: Monotone counter, bumped whenever the stable fingerprint changes
    #: (repoint or promote).  Lets a client observing an endpoint over
    #: time assert it never travels backwards through model versions.
    version: int = 1
    #: Requests routed to each version (cumulative, for tests/metrics).
    stable_routes: int = 0
    canary_routes: int = 0
    #: Keyless-request counter feeding the deterministic spread.
    _seq: int = field(default=0, repr=False)

    def snapshot(self) -> dict[str, object]:
        """Plain-dict copy (CLI / metrics surface)."""
        return {
            "name": self.name,
            "stable": self.stable,
            "canary": self.canary,
            "canary_weight": self.canary_weight,
            "version": self.version,
            "stable_routes": self.stable_routes,
            "canary_routes": self.canary_routes,
        }


class RolloutManager:
    """Thread-safe endpoint table; see the module docstring.

    The manager stores fingerprints as opaque strings — model existence
    checks belong to the :class:`~repro.serve.engine.ModelRegistry`
    wrapping it, which is also what keeps the lock order one-way
    (registry → manager, never back).
    """

    def __init__(self) -> None:
        self._endpoints: dict[str, Endpoint] = {}
        self._lock = threading.Lock()

    # -- configuration -------------------------------------------------------

    def deploy(self, name: str, fingerprint: str) -> None:
        """Create endpoint ``name`` serving ``fingerprint``, or repoint its
        stable version (any live canary is kept)."""
        if not name:
            raise ValueError("endpoint name must be non-empty")
        with self._lock:
            ep = self._endpoints.get(name)
            if ep is None:
                self._endpoints[name] = Endpoint(name=name, stable=fingerprint)
            elif ep.stable != fingerprint:
                ep.stable = fingerprint
                ep.version += 1

    def set_canary(self, name: str, fingerprint: str, weight: float) -> None:
        """Start (or retune) a canary on ``name`` at traffic ``weight``."""
        if not 0.0 <= weight <= 1.0:
            raise ValueError("canary weight must be in [0, 1]")
        with self._lock:
            ep = self._require(name)
            ep.canary = fingerprint
            ep.canary_weight = weight

    def promote(self, name: str) -> str:
        """Make the canary the new stable; returns the *old* stable.

        One atomic pointer flip: no request can observe an endpoint
        without a stable version.
        """
        with self._lock:
            ep = self._require(name)
            if ep.canary is None:
                raise ValueError(f"endpoint {name!r} has no canary to promote")
            old = ep.stable
            ep.stable = ep.canary
            ep.canary = None
            ep.canary_weight = 0.0
            ep.version += 1
            return old

    def rollback(self, name: str) -> str:
        """Drop the canary instantly; returns the dropped fingerprint."""
        with self._lock:
            ep = self._require(name)
            if ep.canary is None:
                raise ValueError(f"endpoint {name!r} has no canary to roll back")
            dropped = ep.canary
            ep.canary = None
            ep.canary_weight = 0.0
            return dropped

    def remove_endpoint(self, name: str) -> None:
        """Delete endpoint ``name`` (its models stay registered)."""
        with self._lock:
            self._require(name)
            del self._endpoints[name]

    # -- routing -------------------------------------------------------------

    def resolve(self, name: str, route_key: object = None) -> str:
        """Fingerprint serving this request, per the weighted hash route."""
        return self.resolve_with_route(name, route_key)[0]

    def resolve_with_route(
        self, name: str, route_key: object = None
    ) -> tuple[str, str]:
        """Like :meth:`resolve`, also naming the side taken.

        Returns ``(fingerprint, route)`` with ``route`` one of
        ``"stable"`` / ``"canary"`` — the per-request attribution the
        access log records, which the aggregate ``stable_routes`` /
        ``canary_routes`` counters cannot provide.
        """
        with self._lock:
            ep = self._require(name)
            if ep.canary is None or ep.canary_weight <= 0.0:
                ep.stable_routes += 1
                return ep.stable, "stable"
            if route_key is None:
                route_key = f"\x00seq:{ep._seq}"
                ep._seq += 1
            if route_fraction(name, str(route_key)) < ep.canary_weight:
                ep.canary_routes += 1
                return ep.canary, "canary"
            ep.stable_routes += 1
            return ep.stable, "stable"

    def peek(self, name: str) -> str:
        """The stable fingerprint of ``name``, without counting a route."""
        with self._lock:
            return self._require(name).stable

    def version(self, name: str) -> int:
        """Current stable-version counter of ``name``."""
        with self._lock:
            return self._require(name).version

    # -- introspection -------------------------------------------------------

    def has_endpoint(self, name: str) -> bool:
        with self._lock:
            return name in self._endpoints

    def routes_to(self, fingerprint: str) -> list[str]:
        """Names of endpoints whose stable or canary is ``fingerprint``."""
        with self._lock:
            return [
                ep.name
                for ep in self._endpoints.values()
                if fingerprint in (ep.stable, ep.canary)
            ]

    def endpoints(self) -> list[dict[str, object]]:
        """Snapshot of every endpoint, in creation order."""
        with self._lock:
            return [ep.snapshot() for ep in self._endpoints.values()]

    def _require(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise KeyError(f"no endpoint named {name!r}") from None


__all__ = ["Endpoint", "ModelInUseError", "RolloutManager", "route_fraction"]
