"""Differential verification of shared-scan ensembles.

Three layers of checks on top of :mod:`repro.verify.differential`:

1. **Member-vs-solo bit identity** — every member of a shared-scan
   bagged forest must equal, node for node and bit for bit, the tree a
   standalone :class:`~repro.core.cmp_s.CMPSBuilder` builds on the
   member's materialized bootstrap sample with the member's derived
   seed.  This is the central claim of
   :class:`~repro.ensemble.bagging.BaggedForestBuilder`.
2. **Per-member oracle checks** — each member tree is then verified
   against the exact-split oracle *on its own bootstrap sample* with
   :func:`~repro.verify.differential.check_tree_against_oracle`, so the
   paper's estimator bound holds inside the ensemble too.
3. **Bit-identity matrix** — the whole forest is rebuilt across
   ``{thread, process} x workers {1, 4}`` and every member signature
   must match the serial reference; the boosted forest is held to the
   same matrix via its packed fingerprint.  Finally the packed
   :class:`~repro.core.compiled.CompiledForest` scoring path must agree
   bit-for-bit with an explicit per-member accumulation loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import BuilderConfig
from repro.core.cmp_s import CMPSBuilder
from repro.data.dataset import Dataset
from repro.ensemble import (
    BaggedForestBuilder,
    HistGradientBoostingBuilder,
    bootstrap_indices,
    member_seed,
)
from repro.verify.differential import (
    Finding,
    GapStats,
    check_tree_against_oracle,
    tree_signature,
)

#: The backend/worker grid every forest build must reproduce exactly.
IDENTITY_MATRIX = (
    ("thread", 1),
    ("thread", 4),
    ("process", 1),
    ("process", 4),
)


@dataclass
class ForestReport:
    """Everything :func:`run_forest_differential` learned about one dataset."""

    findings: list[Finding] = field(default_factory=list)
    member_stats: list[GapStats] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was raised."""
        return not any(f.severity == "error" for f in self.findings)


def forest_signatures(forest) -> tuple:
    """Member tree signatures, in member order."""
    return tuple(tree_signature(tree) for tree in forest.members)


def run_forest_differential(
    dataset: Dataset,
    config: BuilderConfig,
    n_trees: int = 3,
    n_iterations: int = 2,
    safety: float = 2.0,
    matrix: tuple = IDENTITY_MATRIX,
    tracer=None,
) -> ForestReport:
    """Verify the shared-scan ensembles on one dataset (module docstring)."""
    n = dataset.n_records
    cfg = config.with_(
        prune="none",
        reservoir_capacity=max(config.reservoir_capacity, n),
        scan_workers=1,
        scan_backend="thread",
    )
    report = ForestReport()

    try:
        shared = BaggedForestBuilder(cfg, n_trees=n_trees, tracer=tracer).build(dataset)
    except Exception as exc:  # noqa: BLE001 - crashes become findings
        report.findings.append(
            Finding("bagged-CMP-S", "crash", f"{type(exc).__name__}: {exc}")
        )
        return report

    # --- 1 + 2: every member vs its solo twin, then vs the oracle. --------
    for t, member in enumerate(shared.forest.members):
        label = f"bagged-CMP-S[{t}]"
        boot = dataset.take(np.sort(bootstrap_indices(cfg.seed, t, n)))
        solo_cfg = cfg.with_(seed=member_seed(cfg.seed, t))
        solo = CMPSBuilder(solo_cfg, tracer=tracer).build(boot).tree
        if tree_signature(member) != tree_signature(solo):
            report.findings.append(
                Finding(
                    label,
                    "shared_scan_divergence",
                    "shared-scan member is not bit-identical to the solo "
                    "build on its bootstrap sample",
                )
            )
        member_findings, gaps = check_tree_against_oracle(
            member, boot, solo_cfg, label, safety=safety
        )
        report.findings.extend(member_findings)
        report.member_stats.append(gaps)

    # --- 3a: backend/worker bit-identity matrix (bagging). ----------------
    ref_sigs = forest_signatures(shared.forest)
    for backend, workers in matrix:
        mcfg = cfg.with_(scan_backend=backend, scan_workers=workers)
        try:
            rebuilt = BaggedForestBuilder(mcfg, n_trees=n_trees, tracer=tracer).build(
                dataset
            )
        except Exception as exc:  # noqa: BLE001
            report.findings.append(
                Finding(
                    "bagged-CMP-S",
                    "crash",
                    f"{backend}/workers={workers}: {type(exc).__name__}: {exc}",
                )
            )
            continue
        if forest_signatures(rebuilt.forest) != ref_sigs:
            report.findings.append(
                Finding(
                    "bagged-CMP-S",
                    "forest_matrix_divergence",
                    f"forest built with backend={backend} workers={workers} "
                    "is not bit-identical to the serial reference",
                )
            )

    # --- 3b: the same matrix for the boosted forest (fingerprints). -------
    boost_forest = None
    try:
        boost_ref = HistGradientBoostingBuilder(
            cfg, n_iterations=n_iterations, tracer=tracer
        ).build(dataset)
        boost_forest = boost_ref.forest
        ref_fp = boost_forest.compiled().fingerprint
        for backend, workers in matrix:
            mcfg = cfg.with_(scan_backend=backend, scan_workers=workers)
            rebuilt = HistGradientBoostingBuilder(
                mcfg, n_iterations=n_iterations, tracer=tracer
            ).build(dataset)
            if rebuilt.forest.compiled().fingerprint != ref_fp:
                report.findings.append(
                    Finding(
                        "hist-gbdt",
                        "forest_matrix_divergence",
                        f"boosted forest with backend={backend} "
                        f"workers={workers} diverges from the serial reference",
                    )
                )
    except Exception as exc:  # noqa: BLE001
        report.findings.append(
            Finding("hist-gbdt", "crash", f"{type(exc).__name__}: {exc}")
        )

    # --- 3c: packed scoring vs explicit per-member accumulation. ----------
    for label, forest in (
        ("bagged-CMP-S", shared.forest),
        ("hist-gbdt", boost_forest),
    ):
        if forest is None:
            continue
        cf = forest.compiled()
        X = dataset.X
        acc = np.tile(cf.base, (len(X), 1))
        for t, member in enumerate(cf.members):
            rows = cf.tree_offsets[t] + member.route(X)
            acc += cf.values[cf.leaf_row[rows]]
        if not np.array_equal(cf.decision_values(X), acc):
            report.findings.append(
                Finding(
                    label,
                    "packed_scoring_divergence",
                    "CompiledForest.decision_values disagrees with the "
                    "per-member accumulation loop",
                )
            )
    return report


__all__ = [
    "ForestReport",
    "IDENTITY_MATRIX",
    "forest_signatures",
    "run_forest_differential",
]
