"""Brute-force exact split oracle: the harness's ground truth.

The oracle evaluates the gini of **every** candidate split on the actual
records of a node — every cut point between distinct values of every
continuous attribute, every binary category subset of every categorical
attribute (exhaustive up to a cardinality limit, Breiman-ordering
heuristic beyond it), and optionally every two-attribute linear split on
tiny nodes.  Nothing is estimated, discretized or sampled, so its per-node
minima are the reference CMP's interval-based estimates are measured
against.

:class:`OracleBuilder` grows a whole tree with these exact splits under
the *same* stopping rules as the scan-based builders (``min_records``,
``min_gini``, ``max_depth``, ``min_gain``), which makes its trees directly
comparable: any accuracy or structure delta is attributable to split
quality alone.

Complexity is O(n log n) per attribute per node for numeric splits,
O(2^k) for exhaustive categorical subsets, and O(n^2) candidate slopes
for linear splits — fine for verification-sized data, never for training.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.core.builder import TreeBuilder
from repro.core.gini import exact_best_threshold, gini, gini_partition
from repro.core.histogram import CategoryHistogram
from repro.core.splits import CategoricalSplit, LinearSplit, NumericSplit, Split
from repro.core.tree import DecisionTree, Node, TreeAccount
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.io.metrics import BuildStats


@dataclass(frozen=True)
class OracleSplit:
    """Exhaustive per-node optimum, broken out by split family.

    ``gini`` / ``split`` describe the overall winner among the families
    the caller asked for.  The per-family minima stay visible so the
    differential checks can compare like with like (e.g. CMP's univariate
    threshold against ``numeric_gini``, not against a linear optimum the
    builder never searches).  Families without a valid split are ``inf``.
    """

    split: Split | None
    gini: float
    numeric_gini: float = np.inf
    #: Attribute index of the best numeric split (-1 when none exists).
    numeric_attr: int = -1
    #: Best subset split found by the shared Breiman-ordering heuristic —
    #: the *same* procedure every in-repo builder runs, hence the fair
    #: reference for their categorical splits.
    categorical_gini: float = np.inf
    #: Best subset over all 2^(k-1)-1 bipartitions (equals the heuristic
    #: for 2 classes; may be lower for 3+).  ``inf`` when not computed.
    categorical_exhaustive_gini: float = np.inf
    linear_gini: float = np.inf

    @property
    def found(self) -> bool:
        """True when at least one valid split exists."""
        return self.split is not None


def best_numeric_split(
    X: np.ndarray, y: np.ndarray, schema: Schema
) -> tuple[NumericSplit | None, float]:
    """Exact best ``a <= C`` split over all continuous attributes.

    Ties between attributes break to the lowest attribute index, matching
    the builders' ``(score, attr)`` ordering.
    """
    best: NumericSplit | None = None
    best_gini = np.inf
    for attr in schema.continuous_indices():
        try:
            thr, g = exact_best_threshold(X[:, attr], y, schema.n_classes)
        except ValueError:
            continue
        if g < best_gini - 1e-15:
            best_gini = g
            best = NumericSplit(attr, thr)
    return best, best_gini


def best_categorical_split(
    codes: np.ndarray,
    y: np.ndarray,
    n_categories: int,
    n_classes: int,
    exhaustive_limit: int = 16,
) -> tuple[np.ndarray | None, float, np.ndarray | None, float]:
    """Best subset split of one categorical attribute, two ways.

    Returns ``(heuristic_mask, heuristic_gini, exhaustive_mask,
    exhaustive_gini)``.  The heuristic pair comes from the shared
    :meth:`~repro.core.histogram.CategoryHistogram.best_subset_split`;
    the exhaustive pair enumerates every bipartition of the *populated*
    categories when there are at most ``exhaustive_limit`` of them
    (otherwise it mirrors the heuristic).  ``(None, inf, None, inf)``
    when no valid split exists.
    """
    hist = CategoryHistogram(n_categories, n_classes)
    hist.update(codes.astype(np.int64), y)
    try:
        heur_mask, heur_gini = hist.best_subset_split()
    except ValueError:
        return None, np.inf, None, np.inf

    counts = hist.counts
    present = np.nonzero(counts.sum(axis=1) > 0)[0]
    k = len(present)
    if k > exhaustive_limit:
        return heur_mask, heur_gini, heur_mask, heur_gini

    totals = counts.sum(axis=0)
    # Enumerate bipartitions with the first populated category pinned to
    # the right side — each unordered partition is visited exactly once.
    free = present[1:]
    n_subsets = (1 << len(free)) - 1
    best_gini = np.inf
    best_mask: np.ndarray | None = None
    subset_counts = counts[free]
    for bits in range(1, n_subsets + 1):
        sel = (bits >> np.arange(len(free))) & 1
        left = (sel[:, None] * subset_counts).sum(axis=0)
        g = float(gini_partition(left, totals - left))
        if g < best_gini - 1e-15:
            best_gini = g
            mask = np.zeros(n_categories, dtype=bool)
            mask[free[sel.astype(bool)]] = True
            best_mask = mask
    if best_mask is None:
        # Single populated category beyond the pinned one never happens
        # here (best_subset_split already succeeded), but stay defensive.
        return heur_mask, heur_gini, heur_mask, heur_gini
    return heur_mask, heur_gini, best_mask, best_gini


def _batch_best_thresholds(
    P: np.ndarray, labels: np.ndarray, n_classes: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exact best threshold per row of projections ``P`` (vectorized).

    Returns ``(thresholds, ginis)`` with ``inf`` gini for rows with fewer
    than two distinct values.
    """
    m, n = P.shape
    order = np.argsort(P, axis=1, kind="stable")
    V = np.take_along_axis(P, order, axis=1)
    L = labels[order]
    onehot = np.zeros((m, n, n_classes), dtype=np.float64)
    onehot[np.arange(m)[:, None], np.arange(n)[None, :], L] = 1.0
    cum = np.cumsum(onehot, axis=1)
    totals = cum[:, -1, :]
    left = cum[:, :-1, :]
    right = totals[:, None, :] - left
    nl = left.sum(axis=-1)
    g = (nl * gini(left) + (n - nl) * gini(right)) / n
    g = np.where(V[:, :-1] < V[:, 1:], g, np.inf)
    k = np.argmin(g, axis=1)
    rows = np.arange(m)
    return V[rows, k], g[rows, k]


def best_linear_split(
    X: np.ndarray,
    y: np.ndarray,
    schema: Schema,
    max_slopes: int = 4096,
    batch: int = 256,
) -> tuple[LinearSplit | None, float]:
    """Exhaustive best ``x + b*y <= c`` split over continuous pairs.

    Every halfplane partition of ``n`` points in a pair's plane is
    realized by some slope in the O(n^2) set where two points project
    equally, evaluated on both sides; vertical lines are univariate
    splits and deliberately excluded (``numeric_gini`` covers them).
    When the slope set exceeds ``max_slopes`` it is thinned to an evenly
    spaced (deterministic) subset and the result is a lower-effort bound
    rather than a guaranteed optimum — callers gate on tiny ``n`` to
    avoid that.
    """
    cont = schema.continuous_indices()
    n = len(y)
    best: LinearSplit | None = None
    best_gini = np.inf
    if n < 2:
        return None, np.inf
    i_idx, j_idx = np.triu_indices(n, k=1)
    for ax, ay in combinations(cont, 2):
        xv = X[:, ax].astype(np.float64)
        yv = X[:, ay].astype(np.float64)
        dy = yv[i_idx] - yv[j_idx]
        ok = dy != 0.0
        slopes = np.unique(-(xv[i_idx[ok]] - xv[j_idx[ok]]) / dy[ok])
        if len(slopes) > max_slopes:
            keep = np.linspace(0, len(slopes) - 1, max_slopes).astype(np.intp)
            slopes = slopes[np.unique(keep)]
        # Critical slopes merge point pairs; the midpoints between
        # consecutive critical slopes (plus outriggers and 0) realize
        # every strict ordering of the projections.
        if len(slopes) == 0:
            candidates = np.array([0.0])
        else:
            mids = (slopes[:-1] + slopes[1:]) / 2.0
            candidates = np.unique(
                np.concatenate(
                    [slopes, mids, [slopes[0] - 1.0, slopes[-1] + 1.0, 0.0]]
                )
            )
        for lo in range(0, len(candidates), batch):
            bs = candidates[lo : lo + batch]
            P = xv[None, :] + bs[:, None] * yv[None, :]
            thr, g = _batch_best_thresholds(P, y, schema.n_classes)
            t = int(np.argmin(g))
            if g[t] < best_gini - 1e-15:
                best_gini = float(g[t])
                best = LinearSplit(ax, ay, float(bs[t]), float(thr[t]))
    return best, best_gini


def oracle_best_split(
    X: np.ndarray,
    y: np.ndarray,
    schema: Schema,
    exhaustive_categorical_limit: int = 16,
    linear: bool = False,
    max_slopes: int = 4096,
) -> OracleSplit:
    """The exhaustive best split of a record set, across split families.

    The overall winner prefers, on exact gini ties, numeric over
    categorical over linear, and lower attribute indices first — the same
    deterministic ordering the builders use, so comparisons stay stable.
    Categorical winners use the *exhaustive* subset when computed.
    """
    y = np.asarray(y)
    num_split, num_gini = best_numeric_split(X, y, schema)

    cat_gini = np.inf
    cat_ex_gini = np.inf
    cat_split: CategoricalSplit | None = None
    for attr in schema.categorical_indices():
        card = schema.attributes[attr].cardinality
        _, hg, ex_mask, eg = best_categorical_split(
            X[:, attr].astype(np.int64),
            y,
            card,
            schema.n_classes,
            exhaustive_limit=exhaustive_categorical_limit,
        )
        if hg < cat_gini - 1e-15:
            cat_gini = hg
        if ex_mask is not None and eg < cat_ex_gini - 1e-15:
            cat_ex_gini = eg
            cat_split = CategoricalSplit(attr, tuple(bool(b) for b in ex_mask))

    lin_split: LinearSplit | None = None
    lin_gini = np.inf
    if linear:
        lin_split, lin_gini = best_linear_split(X, y, schema, max_slopes=max_slopes)

    ranked: list[tuple[float, Split | None]] = [
        (num_gini, num_split),
        (cat_ex_gini, cat_split),
        (lin_gini, lin_split),
    ]
    best_gini = np.inf
    best_split: Split | None = None
    for g, s in ranked:
        if s is not None and g < best_gini - 1e-15:
            best_gini = g
            best_split = s
    return OracleSplit(
        split=best_split,
        gini=best_gini,
        numeric_gini=num_gini,
        numeric_attr=num_split.attr if num_split is not None else -1,
        categorical_gini=cat_gini,
        categorical_exhaustive_gini=cat_ex_gini,
        linear_gini=lin_gini,
    )


class OracleBuilder(TreeBuilder):
    """Exhaustive in-memory tree builder used as differential ground truth.

    Stopping rules mirror the scan-based builders exactly — a node is a
    leaf when it is too small (``min_records``), pure enough
    (``min_gini``), too deep (``max_depth``), or when the exhaustive best
    split improves the node's gini by less than ``min_gain``.  Splits are
    the exhaustive optima of :func:`oracle_best_split`; degenerate splits
    (an empty side) cannot be produced because only genuine partitions
    are enumerated.

    ``linear=True`` additionally searches two-attribute linear splits on
    nodes of at most ``max_linear_records`` records (the O(n^2) slope
    enumeration forbids more) — mirroring full CMP's restriction of
    linear splits to small, nearly-done regions of the space.
    """

    name = "ORACLE"

    def __init__(
        self,
        config=None,
        tracer=None,
        *,
        linear: bool = False,
        exhaustive_categorical_limit: int = 16,
        max_linear_records: int = 300,
    ) -> None:
        super().__init__(config, tracer)
        self.linear = linear
        self.exhaustive_categorical_limit = exhaustive_categorical_limit
        self.max_linear_records = max_linear_records

    def _build(self, dataset: Dataset, stats: BuildStats) -> DecisionTree:
        # One full scan to materialize the records, so stats stay honest
        # about touching the data (the oracle's point is exactness, not
        # I/O realism).
        table = self._open_table(dataset, stats)
        X_parts: list[np.ndarray] = []
        y_parts: list[np.ndarray] = []
        with stats.phase("scan"):
            for chunk in table.scan():
                X_parts.append(np.array(chunk.X, copy=True))
                y_parts.append(np.array(chunk.y, copy=True))
        X = np.concatenate(X_parts)
        y = np.concatenate(y_parts)

        account = TreeAccount()
        schema = dataset.schema
        cfg = self.config
        root = account.new_node(0, np.bincount(y, minlength=schema.n_classes))

        with stats.phase("split"):
            stack: list[tuple[Node, np.ndarray]] = [(root, np.arange(len(y)))]
            while stack:
                node, idx = stack.pop()
                n = len(idx)
                if (
                    n < cfg.min_records
                    or node.gini <= cfg.min_gini
                    or node.depth >= cfg.max_depth
                ):
                    continue
                use_linear = self.linear and n <= self.max_linear_records
                best = oracle_best_split(
                    X[idx],
                    y[idx],
                    schema,
                    exhaustive_categorical_limit=self.exhaustive_categorical_limit,
                    linear=use_linear,
                )
                if best.split is None or best.gini >= node.gini - cfg.min_gain:
                    continue
                goes_left = best.split.goes_left(X[idx])
                li, ri = idx[goes_left], idx[~goes_left]
                node.split = best.split
                node.left = account.new_node(
                    node.depth + 1, np.bincount(y[li], minlength=schema.n_classes)
                )
                node.right = account.new_node(
                    node.depth + 1, np.bincount(y[ri], minlength=schema.n_classes)
                )
                stack.append((node.right, ri))
                stack.append((node.left, li))

        return DecisionTree(root, schema)


__all__ = [
    "OracleBuilder",
    "OracleSplit",
    "best_categorical_split",
    "best_linear_split",
    "best_numeric_split",
    "oracle_best_split",
]
