"""Differential runner: every builder against the exact oracle.

For one dataset, :func:`run_differential` grows trees with the CMP family
and the in-repo baselines — serial and with parallel scan workers — and
checks each tree against :mod:`repro.verify.oracle` ground truth:

* **Exact invariants** (no tolerance): node class counts match the
  records that actually route to each node; parallel builds are
  bit-identical to serial; the compiled prediction engine agrees with
  the object walker; exhaustive baselines (SLIQ, SPRINT) achieve the
  oracle optimum at every node.
* **Bounded invariants**: the CMP family's per-node split quality is
  allowed to trail the oracle by at most an explicit estimator bound
  derived from the paper's footnote 1 (see :func:`estimator_bound`), and
  leaves the stopping rules don't explain must be within the same bound
  of the ``min_gain`` cutoff.
* **Reported deltas**: training accuracy and prediction agreement
  against the oracle tree (informational — tree-level differences are
  expected whenever bounded per-node gaps compound).

Why the bound is what it is
---------------------------

Footnote 1 of the paper: within interval *i* holding ``N_i`` of the
node's ``N`` records, the split gini can fall below the interval's
boundary gini by less than ``2 N_i / N``.  Writing ``oracle(a)`` for the
exact best gini on attribute ``a``, ``w`` for the attribute the builder
chose and ``b`` for the oracle's best attribute:

* the resolved threshold is exact over the best boundary plus buffered
  alive intervals, so ``achieved <= best_boundary(w) <= oracle(w) +
  2 N_w*/N`` (``N_w*``: population of the interval containing ``w``'s
  true optimum);
* the builder preferred ``w`` because its score was lowest, and scores
  are clamped to ``boundary_min - 2 N_i/N``, so ``oracle(w) <=
  oracle(b) + 2 N_b*/N + 2 max_i N_i(w)/N``;
* CMP-B/CMP additionally prefer the root X axis within
  ``x_tie_margin * node_gini``;
* CMP-B/CMP *second-level* nodes — committed from a two-level pending's
  side sub-matrices — choose among **continuous** attributes only
  (categorical attributes have no per-side histograms; see the
  :mod:`repro.core.cmp_b` docstring), so those nodes are held to the
  best continuous oracle split rather than the overall optimum.  The
  builder reports which nodes these are via
  ``BuildStats.second_level_node_ids``.

Interval populations are measured on a fresh equal-depth grid with the
same adaptive interval count the builder would use at that node size;
*atomic* intervals (a single distinct value) contribute nothing, because
their optimum sits on a boundary the builder evaluates exactly.  A
``safety`` factor (default 2) absorbs the drift between this grid and
the builder's interpolated child grids; the grid is also evaluated at
half resolution and the worse slack taken, covering coarser interpolated
grids.  On tie-heavy data almost every interval is atomic, so the bound
collapses toward zero and the checks approach exactness — precisely
where tie-handling bugs live.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.clouds import CloudsBuilder
from repro.baselines.sliq import SliqBuilder
from repro.baselines.sprint import SprintBuilder
from repro.config import BuilderConfig
from repro.core.builder import adaptive_intervals
from repro.core.cmp_b import CMPBBuilder
from repro.core.cmp_full import CMPBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.core.gini import gini_partition
from repro.core.splits import CategoricalSplit, LinearSplit, NumericSplit
from repro.core.tree import DecisionTree
from repro.data.dataset import Dataset
from repro.data.discretize import bin_index, equal_depth_edges
from repro.verify.oracle import OracleBuilder, OracleSplit, oracle_best_split

#: Builder name -> class, in canonical run order.
BUILDER_FACTORIES = {
    "CMP-S": CMPSBuilder,
    "CMP-B": CMPBBuilder,
    "CMP": CMPBuilder,
    "CLOUDS": CloudsBuilder,
    "SLIQ": SliqBuilder,
    "SPRINT": SprintBuilder,
}

#: Builders whose split search is exhaustive per node — held to 1e-9.
EXACT_BUILDERS = frozenset({"SLIQ", "SPRINT"})

#: Builders whose root X-axis preference tolerates a gini tie margin.
X_PREFERENCE_BUILDERS = frozenset({"CMP-B", "CMP"})

#: Numerical cushion on every comparison of float ginis.
EPS = 1e-9


@dataclass(frozen=True)
class Finding:
    """One verification failure (or informational note)."""

    builder: str
    kind: str
    message: str
    node_id: int = -1
    value: float = np.nan
    bound: float = np.nan
    severity: str = "error"

    def __str__(self) -> str:
        loc = f" node {self.node_id}" if self.node_id >= 0 else ""
        extra = ""
        if np.isfinite(self.value) or np.isfinite(self.bound):
            extra = f" (value={self.value:.6g}, bound={self.bound:.6g})"
        return f"[{self.severity}] {self.builder}{loc} {self.kind}: {self.message}{extra}"


def tree_signature(tree: DecisionTree):
    """Hashable, exact structural fingerprint of a tree.

    Two trees compare equal iff every node's split parameters and class
    counts are bit-identical — the invariant the parallel scan engine
    guarantees across worker counts.
    """

    def key(node):
        counts = tuple(float(c) for c in node.class_counts)
        if node.is_leaf:
            return ("leaf", counts)
        s = node.split
        if isinstance(s, NumericSplit):
            sk = ("num", s.attr, s.threshold)
        elif isinstance(s, CategoricalSplit):
            sk = ("cat", s.attr, s.left_mask)
        elif isinstance(s, LinearSplit):
            sk = ("lin", s.attr_x, s.attr_y, s.a, s.b, s.c)
        else:  # pragma: no cover - new split kinds must extend this
            raise TypeError(f"unknown split type {type(s).__name__}")
        return (sk, counts, key(node.left), key(node.right))

    return key(tree.root)


def node_members(tree: DecisionTree, X: np.ndarray) -> dict[int, np.ndarray]:
    """Record indices routed to every node, via the tree's own routing rule."""
    members: dict[int, np.ndarray] = {}
    stack = [(tree.root, np.arange(len(X)))]
    while stack:
        node, idx = stack.pop()
        members[node.node_id] = idx
        if node.is_leaf:
            continue
        split = node.split
        if isinstance(split, CategoricalSplit):
            heavier_left = node.left.n_records >= node.right.n_records
            goes_left = split.goes_left(X[idx], unseen_left=heavier_left)
        else:
            goes_left = split.goes_left(X[idx])
        stack.append((node.right, idx[~goes_left]))
        stack.append((node.left, idx[goes_left]))
    return members


def _max_nonatomic_frac(values: np.ndarray, q: int) -> float:
    """Largest fraction of records in one *non-atomic* equal-depth interval.

    Atomic intervals (single distinct value) are excluded: their best cut
    is the interval edge, which boundary ginis evaluate exactly, so they
    add no estimator slack.
    """
    n = len(values)
    if n == 0:
        return 0.0
    edges = equal_depth_edges(values, q)
    if len(edges) == 0:
        bins = np.zeros(n, dtype=np.intp)
        n_bins = 1
    else:
        bins = bin_index(values, edges)
        n_bins = len(edges) + 1
    counts = np.bincount(bins, minlength=n_bins).astype(np.float64)
    vmin = np.full(n_bins, np.inf)
    vmax = np.full(n_bins, -np.inf)
    np.minimum.at(vmin, bins, values)
    np.maximum.at(vmax, bins, values)
    nonatomic = (counts > 0) & (vmax > vmin)
    if not nonatomic.any():
        return 0.0
    return float(counts[nonatomic].max() / n)


def _attr_slack(values: np.ndarray, n: int, configured_intervals: int) -> float:
    """Footnote-1 slack ``2 max_i N_i / N`` for one attribute at node size n.

    Evaluated at the builder's adaptive grid resolution and at half that
    resolution (interpolated child grids can be effectively coarser than
    a fresh equal-depth grid); the worse slack wins.
    """
    q = adaptive_intervals(configured_intervals, n)
    frac = max(
        _max_nonatomic_frac(values, q),
        _max_nonatomic_frac(values, max(4, q // 2)),
    )
    return 2.0 * frac


def estimator_bound(
    X: np.ndarray,
    node_split,
    oracle: OracleSplit,
    config: BuilderConfig,
    node_gini: float,
    builder: str,
    safety: float,
    continuous: list[int],
    second_level: bool = False,
) -> float:
    """Explicit per-node bound on ``achieved - oracle`` (module docstring).

    ``X`` holds the node's member records.  The winner-side term covers
    resolution within the chosen attribute's grid (doubled: threshold
    interval plus score clamp); the oracle-side term covers the score
    comparison that made the builder prefer its attribute; categorical
    sides are exact and contribute nothing.  For ``second_level`` nodes
    the caller compares against the continuous-only oracle, so the
    oracle-side slack is always the numeric attribute's.
    """
    n = len(X)
    if builder in EXACT_BUILDERS:
        return EPS

    def slack(attr: int) -> float:
        return _attr_slack(X[:, attr].astype(np.float64), n, config.n_intervals)

    if isinstance(node_split, NumericSplit):
        winner_term = 2.0 * slack(node_split.attr)
    elif isinstance(node_split, LinearSplit):
        # Linear acceptance requires beating the univariate candidate,
        # so the worst continuous attribute bounds the winner side.
        winner_term = 2.0 * max((slack(a) for a in continuous), default=0.0)
    else:
        winner_term = 0.0

    if oracle.numeric_attr >= 0 and (
        second_level or oracle.numeric_gini <= oracle.categorical_gini
    ):
        oracle_term = slack(oracle.numeric_attr)
    else:
        oracle_term = 0.0

    tie_term = 0.0
    if builder in X_PREFERENCE_BUILDERS:
        tie_term = config.x_tie_margin * max(node_gini, 0.0)

    return safety * (winner_term + oracle_term) + tie_term + EPS


@dataclass
class GapStats:
    """Aggregate split-quality accounting for one tree."""

    n_internal: int = 0
    n_exact: int = 0
    max_gap: float = 0.0
    max_bound: float = 0.0

    def observe(self, gap: float, bound: float) -> None:
        self.n_internal += 1
        if gap <= EPS:
            self.n_exact += 1
        self.max_gap = max(self.max_gap, gap)
        self.max_bound = max(self.max_bound, bound)


def check_tree_against_oracle(
    tree: DecisionTree,
    dataset: Dataset,
    config: BuilderConfig,
    builder: str,
    safety: float = 2.0,
    second_level_nodes: frozenset[int] = frozenset(),
) -> tuple[list[Finding], GapStats]:
    """Per-node verification of one built tree (see module docstring).

    ``second_level_nodes`` names the nodes whose split was committed at
    the second level of a CMP-B/CMP two-level pending; those compete
    among continuous attributes only and are compared against the best
    continuous oracle split (module docstring).
    """
    findings: list[Finding] = []
    stats = GapStats()
    X, y = dataset.X, dataset.y
    schema = dataset.schema
    c = schema.n_classes
    continuous = schema.continuous_indices()
    members = node_members(tree, X)
    nodes = {n.node_id: n for n in tree.iter_nodes()}

    for node_id, node in nodes.items():
        idx = members[node_id]
        counts = np.bincount(y[idx], minlength=c).astype(np.float64)
        if not np.array_equal(counts, node.class_counts):
            findings.append(
                Finding(
                    builder,
                    "count_mismatch",
                    f"stored class counts {node.class_counts.tolist()} != "
                    f"routed counts {counts.tolist()}",
                    node_id=node_id,
                )
            )
            continue
        n = len(idx)
        node_gini = node.gini

        if node.is_leaf:
            if (
                n < config.min_records
                or node_gini <= config.min_gini
                or node.depth >= config.max_depth
            ):
                continue
            oracle = oracle_best_split(X[idx], y[idx], schema)
            oracle_ref = min(oracle.numeric_gini, oracle.categorical_gini)
            if not np.isfinite(oracle_ref):
                continue
            gain = node_gini - oracle_ref
            if builder in EXACT_BUILDERS:
                leaf_bound = EPS
            else:
                if oracle.numeric_gini <= oracle.categorical_gini:
                    leaf_bound = (
                        safety
                        * _attr_slack(
                            X[idx, oracle.numeric_attr].astype(np.float64),
                            n,
                            config.n_intervals,
                        )
                        + EPS
                    )
                else:
                    leaf_bound = EPS
            if gain > config.min_gain + leaf_bound:
                findings.append(
                    Finding(
                        builder,
                        "unjustified_leaf",
                        f"leaf at depth {node.depth} with n={n}, "
                        f"gini={node_gini:.6g}, but the oracle finds a split "
                        f"of gini {oracle_ref:.6g}",
                        node_id=node_id,
                        value=gain,
                        bound=config.min_gain + leaf_bound,
                    )
                )
            continue

        # Internal node: the split must be within the estimator bound of
        # the exhaustive optimum on the records it actually partitions.
        left_idx = members[node.left.node_id]
        right_idx = members[node.right.node_id]
        left_counts = np.bincount(y[left_idx], minlength=c)
        right_counts = np.bincount(y[right_idx], minlength=c)
        if len(left_idx) == 0 or len(right_idx) == 0:
            findings.append(
                Finding(
                    builder,
                    "degenerate_split",
                    f"split {node.split.describe(schema)} sends every record "
                    "to one side",
                    node_id=node_id,
                )
            )
            continue
        achieved = float(gini_partition(left_counts, right_counts))
        oracle = oracle_best_split(X[idx], y[idx], schema)
        second_level = node_id in second_level_nodes
        if second_level:
            oracle_ref = oracle.numeric_gini
        else:
            oracle_ref = min(oracle.numeric_gini, oracle.categorical_gini)
        if not np.isfinite(oracle_ref):
            findings.append(
                Finding(
                    builder,
                    "split_without_oracle",
                    "builder split a node where the oracle finds no valid split",
                    node_id=node_id,
                    value=achieved,
                )
            )
            continue
        gap = achieved - oracle_ref
        bound = estimator_bound(
            X[idx],
            node.split,
            oracle,
            config,
            node_gini,
            builder,
            safety,
            continuous,
            second_level=second_level,
        )
        stats.observe(gap, bound)
        if gap > bound:
            findings.append(
                Finding(
                    builder,
                    "estimator_bound_exceeded",
                    f"split {node.split.describe(schema)} achieves gini "
                    f"{achieved:.6g} vs oracle {oracle_ref:.6g} on n={n}",
                    node_id=node_id,
                    value=gap,
                    bound=bound,
                )
            )
        if achieved > node_gini + EPS:
            findings.append(
                Finding(
                    builder,
                    "worsening_split",
                    f"split gini {achieved:.6g} exceeds node gini "
                    f"{node_gini:.6g} (concavity violation)",
                    node_id=node_id,
                    value=achieved,
                    bound=node_gini,
                )
            )
    return findings, stats


@dataclass
class BuilderOutcome:
    """Summary of one builder's verified build."""

    builder: str
    n_nodes: int
    n_leaves: int
    depth: int
    accuracy: float
    oracle_agreement: float
    stats: GapStats
    parallel_identical: bool

    def as_row(self) -> dict:
        return {
            "builder": self.builder,
            "nodes": self.n_nodes,
            "leaves": self.n_leaves,
            "depth": self.depth,
            "accuracy": round(self.accuracy, 4),
            "oracle_agree": round(self.oracle_agreement, 4),
            "internal": self.stats.n_internal,
            "exact": self.stats.n_exact,
            "max_gap": round(self.stats.max_gap, 6),
            "max_bound": round(self.stats.max_bound, 6),
            "parallel_ok": self.parallel_identical,
        }


@dataclass
class DifferentialReport:
    """Everything :func:`run_differential` learned about one dataset."""

    oracle_accuracy: float
    outcomes: list[BuilderOutcome] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was raised."""
        return not any(f.severity == "error" for f in self.findings)

    def rows(self) -> list[dict]:
        """Table rows for :func:`repro.eval.harness.format_table`."""
        return [o.as_row() for o in self.outcomes]


def run_differential(
    dataset: Dataset,
    config: BuilderConfig,
    builders: tuple[str, ...] = ("CMP-S", "CMP-B", "CMP", "CLOUDS", "SLIQ"),
    workers: tuple[int, ...] = (4,),
    safety: float = 2.0,
    tracer=None,
) -> DifferentialReport:
    """Grow every requested builder on ``dataset`` and verify each tree.

    The config is normalized for verifiability: pruning off (pruned
    leaves would trip the leaf-justification check by design) and
    reservoirs large enough to hold the whole dataset (the estimator
    bound assumes quantiles of the data, not of a subsample).
    """
    n = dataset.n_records
    cfg = config.with_(
        prune="none",
        reservoir_capacity=max(config.reservoir_capacity, n),
        scan_workers=1,
    )
    oracle_result = OracleBuilder(cfg, tracer=tracer).build(dataset)
    oracle_pred = oracle_result.tree.predict(dataset.X)
    report = DifferentialReport(
        oracle_accuracy=float(np.mean(oracle_pred == dataset.y))
    )

    n_continuous = len(dataset.schema.continuous_indices())
    for name in builders:
        if name not in BUILDER_FACTORIES:
            raise ValueError(f"unknown builder {name!r}")
        if name in X_PREFERENCE_BUILDERS and n_continuous < 2:
            continue
        factory = BUILDER_FACTORIES[name]
        try:
            result = factory(cfg, tracer=tracer).build(dataset)
        except Exception as exc:  # noqa: BLE001 - crashes become findings
            report.findings.append(
                Finding(name, "crash", f"{type(exc).__name__}: {exc}")
            )
            continue
        tree = result.tree
        second_ids = frozenset(
            getattr(result.stats, "second_level_node_ids", ())
        )
        findings, stats = check_tree_against_oracle(
            tree, dataset, cfg, name, safety=safety, second_level_nodes=second_ids
        )
        report.findings.extend(findings)

        compiled_pred = tree.predict(dataset.X)
        walked_pred = tree.walk_predict(dataset.X)
        if not np.array_equal(compiled_pred, walked_pred):
            report.findings.append(
                Finding(
                    name,
                    "compiled_walker_mismatch",
                    f"{int(np.sum(compiled_pred != walked_pred))} of {n} "
                    "predictions differ between compiled engine and walker",
                )
            )

        parallel_ok = True
        serial_sig = tree_signature(tree)
        for w in workers:
            if w <= 1:
                continue
            try:
                par = factory(cfg.with_(scan_workers=w), tracer=tracer).build(dataset)
            except Exception as exc:  # noqa: BLE001
                report.findings.append(
                    Finding(
                        name, "crash", f"workers={w}: {type(exc).__name__}: {exc}"
                    )
                )
                parallel_ok = False
                continue
            if tree_signature(par.tree) != serial_sig:
                parallel_ok = False
                report.findings.append(
                    Finding(
                        name,
                        "parallel_divergence",
                        f"tree built with scan_workers={w} is not bit-identical "
                        "to the serial tree",
                    )
                )

        report.outcomes.append(
            BuilderOutcome(
                builder=name,
                n_nodes=tree.n_nodes,
                n_leaves=tree.n_leaves,
                depth=tree.depth,
                accuracy=float(np.mean(compiled_pred == dataset.y)),
                oracle_agreement=float(np.mean(compiled_pred == oracle_pred)),
                stats=stats,
                parallel_identical=parallel_ok,
            )
        )
    return report


__all__ = [
    "BUILDER_FACTORIES",
    "BuilderOutcome",
    "DifferentialReport",
    "EXACT_BUILDERS",
    "Finding",
    "GapStats",
    "check_tree_against_oracle",
    "estimator_bound",
    "node_members",
    "run_differential",
    "tree_signature",
]
