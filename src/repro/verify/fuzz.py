"""Adversarial dataset fuzzing with automatic shrinking.

:func:`run_fuzz` draws training sets from the adversarial profiles in
:mod:`repro.eval.treegen` (heavy ties, near-boundary values, class skew,
singleton classes, constant attributes) and runs the full differential +
metamorphic check battery on each.  Any failing dataset is *shrunk* —
a ddmin-style search over row blocks and attribute removal that keeps
the failure alive while the dataset gets smaller — and packaged as a
replayable :class:`FailureCase`.

Cases serialize to JSON under ``tests/data/corpus/``; float values
round-trip exactly (``json`` emits ``repr`` precision), so a replayed
case rebuilds the bit-identical dataset and re-runs the bit-identical
checks.  ``tests/test_verify_corpus.py`` replays every committed case on
every run.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import asdict, dataclass, field, fields, replace

import numpy as np

from repro.config import BuilderConfig
from repro.data.dataset import Dataset
from repro.data.schema import Attribute, AttributeKind, Schema
from repro.eval.treegen import ADVERSARIAL_PROFILES, adversarial_dataset
from repro.verify.differential import Finding, run_differential
from repro.verify.metamorphic import run_metamorphic

#: Format tag written into every corpus file.
CORPUS_FORMAT = "cmp-verify-case-v1"

#: Metamorphic checks with deterministic strict invariants — the fuzz
#: default.  The soft accuracy-delta checks stay available via the CLI
#: but would dominate fuzz wall-clock for little discriminating power.
DEFAULT_METAMORPHIC = ("shuffle", "duplicate", "scale_pow2", "constant_categorical")


@dataclass
class FailureCase:
    """One shrunk failing dataset plus everything needed to replay it."""

    name: str
    description: str
    profile: str
    seed: int
    schema_attrs: list[dict]
    class_labels: list[str]
    X: list[list[float]]
    y: list[int]
    config_overrides: dict = field(default_factory=dict)
    builders: list[str] = field(
        default_factory=lambda: ["CMP-S", "CMP-B", "CMP", "CLOUDS", "SLIQ"]
    )
    workers: list[int] = field(default_factory=lambda: [4])
    metamorphic_checks: list[str] = field(
        default_factory=lambda: list(DEFAULT_METAMORPHIC)
    )
    check_seed: int = 0
    safety: float = 2.0
    accuracy_tol: float = 0.05
    findings: list[str] = field(default_factory=list)
    format: str = CORPUS_FORMAT

    def dataset(self) -> Dataset:
        """Rebuild the exact dataset this case captured."""
        attrs = []
        for a in self.schema_attrs:
            attrs.append(
                Attribute(
                    a["name"],
                    AttributeKind(a["kind"]),
                    tuple(a.get("categories", ())),
                )
            )
        schema = Schema(tuple(attrs), tuple(self.class_labels))
        X = np.asarray(self.X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(len(self.y), -1)
        return Dataset(X, np.asarray(self.y, dtype=np.int64), schema)

    def config(self, base: BuilderConfig | None = None) -> BuilderConfig:
        """The builder config the case was captured under."""
        cfg = base if base is not None else BuilderConfig()
        return replace(cfg, **self.config_overrides)


def _schema_to_dicts(schema: Schema) -> tuple[list[dict], list[str]]:
    attrs = [
        {
            "name": a.name,
            "kind": a.kind.value,
            "categories": list(a.categories),
        }
        for a in schema.attributes
    ]
    return attrs, list(schema.class_labels)


def _config_overrides(config: BuilderConfig) -> dict:
    """Fields of ``config`` that differ from the defaults (JSON-safe)."""
    default = BuilderConfig()
    out = {}
    for f in fields(BuilderConfig):
        value = getattr(config, f.name)
        if value != getattr(default, f.name):
            out[f.name] = value
    return out


def save_case(case: FailureCase, path: str) -> None:
    """Write one case as pretty-printed JSON (atomic rename)."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(asdict(case), fh, indent=1)
        fh.write("\n")
    os.replace(tmp, path)


def load_case(path: str) -> FailureCase:
    """Read one case back; rejects unknown formats."""
    with open(path, encoding="utf-8") as fh:
        raw = json.load(fh)
    if raw.get("format") != CORPUS_FORMAT:
        raise ValueError(
            f"{path}: unknown corpus format {raw.get('format')!r} "
            f"(expected {CORPUS_FORMAT!r})"
        )
    known = {f.name for f in fields(FailureCase)}
    return FailureCase(**{k: v for k, v in raw.items() if k in known})


def default_checks(
    config: BuilderConfig,
    builders: tuple[str, ...] = ("CMP-S", "CMP-B", "CMP", "CLOUDS", "SLIQ"),
    workers: tuple[int, ...] = (4,),
    metamorphic_checks: tuple[str, ...] | None = DEFAULT_METAMORPHIC,
    safety: float = 2.0,
    accuracy_tol: float = 0.05,
    check_seed: int = 0,
):
    """The fuzz predicate: dataset -> list of error findings.

    Deterministic for a fixed dataset — the same function drives fuzzing,
    shrinking and corpus replay, so a shrunk case keeps failing for the
    same reason it was captured.
    """

    def run(dataset: Dataset) -> list[Finding]:
        findings = []
        report = run_differential(
            dataset, config, builders=builders, workers=workers, safety=safety
        )
        findings.extend(f for f in report.findings if f.severity == "error")
        if metamorphic_checks:
            meta = run_metamorphic(
                dataset,
                config,
                builders=builders,
                checks=tuple(metamorphic_checks),
                seed=check_seed,
                accuracy_tol=accuracy_tol,
            )
            findings.extend(f for f in meta.findings if f.severity == "error")
        return findings

    return run


def replay_case(case: FailureCase, base_config: BuilderConfig | None = None):
    """Re-run a stored case's exact checks; returns the findings."""
    checks = default_checks(
        case.config(base_config),
        builders=tuple(case.builders),
        workers=tuple(case.workers),
        metamorphic_checks=tuple(case.metamorphic_checks) or None,
        safety=case.safety,
        accuracy_tol=case.accuracy_tol,
        check_seed=case.check_seed,
    )
    return checks(case.dataset())


def shrink_case(
    dataset: Dataset,
    fails,
    max_evals: int = 60,
) -> Dataset:
    """ddmin-lite: smallest dataset (rows, then attributes) still failing.

    ``fails(candidate) -> bool`` must be deterministic.  Row shrinking
    removes contiguous blocks at increasing granularity; attribute
    shrinking drops columns while keeping at least two continuous
    attributes when the original had them (CMP-B needs two) and at least
    one attribute overall.  ``max_evals`` bounds the predicate calls so
    shrinking never dominates a fuzz run.
    """
    evals = 0

    def still_fails(candidate: Dataset) -> bool:
        nonlocal evals
        if evals >= max_evals:
            return False
        evals += 1
        return bool(fails(candidate))

    # Row blocks.
    granularity = 2
    while dataset.n_records >= 2 and evals < max_evals:
        n = dataset.n_records
        chunk = max(1, math.ceil(n / granularity))
        reduced = False
        for start in range(0, n, chunk):
            keep = np.ones(n, dtype=bool)
            keep[start : start + chunk] = False
            if not keep.any():
                continue
            candidate = Dataset(dataset.X[keep], dataset.y[keep], dataset.schema)
            if still_fails(candidate):
                dataset = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(n, granularity * 2)

    # Attributes.
    min_continuous = 2 if len(dataset.schema.continuous_indices()) >= 2 else 1
    changed = True
    while changed and evals < max_evals:
        changed = False
        for j in range(dataset.schema.n_attributes):
            attrs = dataset.schema.attributes
            if len(attrs) <= 1:
                break
            remaining_cont = sum(
                1 for i, a in enumerate(attrs) if a.is_continuous and i != j
            )
            if attrs[j].is_continuous and remaining_cont < min_continuous:
                continue
            keep_cols = [i for i in range(len(attrs)) if i != j]
            schema = Schema(
                tuple(attrs[i] for i in keep_cols), dataset.schema.class_labels
            )
            candidate = Dataset(dataset.X[:, keep_cols], dataset.y, schema)
            if still_fails(candidate):
                dataset = candidate
                changed = True
                break
    return dataset


def run_fuzz(
    config: BuilderConfig,
    profiles: tuple[str, ...] = tuple(ADVERSARIAL_PROFILES),
    seeds=range(5),
    n: int = 300,
    n_classes: int = 3,
    builders: tuple[str, ...] = ("CMP-S", "CMP-B", "CMP", "CLOUDS", "SLIQ"),
    workers: tuple[int, ...] = (4,),
    metamorphic_checks: tuple[str, ...] | None = DEFAULT_METAMORPHIC,
    safety: float = 2.0,
    accuracy_tol: float = 0.05,
    shrink: bool = True,
    max_shrink_evals: int = 60,
    log=None,
) -> tuple[list[FailureCase], int]:
    """Fuzz every (profile, seed) pair; returns (failure cases, runs).

    Failures are shrunk (when ``shrink``) and returned as replayable
    :class:`FailureCase` objects; the caller decides where to persist
    them (the CLI and the nightly workflow write ``tests/data/corpus/``).
    """
    checks = default_checks(
        config,
        builders=builders,
        workers=workers,
        metamorphic_checks=metamorphic_checks,
        safety=safety,
        accuracy_tol=accuracy_tol,
    )
    cases: list[FailureCase] = []
    runs = 0
    for profile in profiles:
        for seed in seeds:
            runs += 1
            dataset = adversarial_dataset(profile, n=n, seed=seed, n_classes=n_classes)
            findings = checks(dataset)
            if not findings:
                continue
            if log is not None:
                log(
                    f"FAIL {profile} seed={seed}: {len(findings)} finding(s); "
                    f"first: {findings[0]}"
                )
            if shrink:
                dataset = shrink_case(
                    dataset, lambda d: bool(checks(d)), max_evals=max_shrink_evals
                )
                findings = checks(dataset)
            attrs, labels = _schema_to_dicts(dataset.schema)
            cases.append(
                FailureCase(
                    name=f"{profile}-s{seed}",
                    description=(
                        f"fuzz failure on profile {profile!r} seed {seed}, "
                        f"shrunk to {dataset.n_records} records x "
                        f"{dataset.schema.n_attributes} attributes"
                    ),
                    profile=profile,
                    seed=int(seed),
                    schema_attrs=attrs,
                    class_labels=labels,
                    X=[[float(v) for v in row] for row in dataset.X],
                    y=[int(v) for v in dataset.y],
                    config_overrides=_config_overrides(config),
                    builders=list(builders),
                    workers=[int(w) for w in workers],
                    metamorphic_checks=list(metamorphic_checks or ()),
                    safety=safety,
                    accuracy_tol=accuracy_tol,
                    findings=[str(f) for f in findings],
                )
            )
    return cases, runs


__all__ = [
    "CORPUS_FORMAT",
    "DEFAULT_METAMORPHIC",
    "FailureCase",
    "default_checks",
    "load_case",
    "replay_case",
    "run_fuzz",
    "save_case",
    "shrink_case",
]
