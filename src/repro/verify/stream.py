"""Differential verification of sketch-chosen streaming splits.

The streaming trainer picks every split from mergeable sketches instead
of exact histograms, so the PR 5 question — *how far from the exact
oracle is each committed split allowed to be?* — gets a sketch-aware
answer here.  For a node that split after absorbing records ``S`` (the
``members`` the trainer records), with per-attribute summed per-class
rank-error bounds ``E_a`` (queried from the sketches at decision time,
in absolute records):

* the achieved gini of the chosen split on ``S`` differs from the
  trainer's sketch score by at most ``2 E_â / N`` (winner attribute
  ``â``; moving one record across a partition moves ``gini^D`` by at
  most ``2/N`` — the footnote-1 Lipschitz fact,
  :func:`repro.core.estimation.sketch_count_slack`);
* the winner's score is minimal over **every** candidate of every
  attribute, in particular over the candidates bracketing the exact
  oracle's optimum ``t*`` on its attribute ``b``;
* ``t*`` sits inside one interval of ``b``'s recorded candidate grid;
  walking from ``t*`` to the interval edge crosses at most the
  interval's population ``N_i``, so the exact gini at that bracketing
  candidate exceeds the oracle by at most ``2 N_i / N`` (atomic
  intervals — single distinct value — contribute nothing, exactly as in
  the batch harness); scoring that candidate through the sketches costs
  another ``2 E_b / N``.

Total per-node bound::

    achieved - oracle <= safety * (2 E_â / N + 2 E_b / N + 2 frac_b) + EPS

with ``frac_b`` the **measured** largest non-atomic interval fraction of
the oracle attribute's recorded grid on the node's members (falling back
to the analytic ``1/q + 2 c eps`` of
:func:`repro.core.estimation.sketch_split_slack` when the grid is not
available).  A categorical oracle side is exact whenever the
heavy-hitter sketch's capacity covers the attribute's cardinality (the
default), so it contributes only its (usually zero) ``error_bound``.

:func:`check_streaming_tree` replays this bound for every recorded
split; :func:`run_stream_differential` builds-and-checks one stream;
:func:`run_stream_battery` sweeps seeds × generator functions × stream
orders — the 25-seed acceptance battery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import DEFAULT_CONFIG, BuilderConfig
from repro.core.gini import gini, gini_partition
from repro.core.splits import CategoricalSplit, NumericSplit
from repro.data.dataset import Dataset
from repro.data.discretize import bin_index
from repro.data.synthetic import generate_agrawal
from repro.stream.trainer import SplitMeta, StreamingResult, StreamingTrainer
from repro.verify.differential import EPS, Finding, GapStats
from repro.verify.oracle import oracle_best_split

#: Stream orders the battery replays (the sketch is deterministic but
#: order-sensitive, so conformance must hold for every order).
STREAM_ORDERS = ("natural", "sorted", "reversed", "shuffled")


def _grid_nonatomic_frac(values: np.ndarray, edges: np.ndarray) -> float:
    """Largest member fraction inside one non-atomic interval of ``edges``.

    The streaming analogue of the batch harness's
    ``_max_nonatomic_frac``: the grid is the trainer's *recorded*
    candidate grid rather than a fresh equal-depth quantiling, so the
    bound reflects the exact intervals the winner actually had to beat.
    """
    n = len(values)
    if n == 0:
        return 0.0
    if len(edges) == 0:
        bins = np.zeros(n, dtype=np.intp)
        n_bins = 1
    else:
        bins = bin_index(values, edges)
        n_bins = len(edges) + 1
    counts = np.bincount(bins, minlength=n_bins).astype(np.float64)
    vmin = np.full(n_bins, np.inf)
    vmax = np.full(n_bins, -np.inf)
    np.minimum.at(vmin, bins, values)
    np.maximum.at(vmax, bins, values)
    populated = counts > 0
    nonatomic = populated & (vmin < vmax)
    if not nonatomic.any():
        return 0.0
    return float(counts[nonatomic].max() / n)


def _winner_count_slack(meta: SplitMeta, n: float) -> float:
    """Gini slack from scoring the *chosen* split with sketch counts."""
    split = meta.split
    if isinstance(split, NumericSplit):
        return 2.0 * meta.rank_errors.get(split.attr, 0.0) / n
    if isinstance(split, CategoricalSplit):
        err = meta.hh_errors.get(split.attr, 0.0)
        return 2.0 * err * len(split.left_mask) / n
    return 0.0


def _oracle_side_slack(
    meta: SplitMeta,
    oracle_attr: int | None,
    oracle_is_categorical: bool,
    values: np.ndarray | None,
    n: float,
    n_classes: int,
) -> float:
    """Gini slack covering the comparison against the oracle's attribute."""
    if oracle_attr is None:
        return 0.0
    if oracle_is_categorical:
        err = meta.hh_errors.get(oracle_attr, 0.0)
        card = 0 if err == 0.0 else n_classes  # exact HH: no slack at all
        return 2.0 * err * card / n
    rank_err = meta.rank_errors.get(oracle_attr, 0.0)
    edges = meta.candidate_edges.get(oracle_attr)
    if edges is not None and values is not None:
        frac = _grid_nonatomic_frac(values, edges)
    else:
        # Analytic fallback: an equal-depth-up-to-ε grid interval holds
        # at most 1/q + 2 c eps of the records.
        frac = 1.0 / meta.q + 2.0 * n_classes * meta.eps
    return 2.0 * rank_err / n + 2.0 * frac


def check_streaming_tree(
    result: StreamingResult,
    dataset: Dataset,
    safety: float = 2.0,
) -> tuple[list[Finding], GapStats]:
    """Replay every recorded sketch split against the exact oracle.

    ``result`` must come from a trainer built with
    ``record_members=True`` on the same stream order as ``dataset``'s
    row order (members index into the stream).
    """
    findings: list[Finding] = []
    gaps = GapStats()
    builder = "CMP-STREAM"
    if result.members is None:
        findings.append(
            Finding(
                builder,
                "missing_members",
                "trainer was not run with record_members=True; "
                "splits cannot be replayed",
            )
        )
        return findings, gaps
    schema = dataset.schema
    c = schema.n_classes
    categorical = set(schema.categorical_indices())
    for node_id, meta in sorted(result.split_meta.items()):
        idx = result.members.get(node_id)
        if idx is None:
            findings.append(
                Finding(
                    builder,
                    "missing_members",
                    "no member rows recorded for split node",
                    node_id=node_id,
                )
            )
            continue
        Xn = dataset.X[idx]
        yn = dataset.y[idx]
        n = float(len(idx))
        counts = np.bincount(yn, minlength=c).astype(np.float64)
        if len(idx) != meta.n_records or not np.array_equal(
            counts, np.asarray(meta.class_counts)
        ):
            findings.append(
                Finding(
                    builder,
                    "count_mismatch",
                    f"recorded decision counts {meta.class_counts} != member "
                    f"counts {tuple(counts)}",
                    node_id=node_id,
                )
            )
            continue
        node_gini = float(gini(counts))
        goes_left = meta.split.goes_left(Xn)
        left = np.bincount(yn[goes_left], minlength=c).astype(np.float64)
        achieved = float(gini_partition(left, counts - left))
        if goes_left.all() or not goes_left.any():
            findings.append(
                Finding(
                    builder,
                    "degenerate_split",
                    "chosen split sends every member to one side",
                    node_id=node_id,
                    value=achieved,
                )
            )
            continue
        oracle = oracle_best_split(Xn, yn, schema)
        if not oracle.found:
            continue
        oracle_attr: int | None = None
        oracle_cat = False
        values: np.ndarray | None = None
        if oracle.split is not None:
            oracle_attr = getattr(oracle.split, "attr", None)
            oracle_cat = oracle_attr in categorical
            if oracle_attr is not None and not oracle_cat:
                values = Xn[:, oracle_attr]
        bound = (
            safety
            * (
                _winner_count_slack(meta, n)
                + _oracle_side_slack(
                    meta, oracle_attr, oracle_cat, values, n, c
                )
            )
            + EPS
        )
        gap = achieved - float(oracle.gini)
        gaps.observe(max(gap, 0.0), bound)
        if gap > bound:
            findings.append(
                Finding(
                    builder,
                    "estimator_bound_exceeded",
                    f"sketch split gini {achieved:.6f} vs oracle "
                    f"{oracle.gini:.6f} exceeds ε-derived bound",
                    node_id=node_id,
                    value=gap,
                    bound=bound,
                )
            )
        if achieved > node_gini + EPS:
            findings.append(
                Finding(
                    builder,
                    "worsening_split",
                    f"split gini {achieved:.6f} above node gini {node_gini:.6f}",
                    node_id=node_id,
                    value=achieved,
                    bound=node_gini,
                )
            )
    return findings, gaps


def _reorder(dataset: Dataset, order: str, seed: int) -> Dataset:
    """A copy of ``dataset`` with rows re-ordered per a battery profile."""
    n = dataset.n_records
    if order == "natural":
        return dataset
    if order == "sorted":
        perm = np.argsort(dataset.X[:, 0], kind="stable")
    elif order == "reversed":
        perm = np.argsort(dataset.X[:, 0], kind="stable")[::-1]
    elif order == "shuffled":
        perm = np.random.default_rng([seed, 0xC0FFEE]).permutation(n)
    else:
        raise ValueError(f"unknown stream order {order!r}")
    return dataset.take(perm)


def run_stream_differential(
    dataset: Dataset,
    config: BuilderConfig | None = None,
    *,
    eps: float = 0.02,
    chunk_size: int = 1024,
    safety: float = 2.0,
) -> tuple[StreamingResult, list[Finding], GapStats]:
    """Build a streaming tree on ``dataset`` (in row order) and verify it."""
    cfg = config if config is not None else DEFAULT_CONFIG
    trainer = StreamingTrainer(dataset.schema, cfg, eps=eps, record_members=True)
    result = trainer.fit(dataset, chunk_size=chunk_size)
    findings, gaps = check_streaming_tree(result, dataset, safety=safety)
    return result, findings, gaps


@dataclass
class StreamBatteryReport:
    """Aggregate result of a multi-seed streaming conformance sweep."""

    findings: list[Finding] = field(default_factory=list)
    rows: list[dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)

    @property
    def n_splits(self) -> int:
        return sum(int(r["n_internal"]) for r in self.rows)


def run_stream_battery(
    n_seeds: int = 25,
    n_records: int = 3000,
    config: BuilderConfig | None = None,
    *,
    eps: float = 0.02,
    functions: tuple[str, ...] = ("F1", "F2", "F3", "F5", "F7"),
    orders: tuple[str, ...] = STREAM_ORDERS,
    chunk_size: int = 512,
    safety: float = 2.0,
) -> StreamBatteryReport:
    """The acceptance battery: seeds × functions × stream orders.

    Every sketch-chosen split of every run must sit within its ε-derived
    oracle bound.  Functions and orders cycle with the seed so the
    battery covers all profiles without a full cross product.
    """
    report = StreamBatteryReport()
    for seed in range(n_seeds):
        function = functions[seed % len(functions)]
        order = orders[seed % len(orders)]
        dataset = _reorder(
            generate_agrawal(function, n_records, seed=seed), order, seed
        )
        result, findings, gaps = run_stream_differential(
            dataset, config, eps=eps, chunk_size=chunk_size, safety=safety
        )
        report.findings.extend(findings)
        report.rows.append(
            {
                "seed": seed,
                "function": function,
                "order": order,
                "n_internal": gaps.n_internal,
                "n_exact": gaps.n_exact,
                "max_gap": gaps.max_gap,
                "max_bound": gaps.max_bound,
                "leaves": result.tree.n_leaves,
                "findings": len(findings),
            }
        )
    return report


__all__ = [
    "STREAM_ORDERS",
    "StreamBatteryReport",
    "check_streaming_tree",
    "run_stream_battery",
    "run_stream_differential",
]
