"""Metamorphic invariance checks for the tree builders.

Each check transforms a training set in a way with a *known* effect on
the built tree and asserts exactly that effect.  The expected invariant
is stated per check (and in ``docs/TESTING.md``):

``shuffle``
    Permuting record order → **bit-identical tree** for every builder.
    Histograms accumulate integer-valued float64 counts (order-invariant
    addition), reservoirs sized to the dataset never subsample, and the
    parallel merge is chunk-order deterministic.
``duplicate``
    Tiling every record ``k`` times (with ``min_records`` and
    ``linear_min_records`` scaled by ``k`` and a pinned interval count so
    the adaptive grid cannot change) → **identical structure and splits
    with class counts scaled by k**: gini is scale-invariant and every
    split-point candidate set is unchanged.
``relabel``
    Permuting class labels → **relabeled tree** for the exhaustive
    builders (SLIQ, SPRINT): gini is class-permutation invariant, so the
    tree must match with permuted counts — except on *exact* gini ties,
    where tie-breaking may legitimately pick a different, equally good
    split (the comparison accepts equal-gini divergence and stops
    descending).  The CMP family's interval estimator breaks climb-step
    ties by class index, so a permutation can legitimately steer it to a
    different (equally bounded) split; its stated invariant is **equal
    training accuracy** within ``accuracy_tol``.
``scale_pow2``
    Multiplying every continuous value by ``2**k`` (exact in binary
    floating point) → **bit-identical structure with thresholds scaled
    by 2**k** (linear splits keep ``b`` and scale ``c``).
``constant_categorical``
    Appending a single-category column → **bit-identical tree** for
    every builder: a one-category attribute admits no subset split.
``constant_continuous``
    Appending an all-identical continuous column → **bit-identical
    tree** for the univariate builders (CMP-S, CLOUDS, SLIQ, SPRINT):
    every boundary on it is degenerate so it can never win.  CMP-B/CMP
    are excluded — their root X axis is drawn from the continuous index
    list, so changing that list's *length* legitimately changes the draw
    (the constant column still never wins a split; the categorical
    variant above covers those builders).
``id_column``
    Appending a unique-per-record ID column → **no accuracy loss**
    beyond ``accuracy_tol`` (the extra column can only add candidate
    splits; training accuracy must not degrade).
``rank_oracle``
    Replacing continuous values by their dense ranks (a strictly
    monotone map) → the **oracle's predictions are invariant**
    record-for-record, because exact split search depends only on value
    order; the exhaustive builders (SLIQ, SPRINT) inherit the same exact
    prediction invariance.  CMP's interpolated child grids are *not*
    rank-equivariant — ranking legitimately changes which splits the
    estimator commits — so the estimator builders are instead held to
    the **differential estimator bound on the ranked dataset** (the
    ranked set is just another training set, and the per-node bound of
    :func:`repro.verify.differential.check_tree_against_oracle` must
    hold there too).  The training-accuracy delta is reported as a
    warning-severity finding, never an error: a fixed tolerance is
    unsound for a transform that legitimately rebuilds the tree.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.config import BuilderConfig
from repro.core.splits import CategoricalSplit, LinearSplit, NumericSplit
from repro.core.tree import Node
from repro.data.dataset import Dataset
from repro.data.schema import Attribute, AttributeKind, Schema
from repro.verify.differential import (
    BUILDER_FACTORIES,
    EXACT_BUILDERS,
    Finding,
    check_tree_against_oracle,
    tree_signature,
)
from repro.verify.oracle import OracleBuilder

EPS = 1e-9


def _prepared(config: BuilderConfig, n: int) -> BuilderConfig:
    """Verification config: no pruning, reservoirs that never subsample."""
    return config.with_(
        prune="none",
        reservoir_capacity=max(config.reservoir_capacity, n),
    )


def _build_tree(builder: str, dataset: Dataset, config: BuilderConfig):
    return BUILDER_FACTORIES[builder](config).build(dataset).tree


def _train_accuracy(tree, dataset: Dataset) -> float:
    return float(np.mean(tree.predict(dataset.X) == dataset.y))


def _with_column(
    dataset: Dataset, column: np.ndarray, attribute: Attribute
) -> Dataset:
    """Dataset with one extra attribute appended."""
    schema = Schema(
        dataset.schema.attributes + (attribute,), dataset.schema.class_labels
    )
    X = np.column_stack([dataset.X, np.asarray(column, dtype=np.float64)])
    return Dataset(X, dataset.y, schema)


def _achieved_gini(node: Node) -> float:
    """Weighted gini the node's split actually achieves (from child counts)."""
    from repro.core.gini import gini_partition

    return float(gini_partition(node.left.class_counts, node.right.class_counts))


# ---------------------------------------------------------------------------
# Individual checks — each returns a list of findings (empty = pass)
# ---------------------------------------------------------------------------


def check_shuffle(
    dataset: Dataset,
    config: BuilderConfig,
    builder: str,
    rng: np.random.Generator,
    accuracy_tol: float,
) -> list[Finding]:
    cfg = _prepared(config, dataset.n_records)
    base = _build_tree(builder, dataset, cfg)
    perm = rng.permutation(dataset.n_records)
    shuffled = Dataset(dataset.X[perm], dataset.y[perm], dataset.schema)
    other = _build_tree(builder, shuffled, cfg)
    if tree_signature(base) != tree_signature(other):
        return [
            Finding(
                builder,
                "shuffle_divergence",
                "tree built on row-shuffled data is not bit-identical",
            )
        ]
    return []


def check_duplicate(
    dataset: Dataset,
    config: BuilderConfig,
    builder: str,
    rng: np.random.Generator,
    accuracy_tol: float,
    k: int = 2,
) -> list[Finding]:
    n = dataset.n_records
    # Pin the grid at the adaptive floor so node size cannot change it,
    # and scale every absolute record-count threshold by k.
    base_cfg = _prepared(config, n).with_(
        n_intervals=4,
        min_records=config.min_records,
        linear_min_records=config.linear_min_records,
    )
    dup_cfg = base_cfg.with_(
        min_records=config.min_records * k,
        linear_min_records=config.linear_min_records * k,
        reservoir_capacity=max(base_cfg.reservoir_capacity, k * n),
    )
    base = _build_tree(builder, dataset, base_cfg)
    tiled = Dataset(
        np.tile(dataset.X, (k, 1)), np.tile(dataset.y, k), dataset.schema
    )
    other = _build_tree(builder, tiled, dup_cfg)

    findings: list[Finding] = []

    def walk(a: Node, b: Node) -> None:
        if not np.array_equal(a.class_counts * k, b.class_counts):
            findings.append(
                Finding(
                    builder,
                    "duplicate_count_mismatch",
                    f"expected counts {(a.class_counts * k).tolist()}, "
                    f"got {b.class_counts.tolist()}",
                    node_id=a.node_id,
                )
            )
            return
        if a.is_leaf != b.is_leaf or (not a.is_leaf and a.split != b.split):
            findings.append(
                Finding(
                    builder,
                    "duplicate_structure_mismatch",
                    f"node diverges under x{k} duplication: "
                    f"{a.split!r} vs {b.split!r}",
                    node_id=a.node_id,
                )
            )
            return
        if not a.is_leaf:
            walk(a.left, b.left)
            walk(a.right, b.right)

    walk(base.root, other.root)
    return findings


def check_relabel(
    dataset: Dataset,
    config: BuilderConfig,
    builder: str,
    rng: np.random.Generator,
    accuracy_tol: float,
) -> list[Finding]:
    cfg = _prepared(config, dataset.n_records)
    c = dataset.schema.n_classes
    perm = rng.permutation(c)
    relabeled = Dataset(
        dataset.X, perm[dataset.y].astype(np.int64), dataset.schema
    )
    base = _build_tree(builder, dataset, cfg)
    other = _build_tree(builder, relabeled, cfg)

    if builder not in EXACT_BUILDERS:
        acc_a = _train_accuracy(base, dataset)
        acc_b = _train_accuracy(other, relabeled)
        if abs(acc_a - acc_b) > accuracy_tol:
            return [
                Finding(
                    builder,
                    "relabel_accuracy_divergence",
                    f"training accuracy {acc_a:.4f} vs {acc_b:.4f} after "
                    "label permutation",
                    value=abs(acc_a - acc_b),
                    bound=accuracy_tol,
                )
            ]
        return []

    findings: list[Finding] = []

    def walk(a: Node, b: Node) -> None:
        expected = np.zeros_like(a.class_counts)
        expected[perm] = a.class_counts
        if not np.array_equal(expected, b.class_counts):
            findings.append(
                Finding(
                    builder,
                    "relabel_count_mismatch",
                    f"expected permuted counts {expected.tolist()}, "
                    f"got {b.class_counts.tolist()}",
                    node_id=a.node_id,
                )
            )
            return
        if a.is_leaf and b.is_leaf:
            return
        if not a.is_leaf and not b.is_leaf and a.split == b.split:
            walk(a.left, b.left)
            walk(a.right, b.right)
            return
        # Divergence: acceptable only as an exact gini tie between two
        # equally good decisions (then stop descending).
        ga = a.gini - (_achieved_gini(a) if not a.is_leaf else 0.0)
        gb = b.gini - (_achieved_gini(b) if not b.is_leaf else 0.0)
        if abs(ga - gb) > EPS:
            findings.append(
                Finding(
                    builder,
                    "relabel_structure_mismatch",
                    "trees diverge under label permutation without an exact "
                    f"gini tie (gains {ga:.9g} vs {gb:.9g})",
                    node_id=a.node_id,
                    value=abs(ga - gb),
                    bound=EPS,
                )
            )

    walk(base.root, other.root)
    return findings


def check_scale_pow2(
    dataset: Dataset,
    config: BuilderConfig,
    builder: str,
    rng: np.random.Generator,
    accuracy_tol: float,
    power: int = 3,
) -> list[Finding]:
    cfg = _prepared(config, dataset.n_records)
    scale = float(2**power)
    cont = dataset.schema.continuous_indices()
    X = dataset.X.copy()
    X[:, cont] *= scale
    scaled = Dataset(X, dataset.y, dataset.schema)
    base = _build_tree(builder, dataset, cfg)
    other = _build_tree(builder, scaled, cfg)

    findings: list[Finding] = []

    def splits_match(a, b) -> bool:
        if type(a) is not type(b):
            return False
        if isinstance(a, NumericSplit):
            return a.attr == b.attr and a.threshold * scale == b.threshold
        if isinstance(a, CategoricalSplit):
            return a == b
        if isinstance(a, LinearSplit):
            return (
                (a.attr_x, a.attr_y, a.a, a.b) == (b.attr_x, b.attr_y, b.a, b.b)
                and a.c * scale == b.c
            )
        return False

    def walk(a: Node, b: Node) -> None:
        if not np.array_equal(a.class_counts, b.class_counts):
            findings.append(
                Finding(
                    builder,
                    "scale_count_mismatch",
                    f"counts {a.class_counts.tolist()} vs "
                    f"{b.class_counts.tolist()} after x{scale:g} scaling",
                    node_id=a.node_id,
                )
            )
            return
        if a.is_leaf != b.is_leaf or (not a.is_leaf and not splits_match(a.split, b.split)):
            findings.append(
                Finding(
                    builder,
                    "scale_structure_mismatch",
                    f"node diverges under x{scale:g} scaling: "
                    f"{a.split!r} vs {b.split!r}",
                    node_id=a.node_id,
                )
            )
            return
        if not a.is_leaf:
            walk(a.left, b.left)
            walk(a.right, b.right)

    walk(base.root, other.root)
    return findings


def check_constant_categorical(
    dataset: Dataset,
    config: BuilderConfig,
    builder: str,
    rng: np.random.Generator,
    accuracy_tol: float,
) -> list[Finding]:
    cfg = _prepared(config, dataset.n_records)
    base = _build_tree(builder, dataset, cfg)
    extended = _with_column(
        dataset,
        np.zeros(dataset.n_records),
        Attribute("_const_cat", AttributeKind.CATEGORICAL, ("only",)),
    )
    other = _build_tree(builder, extended, cfg)
    if tree_signature(base) != tree_signature(other):
        return [
            Finding(
                builder,
                "constant_categorical_divergence",
                "appending a single-category column changed the tree",
            )
        ]
    return []


def check_constant_continuous(
    dataset: Dataset,
    config: BuilderConfig,
    builder: str,
    rng: np.random.Generator,
    accuracy_tol: float,
) -> list[Finding]:
    cfg = _prepared(config, dataset.n_records)
    base = _build_tree(builder, dataset, cfg)
    extended = _with_column(
        dataset,
        np.full(dataset.n_records, 42.0),
        Attribute("_const_cont", AttributeKind.CONTINUOUS),
    )
    other = _build_tree(builder, extended, cfg)
    if tree_signature(base) != tree_signature(other):
        return [
            Finding(
                builder,
                "constant_continuous_divergence",
                "appending an all-identical continuous column changed the tree",
            )
        ]
    return []


def check_id_column(
    dataset: Dataset,
    config: BuilderConfig,
    builder: str,
    rng: np.random.Generator,
    accuracy_tol: float,
) -> list[Finding]:
    cfg = _prepared(config, dataset.n_records)
    base = _build_tree(builder, dataset, cfg)
    extended = _with_column(
        dataset,
        np.arange(dataset.n_records, dtype=np.float64),
        Attribute("_row_id", AttributeKind.CONTINUOUS),
    )
    other = _build_tree(builder, extended, cfg)
    acc_a = _train_accuracy(base, dataset)
    acc_b = _train_accuracy(other, extended)
    if acc_b < acc_a - accuracy_tol:
        return [
            Finding(
                builder,
                "id_column_accuracy_loss",
                f"training accuracy fell from {acc_a:.4f} to {acc_b:.4f} "
                "after appending a row-ID column",
                value=acc_a - acc_b,
                bound=accuracy_tol,
            )
        ]
    return []


def check_rank_oracle(
    dataset: Dataset,
    config: BuilderConfig,
    builder: str,
    rng: np.random.Generator,
    accuracy_tol: float,
) -> list[Finding]:
    cfg = _prepared(config, dataset.n_records)
    cont = dataset.schema.continuous_indices()
    X = dataset.X.copy()
    for j in cont:
        _, inverse = np.unique(X[:, j], return_inverse=True)
        X[:, j] = inverse.astype(np.float64)
    ranked = Dataset(X, dataset.y, dataset.schema)

    findings: list[Finding] = []
    oracle_base = OracleBuilder(cfg).build(dataset).tree
    oracle_ranked = OracleBuilder(cfg).build(ranked).tree
    pred_a = oracle_base.predict(dataset.X)
    pred_b = oracle_ranked.predict(ranked.X)
    if not np.array_equal(pred_a, pred_b):
        findings.append(
            Finding(
                "ORACLE",
                "rank_invariance_violation",
                f"{int(np.sum(pred_a != pred_b))} oracle predictions changed "
                "under a strictly monotone (dense rank) transform",
            )
        )

    base = _build_tree(builder, dataset, cfg)
    ranked_result = BUILDER_FACTORIES[builder](cfg).build(ranked)
    other = ranked_result.tree
    if builder in EXACT_BUILDERS:
        if not np.array_equal(base.predict(dataset.X), other.predict(ranked.X)):
            findings.append(
                Finding(
                    builder,
                    "rank_invariance_violation",
                    "exhaustive builder predictions changed under a "
                    "dense rank transform",
                )
            )
        return findings

    # Estimator builders: ranking legitimately rebuilds the tree (child
    # grids interpolate in value space), so hold the ranked tree to the
    # differential per-node bound instead of a fixed accuracy tolerance.
    second_ids = frozenset(
        getattr(ranked_result.stats, "second_level_node_ids", ())
    )
    tree_findings, _ = check_tree_against_oracle(
        other, ranked, cfg, builder, second_level_nodes=second_ids
    )
    findings.extend(tree_findings)
    acc_a = _train_accuracy(base, dataset)
    acc_b = _train_accuracy(other, ranked)
    if abs(acc_a - acc_b) > accuracy_tol:
        findings.append(
            Finding(
                builder,
                "rank_accuracy_divergence",
                f"training accuracy {acc_a:.4f} vs {acc_b:.4f} under a "
                "dense rank transform",
                value=abs(acc_a - acc_b),
                bound=accuracy_tol,
                severity="warning",
            )
        )
    return findings


#: name -> (check function, builders it applies to — None means all).
METAMORPHIC_CHECKS = {
    "shuffle": (check_shuffle, None),
    "duplicate": (check_duplicate, None),
    "relabel": (check_relabel, None),
    "scale_pow2": (check_scale_pow2, None),
    "constant_categorical": (check_constant_categorical, None),
    "constant_continuous": (
        check_constant_continuous,
        frozenset({"CMP-S", "CLOUDS", "SLIQ", "SPRINT"}),
    ),
    "id_column": (check_id_column, None),
    "rank_oracle": (check_rank_oracle, None),
}


@dataclass
class MetamorphicReport:
    """Findings plus a per-(check, builder) pass/fail table."""

    findings: list[Finding] = field(default_factory=list)
    rows: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)


def run_metamorphic(
    dataset: Dataset,
    config: BuilderConfig,
    builders: tuple[str, ...] = ("CMP-S", "CMP-B", "CMP", "CLOUDS", "SLIQ"),
    checks: tuple[str, ...] | None = None,
    seed: int = 0,
    accuracy_tol: float = 0.05,
) -> MetamorphicReport:
    """Run the selected metamorphic checks for every requested builder.

    Each (check, builder) pair gets its own child generator derived from
    ``seed``, so single checks replay identically in isolation.
    """
    report = MetamorphicReport()
    names = checks if checks is not None else tuple(METAMORPHIC_CHECKS)
    n_continuous = len(dataset.schema.continuous_indices())
    for name in names:
        try:
            func, applicable = METAMORPHIC_CHECKS[name]
        except KeyError:
            raise ValueError(
                f"unknown check {name!r}; choose from {sorted(METAMORPHIC_CHECKS)}"
            ) from None
        for builder in builders:
            if applicable is not None and builder not in applicable:
                continue
            if builder in {"CMP-B", "CMP"} and n_continuous < 2:
                continue
            rng = np.random.default_rng(
                [seed, zlib.crc32(name.encode()), zlib.crc32(builder.encode())]
            )
            try:
                findings = func(dataset, config, builder, rng, accuracy_tol)
            except Exception as exc:  # noqa: BLE001 - crashes become findings
                findings = [
                    Finding(
                        builder, "crash", f"{name}: {type(exc).__name__}: {exc}"
                    )
                ]
            report.findings.extend(findings)
            if not findings:
                status = "ok"
            elif any(f.severity == "error" for f in findings):
                status = "FAIL"
            else:
                status = "warn"
            report.rows.append(
                {"check": name, "builder": builder, "status": status}
            )
    return report


# ---------------------------------------------------------------------------
# Streaming-trainer checks (sketch path)
# ---------------------------------------------------------------------------
#
# The streaming trainer is order-*sensitive* by design (sketch compaction
# depends on arrival order), so bit-identity under shuffle is the wrong
# invariant.  Its stated invariants are:
#
# ``stream_shuffle``
#     Any stream order must still produce a tree whose every
#     sketch-chosen split passes the ε-derived oracle bound of
#     :func:`repro.verify.stream.check_streaming_tree`, with training
#     accuracy within ``accuracy_tol`` of the natural-order build.
# ``stream_duplicate``
#     Repeating every record ``k`` times leaves the value distribution
#     unchanged, so sketch quantiles on the tiled stream must agree with
#     the originals within the summed rank-error fractions.
# ``stream_scale_pow2``
#     Multiplying values by ``2**k`` (exact in binary floating point)
#     commutes with the deterministic compactor: every retained item,
#     every edge, and the error bound scale exactly.


def check_stream_shuffle(
    dataset: Dataset,
    config: BuilderConfig,
    rng: np.random.Generator,
    accuracy_tol: float,
    eps: float = 0.02,
) -> list[Finding]:
    from repro.verify.stream import run_stream_differential

    cfg = _prepared(config, dataset.n_records)
    base_result, findings, _ = run_stream_differential(dataset, cfg, eps=eps)
    perm = rng.permutation(dataset.n_records)
    shuffled = dataset.take(perm)
    shuf_result, shuf_findings, _ = run_stream_differential(
        shuffled, cfg, eps=eps
    )
    findings = list(findings) + list(shuf_findings)
    acc_a = _train_accuracy(base_result.tree, dataset)
    acc_b = _train_accuracy(shuf_result.tree, shuffled)
    if abs(acc_a - acc_b) > accuracy_tol:
        findings.append(
            Finding(
                "CMP-STREAM",
                "stream_shuffle_accuracy_divergence",
                f"training accuracy {acc_a:.4f} vs {acc_b:.4f} across "
                "stream orders",
                value=abs(acc_a - acc_b),
                bound=accuracy_tol,
            )
        )
    return findings


def check_stream_duplicate(
    dataset: Dataset,
    config: BuilderConfig,
    rng: np.random.Generator,
    accuracy_tol: float,
    eps: float = 0.02,
    k: int = 3,
) -> list[Finding]:
    from repro.stream.sketch import QuantileSketch

    findings: list[Finding] = []
    probs = (0.1, 0.25, 0.5, 0.75, 0.9)
    for j in dataset.schema.continuous_indices():
        values = dataset.X[:, j]
        n = len(values)
        a = QuantileSketch(eps)
        a.extend(values)
        b = QuantileSketch(eps)
        b.extend(np.repeat(values, k))
        # Exact rank fractions of each sketch's reported quantiles must
        # agree: duplication leaves the distribution unchanged.
        tol = (
            a.rank_error_bound() / n
            + b.rank_error_bound() / (k * n)
            + 2.0 * eps  # quantile selection granularity, both sketches
        )
        for p in probs:
            fa = float(np.sum(values <= a.quantile(p))) / n
            fb = float(np.sum(values <= b.quantile(p))) / n
            if abs(fa - fb) > tol + EPS:
                findings.append(
                    Finding(
                        "CMP-STREAM",
                        "stream_duplicate_quantile_divergence",
                        f"attr {j} p={p}: rank fractions {fa:.4f} vs {fb:.4f} "
                        f"diverge under x{k} duplication",
                        value=abs(fa - fb),
                        bound=tol,
                    )
                )
    return findings


def check_stream_scale_pow2(
    dataset: Dataset,
    config: BuilderConfig,
    rng: np.random.Generator,
    accuracy_tol: float,
    eps: float = 0.02,
    power: int = 3,
) -> list[Finding]:
    from repro.stream.sketch import QuantileSketch

    scale = float(2**power)
    findings: list[Finding] = []
    q = max(4, min(config.n_intervals, 16))
    for j in dataset.schema.continuous_indices():
        values = dataset.X[:, j]
        a = QuantileSketch(eps)
        a.extend(values)
        b = QuantileSketch(eps)
        b.extend(values * scale)
        if a.rank_error_bound() != b.rank_error_bound():
            findings.append(
                Finding(
                    "CMP-STREAM",
                    "stream_scale_bound_divergence",
                    f"attr {j}: rank-error bound changed under x{scale:g} "
                    f"scaling ({a.rank_error_bound()} vs {b.rank_error_bound()})",
                )
            )
        if not np.array_equal(a.edges(q) * scale, b.edges(q)):
            findings.append(
                Finding(
                    "CMP-STREAM",
                    "stream_scale_edge_divergence",
                    f"attr {j}: sketch edges not exactly scaled by {scale:g}",
                )
            )
    return findings


#: Streaming-trainer checks; signature (dataset, config, rng, accuracy_tol,
#: eps) -> findings.
STREAM_METAMORPHIC_CHECKS = {
    "stream_shuffle": check_stream_shuffle,
    "stream_duplicate": check_stream_duplicate,
    "stream_scale_pow2": check_stream_scale_pow2,
}


def run_stream_metamorphic(
    dataset: Dataset,
    config: BuilderConfig,
    checks: tuple[str, ...] | None = None,
    seed: int = 0,
    accuracy_tol: float = 0.10,
    eps: float = 0.02,
) -> MetamorphicReport:
    """Streaming counterpart of :func:`run_metamorphic` (one pseudo-builder).

    ``accuracy_tol`` is looser than the batch default: one-pass trees
    are order-sensitive by construction (split *timing* depends on when
    each leaf crosses its grace period), so the ε-bound governs each
    split against its own members, not global structural stability
    across reorderings.
    """
    report = MetamorphicReport()
    names = checks if checks is not None else tuple(STREAM_METAMORPHIC_CHECKS)
    for name in names:
        try:
            func = STREAM_METAMORPHIC_CHECKS[name]
        except KeyError:
            raise ValueError(
                f"unknown check {name!r}; choose from "
                f"{sorted(STREAM_METAMORPHIC_CHECKS)}"
            ) from None
        rng = np.random.default_rng(
            [seed, zlib.crc32(name.encode()), zlib.crc32(b"CMP-STREAM")]
        )
        try:
            findings = func(dataset, config, rng, accuracy_tol, eps)
        except Exception as exc:  # noqa: BLE001 - crashes become findings
            findings = [
                Finding(
                    "CMP-STREAM", "crash", f"{name}: {type(exc).__name__}: {exc}"
                )
            ]
        report.findings.extend(findings)
        if not findings:
            status = "ok"
        elif any(f.severity == "error" for f in findings):
            status = "FAIL"
        else:
            status = "warn"
        report.rows.append(
            {"check": name, "builder": "CMP-STREAM", "status": status}
        )
    return report


__all__ = [
    "METAMORPHIC_CHECKS",
    "STREAM_METAMORPHIC_CHECKS",
    "MetamorphicReport",
    "run_metamorphic",
    "run_stream_metamorphic",
]
