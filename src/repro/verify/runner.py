"""Orchestration behind ``cmp-repro verify``.

Runs the differential and metamorphic suites over a battery of seeded
adversarial datasets (profiles rotate across seeds so every profile is
covered), collects findings, and feeds span tracing / metrics through
the same :mod:`repro.obs` objects every other CLI path uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import BuilderConfig
from repro.eval.treegen import ADVERSARIAL_PROFILES, adversarial_dataset
from repro.verify.differential import Finding, run_differential
from repro.verify.forest import run_forest_differential
from repro.verify.metamorphic import run_metamorphic

DEFAULT_BUILDERS = ("CMP-S", "CMP-B", "CMP", "CLOUDS", "SLIQ")


@dataclass
class VerifySummary:
    """Outcome of one ``cmp-repro verify`` invocation."""

    datasets_run: int = 0
    findings: list[Finding] = field(default_factory=list)
    rows: list[dict] = field(default_factory=list)
    meta_rows: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding surfaced anywhere."""
        return not any(f.severity == "error" for f in self.findings)

    def builder_rows(self) -> list[dict]:
        """Per-builder aggregate over every dataset (CLI summary table)."""
        agg: dict[str, dict] = {}
        for row in self.rows:
            a = agg.setdefault(
                row["builder"],
                {
                    "builder": row["builder"],
                    "datasets": 0,
                    "internal": 0,
                    "exact": 0,
                    "max_gap": 0.0,
                    "max_bound": 0.0,
                    "min_accuracy": 1.0,
                    "min_oracle_agree": 1.0,
                    "parallel_ok": True,
                },
            )
            a["datasets"] += 1
            a["internal"] += row["internal"]
            a["exact"] += row["exact"]
            a["max_gap"] = max(a["max_gap"], row["max_gap"])
            a["max_bound"] = max(a["max_bound"], row["max_bound"])
            a["min_accuracy"] = min(a["min_accuracy"], row["accuracy"])
            a["min_oracle_agree"] = min(a["min_oracle_agree"], row["oracle_agree"])
            a["parallel_ok"] = a["parallel_ok"] and row["parallel_ok"]
        return list(agg.values())


def run_verify(
    config: BuilderConfig,
    seeds: int = 25,
    profiles: tuple[str, ...] = tuple(ADVERSARIAL_PROFILES),
    builders: tuple[str, ...] = DEFAULT_BUILDERS,
    workers: tuple[int, ...] = (4,),
    n: int = 300,
    metamorphic_checks: tuple[str, ...] | None = None,
    safety: float = 2.0,
    accuracy_tol: float = 0.05,
    forest_every: int = 5,
    tracer=None,
    registry=None,
    log=None,
) -> VerifySummary:
    """Differential + metamorphic verification over ``seeds`` datasets.

    Dataset ``i`` uses profile ``profiles[i % len(profiles)]`` with seed
    ``i`` — deterministic, and every profile is exercised once the seed
    count reaches the profile count.  ``metamorphic_checks=None`` runs
    the full metamorphic battery (including the soft accuracy-delta
    checks).  Every ``forest_every``-th dataset (0 disables) also runs
    :func:`repro.verify.forest.run_forest_differential`: each shared-scan
    bagged member is checked bit-identical to its solo build and against
    the exact-split oracle on its own bootstrap sample, and both ensemble
    trainers must reproduce exactly across the backend/worker matrix.
    """
    from repro.obs.trace import NULL_TRACER

    tracer = tracer if tracer is not None else NULL_TRACER
    summary = VerifySummary()
    counter = None
    finding_counter = None
    if registry is not None:
        counter = registry.counter(
            "verify_datasets_total", "datasets checked by cmp-repro verify"
        )
        finding_counter = registry.counter(
            "verify_findings_total", "error findings raised by cmp-repro verify"
        )

    for i in range(seeds):
        profile = profiles[i % len(profiles)]
        dataset = adversarial_dataset(profile, n=n, seed=i)
        with tracer.span("verify_dataset", profile=profile, seed=i) as span:
            with tracer.span("differential"):
                diff = run_differential(
                    dataset,
                    config,
                    builders=builders,
                    workers=workers,
                    safety=safety,
                )
            with tracer.span("metamorphic"):
                meta = run_metamorphic(
                    dataset,
                    config,
                    builders=builders,
                    checks=metamorphic_checks,
                    seed=i,
                    accuracy_tol=accuracy_tol,
                )
            forest_findings: list[Finding] = []
            if forest_every and i % forest_every == 0:
                with tracer.span("forest_differential"):
                    forest = run_forest_differential(
                        dataset, config, safety=safety, tracer=tracer
                    )
                forest_findings = forest.findings
            n_errors = sum(
                1
                for f in diff.findings + meta.findings + forest_findings
                if f.severity == "error"
            )
            span.annotate(findings=n_errors)
        summary.datasets_run += 1
        summary.findings.extend(diff.findings)
        summary.findings.extend(meta.findings)
        summary.findings.extend(forest_findings)
        for row in diff.rows():
            summary.rows.append({"profile": profile, "seed": i, **row})
        for row in meta.rows:
            if row["status"] != "ok":
                summary.meta_rows.append({"profile": profile, "seed": i, **row})
        if counter is not None:
            counter.inc()
        if finding_counter is not None and n_errors:
            finding_counter.inc(n_errors)
        if log is not None:
            status = "ok" if n_errors == 0 else f"{n_errors} FINDING(S)"
            log(f"[{i + 1}/{seeds}] {profile:16s} {status}")
    return summary


__all__ = ["DEFAULT_BUILDERS", "VerifySummary", "run_verify"]
