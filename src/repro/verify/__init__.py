"""Differential & metamorphic correctness harness.

CMP's value proposition is that interval-based estimation, deferred split
resolution and bivariate matrices build trees *as good as* an exact
exhaustive-split classifier at a fraction of the I/O.  This package turns
that claim into machine-checkable assertions:

* :mod:`repro.verify.oracle` — a brute-force exact tree builder
  (exhaustive gini over every cut point of every attribute, exhaustive
  categorical subsets, optional exhaustive two-attribute linear splits on
  tiny data) used as ground truth.
* :mod:`repro.verify.differential` — grows CMP-S/CMP-B/CMP (serial and
  parallel) and the in-repo CLOUDS/SLIQ baselines on one dataset and
  asserts per-node gini-optimality within the paper's estimator
  guarantees, plus routing/count consistency and accuracy deltas against
  the oracle.
* :mod:`repro.verify.metamorphic` — invariance checks (row shuffling and
  duplication, label permutation, strictly monotone transforms, constant
  and ID column injection), each with a stated expected invariant.
* :mod:`repro.verify.fuzz` — adversarial dataset fuzzing with automatic
  shrinking of failing datasets into a replayable JSON corpus.
* :mod:`repro.verify.forest` — shared-scan ensemble checks: every bagged
  member bit-identical to its solo build and oracle-verified on its own
  bootstrap sample, plus a backend/worker bit-identity matrix for both
  ensemble trainers and packed-scoring parity.
* :mod:`repro.verify.stream` — the streaming extension: every
  sketch-chosen split of the one-pass trainer replayed against the exact
  oracle within an explicit ε-derived bound, swept over seeds ×
  generator functions × stream orders.
* :mod:`repro.verify.runner` — the ``cmp-repro verify`` orchestration,
  wired into :mod:`repro.obs` tracing and metrics.

Every future scaling PR (sharding, streaming) is expected to keep
``cmp-repro verify`` green.
"""

from repro.verify.differential import (
    BUILDER_FACTORIES,
    DifferentialReport,
    Finding,
    check_tree_against_oracle,
    node_members,
    run_differential,
    tree_signature,
)
from repro.verify.fuzz import (
    FailureCase,
    default_checks,
    load_case,
    replay_case,
    run_fuzz,
    save_case,
    shrink_case,
)
from repro.verify.forest import (
    ForestReport,
    forest_signatures,
    run_forest_differential,
)
from repro.verify.metamorphic import (
    METAMORPHIC_CHECKS,
    STREAM_METAMORPHIC_CHECKS,
    run_metamorphic,
    run_stream_metamorphic,
)
from repro.verify.oracle import (
    OracleBuilder,
    OracleSplit,
    best_categorical_split,
    best_linear_split,
    best_numeric_split,
    oracle_best_split,
)
from repro.verify.runner import run_verify
from repro.verify.stream import (
    StreamBatteryReport,
    check_streaming_tree,
    run_stream_battery,
    run_stream_differential,
)

__all__ = [
    "BUILDER_FACTORIES",
    "DifferentialReport",
    "FailureCase",
    "Finding",
    "ForestReport",
    "METAMORPHIC_CHECKS",
    "STREAM_METAMORPHIC_CHECKS",
    "StreamBatteryReport",
    "OracleBuilder",
    "OracleSplit",
    "best_categorical_split",
    "best_linear_split",
    "best_numeric_split",
    "check_streaming_tree",
    "check_tree_against_oracle",
    "default_checks",
    "forest_signatures",
    "load_case",
    "node_members",
    "oracle_best_split",
    "replay_case",
    "run_differential",
    "run_forest_differential",
    "run_fuzz",
    "run_metamorphic",
    "run_stream_battery",
    "run_stream_differential",
    "run_stream_metamorphic",
    "run_verify",
    "save_case",
    "shrink_case",
    "tree_signature",
]
