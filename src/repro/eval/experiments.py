"""Drivers that regenerate every table and figure of the paper's evaluation.

Each function returns structured rows (lists of dicts) so tests can assert
the paper's *shape* claims and benchmarks can print the same tables the
paper reports.  Record counts default to laptop scale (the paper used
200k-2.5M records on 1999 hardware); every driver takes explicit sizes so
the full-scale sweep is one argument away.  See DESIGN.md §4 for the
experiment index and EXPERIMENTS.md for measured-vs-paper results.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.clouds import CloudsBuilder
from repro.baselines.rainforest import RainForestBuilder
from repro.baselines.sprint import SprintBuilder
from repro.config import BuilderConfig
from repro.core.cmp_b import CMPBBuilder
from repro.core.cmp_full import CMPBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.core.gini import exact_best_threshold
from repro.core.histogram import CategoryHistogram, ClassHistogram
from repro.core.intervals import analyze_attribute, choose_split_attribute
from repro.core.builder import resolve_exact_threshold
from repro.core.cmp_s import merge_contiguous
from repro.data.dataset import Dataset
from repro.data.discretize import equal_depth_edges
from repro.data.statlog import STATLOG_SPECS, generate_statlog
from repro.data.synthetic import generate_agrawal, generate_function_f
from repro.eval.harness import RunRecord, run_builder
from repro.obs.export import record_build_stats
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullTracer, Tracer

#: Builders compared in Figures 16-18.
COMPARISON_BUILDERS = (CMPBuilder, SprintBuilder, RainForestBuilder, CloudsBuilder)

#: The CMP family compared in Figures 14-15.
FAMILY_BUILDERS = (CMPSBuilder, CMPBBuilder, CMPBuilder)


def default_config(**overrides: object) -> BuilderConfig:
    """The configuration used by the paper-reproduction experiments.

    100 intervals (the paper uses "100 to 120"), at most two alive
    intervals, PUBLIC(1) pruning during construction (Figures 4/10,
    line 20).
    """
    base = dict(
        n_intervals=100,
        max_alive=2,
        max_depth=12,
        min_records=50,
        prune="public",
    )
    base.update(overrides)
    return BuilderConfig(**base)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Table 1 — exact vs CMP root splits under discretization
# ---------------------------------------------------------------------------


def _exact_root_split(dataset: Dataset) -> tuple[int, float]:
    """Best exact root split over all attributes (SPRINT semantics)."""
    best_attr, best_gini = -1, np.inf
    for j, attr in enumerate(dataset.schema.attributes):
        col = dataset.column(j)
        if attr.is_continuous:
            try:
                __, g = exact_best_threshold(col, dataset.y, dataset.n_classes)
            except ValueError:
                continue
        else:
            hist = CategoryHistogram(attr.cardinality, dataset.n_classes)
            hist.update(col, dataset.y)
            try:
                __, g = hist.best_subset_split()
            except ValueError:
                continue
        if g < best_gini:
            best_attr, best_gini = j, float(g)
    return best_attr, best_gini


def _cmp_root_split(
    dataset: Dataset, n_intervals: int, max_alive: int
) -> tuple[int, float, int]:
    """CMP-S root split under discretization.

    Returns ``(attribute, resolved_gini, n_alive)`` where the gini is the
    exact value CMP obtains after resolving the alive intervals from the
    buffered records ("gini evaluated on records in alive intervals at
    next round", Table 1 note 3).
    """
    analyses = []
    hists: dict[int, ClassHistogram] = {}
    for j in dataset.schema.continuous_indices():
        col = dataset.column(j)
        hist = ClassHistogram(equal_depth_edges(col, n_intervals), dataset.n_classes)
        hist.update(col, dataset.y)
        hists[j] = hist
        analyses.append(analyze_attribute(j, hist))
    winner = choose_split_attribute(analyses, max_alive)
    if winner is None:
        return -1, np.inf, 0
    hist = hists[winner.attr]
    runs = merge_contiguous(winner.alive)
    alive_bounds: list[tuple[float, float]] = []
    alive_cum_below: list[np.ndarray] = []
    q = hist.n_intervals
    for i0, i1 in runs:
        lo = -np.inf if i0 == 0 else float(hist.edges[i0 - 1])
        hi = np.inf if i1 == q - 1 else float(hist.edges[i1])
        alive_bounds.append((lo, hi))
        alive_cum_below.append(hist.cum_below(i0))
    col = dataset.column(winner.attr)
    in_alive = np.zeros(dataset.n_records, dtype=bool)
    for lo, hi in alive_bounds:
        in_alive |= (col > lo) & (col <= hi)
    res = resolve_exact_threshold(
        hist.totals(),
        float(winner.edges[winner.best_boundary]) if winner.has_boundaries else None,
        winner.gini_min,
        alive_bounds,
        alive_cum_below,
        col[in_alive],
        dataset.y[in_alive],
    )
    gini = res.gini if res is not None else np.inf
    return winner.attr, float(gini), len(winner.alive)


#: (dataset name, loader, interval counts) reproduced in Table 1.
TABLE1_DATASETS: list[tuple[str, str, tuple[int, ...]]] = [
    ("Letter", "statlog", (10, 15)),
    ("Satimage", "statlog", (10, 15)),
    ("Segment", "statlog", (10, 15)),
    ("Shuttle", "statlog", (10, 15)),
    ("Function 2", "agrawal:F2", (50, 100)),
    ("Function 7", "agrawal:F7", (50, 100)),
]


def table1(
    seed: int = 0,
    agrawal_records: int = 100_000,
    max_alive: int = 2,
) -> list[dict[str, object]]:
    """Reproduce Table 1: splits by the exact algorithm vs CMP.

    The paper's convention: '-' for the CMP columns means "same as the
    exact algorithm".
    """
    rows: list[dict[str, object]] = []
    for name, source, interval_counts in TABLE1_DATASETS:
        if source == "statlog":
            dataset = generate_statlog(name.lower(), seed=seed)
        else:
            function = source.split(":")[1]
            dataset = generate_agrawal(function, agrawal_records, seed=seed)
        exact_attr, exact_gini = _exact_root_split(dataset)
        for q in interval_counts:
            cmp_attr, cmp_gini, n_alive = _cmp_root_split(dataset, q, max_alive)
            same_attr = cmp_attr == exact_attr
            same_gini = abs(cmp_gini - exact_gini) < 1e-9
            rows.append(
                {
                    "dataset": name,
                    "records": dataset.n_records,
                    "exact_attr": exact_attr,
                    "exact_gini": round(exact_gini, 6),
                    "intervals": q,
                    "alive": n_alive,
                    "cmp_attr": "-" if same_attr else cmp_attr,
                    "cmp_gini": "-" if same_gini else round(cmp_gini, 6),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 2 — gini curve with alive intervals (illustration)
# ---------------------------------------------------------------------------


def fig2_gini_curve(
    n_records: int = 50_000,
    n_intervals: int = 40,
    seed: int = 0,
    attribute: str = "salary",
) -> dict[str, np.ndarray]:
    """Boundary ginis, interval estimates and alive intervals for one
    attribute of the Function 2 root — the data behind Figure 2."""
    dataset = generate_agrawal("F2", n_records, seed=seed)
    j = dataset.schema.index_of(attribute)
    col = dataset.column(j)
    hist = ClassHistogram(equal_depth_edges(col, n_intervals), dataset.n_classes)
    hist.update(col, dataset.y)
    analysis = analyze_attribute(j, hist)
    from repro.core.intervals import select_alive_intervals

    alive = select_alive_intervals(analysis, max_alive=2)
    return {
        "edges": hist.edges,
        "boundary_gini": analysis.boundary_gini,
        "estimates": analysis.est,
        "gini_min": np.array([analysis.gini_min]),
        "alive_intervals": np.array(alive, dtype=np.int64),
    }


# ---------------------------------------------------------------------------
# Figures 14-19 — scalability / comparison / memory sweeps
# ---------------------------------------------------------------------------


def _sweep(
    builders: Sequence[type],
    function: str,
    sizes: Sequence[int],
    config: BuilderConfig,
    seed: int,
    tracer: "Tracer | NullTracer | None" = None,
    registry: MetricsRegistry | None = None,
    dataset_factory=generate_agrawal,
) -> list[RunRecord]:
    """Run every builder at every size; optionally trace + export metrics.

    ``tracer`` is shared by every build (one ``build`` root span each);
    ``registry`` accumulates each build's counters labeled by builder
    name and training-set size.
    """
    records: list[RunRecord] = []
    for n in sizes:
        dataset = dataset_factory(function, n, seed=seed)
        for builder_cls in builders:
            record, result = run_builder(builder_cls(config, tracer=tracer), dataset)
            if registry is not None:
                record_build_stats(
                    registry,
                    result.stats,
                    {"builder": record.builder, "records": str(n)},
                )
            records.append(record)
    return records


def scalability(
    function: str = "F2",
    sizes: Sequence[int] = (20_000, 50_000, 100_000),
    config: BuilderConfig | None = None,
    seed: int = 0,
    tracer: "Tracer | NullTracer | None" = None,
    registry: MetricsRegistry | None = None,
) -> list[RunRecord]:
    """Figures 14-15: CMP-S vs CMP-B vs CMP as the training set grows."""
    return _sweep(
        FAMILY_BUILDERS, function, sizes, config or default_config(), seed,
        tracer, registry,
    )


def comparison(
    function: str = "F2",
    sizes: Sequence[int] = (20_000, 50_000, 100_000),
    config: BuilderConfig | None = None,
    seed: int = 0,
    tracer: "Tracer | NullTracer | None" = None,
    registry: MetricsRegistry | None = None,
) -> list[RunRecord]:
    """Figures 16-17: CMP vs SPRINT, RainForest and CLOUDS."""
    return _sweep(
        COMPARISON_BUILDERS, function, sizes, config or default_config(), seed,
        tracer, registry,
    )


def comparison_f(
    sizes: Sequence[int] = (20_000, 50_000),
    config: BuilderConfig | None = None,
    seed: int = 0,
    tracer: "Tracer | NullTracer | None" = None,
    registry: MetricsRegistry | None = None,
) -> list[RunRecord]:
    """Figure 18: the linearly-correlated Function f workload.

    CMP detects the ``salary + commission`` correlation and builds a far
    smaller tree in fewer scans than univariate algorithms.
    """
    return _sweep(
        COMPARISON_BUILDERS, "f", sizes, config or default_config(), seed,
        tracer, registry,
        dataset_factory=lambda __, n, seed: generate_function_f(n, seed=seed),
    )


def memory_usage(
    function: str = "F2",
    sizes: Sequence[int] = (20_000, 50_000, 100_000),
    config: BuilderConfig | None = None,
    seed: int = 0,
    tracer: "Tracer | NullTracer | None" = None,
    registry: MetricsRegistry | None = None,
) -> list[RunRecord]:
    """Figure 19: peak tracked memory of CMP vs RainForest vs SPRINT."""
    builders = (CMPBuilder, RainForestBuilder, SprintBuilder)
    return _sweep(
        builders, function, sizes, config or default_config(), seed,
        tracer, registry,
    )


def prediction_accuracy(
    n_records: int = 100_000,
    config: BuilderConfig | None = None,
    seed: int = 0,
    tracer: "Tracer | NullTracer | None" = None,
    registry: MetricsRegistry | None = None,
) -> dict[str, float]:
    """§2.2: fraction of predictSplit predictions that come true on
    Function 2 (the paper reports about 80%)."""
    dataset = generate_agrawal("F2", n_records, seed=seed)
    record, result = run_builder(
        CMPBBuilder(config or default_config(), tracer=tracer), dataset
    )
    if registry is not None:
        record_build_stats(
            registry,
            result.stats,
            {"builder": record.builder, "records": str(n_records)},
        )
    return {
        "predictions_made": float(result.stats.predictions_made),
        "predictions_correct": float(result.stats.predictions_correct),
        "accuracy": result.stats.prediction_accuracy,
    }


def records_as_rows(records: Sequence[RunRecord]) -> list[dict[str, object]]:
    """Convenience: RunRecords to table rows."""
    return [r.as_dict() for r in records]
