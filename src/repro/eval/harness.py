"""Experiment harness: run builders, collect rows, format tables."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.builder import BuildResult, TreeBuilder
from repro.data.dataset import Dataset
from repro.eval.metrics import accuracy


@dataclass
class RunRecord:
    """One (builder, dataset) measurement."""

    builder: str
    n_records: int
    train_accuracy: float
    test_accuracy: float | None
    scans: int
    simulated_ms: float
    wall_seconds: float
    peak_memory_bytes: int
    nodes: int
    leaves: int
    depth: int
    linear_splits: int
    prediction_accuracy: float
    extras: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """Flat dict for table rendering."""
        out: dict[str, object] = {
            "builder": self.builder,
            "n": self.n_records,
            "train_acc": round(self.train_accuracy, 4),
            "scans": self.scans,
            "sim_ms": round(self.simulated_ms, 1),
            "wall_s": round(self.wall_seconds, 3),
            "peak_mem_MB": round(self.peak_memory_bytes / 1e6, 3),
            "nodes": self.nodes,
            "depth": self.depth,
        }
        if self.test_accuracy is not None:
            out["test_acc"] = round(self.test_accuracy, 4)
        if self.linear_splits:
            out["linear"] = self.linear_splits
        if self.prediction_accuracy:
            out["pred_acc"] = round(self.prediction_accuracy, 3)
        out.update(self.extras)
        return out


def run_builder(
    builder: TreeBuilder,
    train: Dataset,
    test: Dataset | None = None,
) -> tuple[RunRecord, BuildResult]:
    """Train ``builder`` on ``train`` and collect a :class:`RunRecord`."""
    result = builder.build(train)
    record = RunRecord(
        builder=builder.name,
        n_records=train.n_records,
        train_accuracy=accuracy(result.tree, train),
        test_accuracy=accuracy(result.tree, test) if test is not None else None,
        scans=result.stats.io.scans,
        simulated_ms=result.stats.simulated_ms,
        wall_seconds=result.stats.wall_seconds,
        peak_memory_bytes=result.stats.memory.peak,
        nodes=result.tree.n_nodes,
        leaves=result.tree.n_leaves,
        depth=result.tree.depth,
        linear_splits=result.stats.linear_splits,
        prediction_accuracy=result.stats.prediction_accuracy,
    )
    return record, result


def format_table(rows: list[dict[str, object]]) -> str:
    """Plain-text table with one row per dict (union of keys as columns)."""
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[str(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    lines = [header, sep]
    lines.extend("  ".join(v.ljust(w) for v, w in zip(r, widths)) for r in rendered)
    return "\n".join(lines)
