"""Randomized decision-tree, record-batch and adversarial-dataset generators.

The compiled inference engine must agree with the object walker on *any*
tree the builders can produce, including shapes the synthetic datasets
rarely induce (deep categorical chains, linear splits off the root,
lopsided class counts).  :func:`random_tree` manufactures such trees
directly — mixing all three split kinds of :mod:`repro.core.splits` with
controllable proportions — and :func:`random_batch` draws record batches
over the matching schema, optionally including category codes never seen
at training time.  Used by ``tests/test_compiled.py``, the prediction
benchmark and the ``serve-bench`` CLI command.

:func:`adversarial_dataset` generates *training sets* designed to stress
the split finders where approximate methods historically go wrong —
heavy ties across interval boundaries, values separated by a few ULPs,
extreme class skew, single-record classes, and constant attributes.  The
verification harness (:mod:`repro.verify`) fuzzes over these profiles.

Every ``seed`` parameter accepts either an integer or a ready-made
``numpy.random.Generator`` so callers (notably the ``rng`` pytest
fixture) can centralize seeding.
"""

from __future__ import annotations

import numpy as np

from repro.core.splits import CategoricalSplit, LinearSplit, NumericSplit
from repro.core.tree import DecisionTree, Node
from repro.data.dataset import Dataset
from repro.data.schema import Attribute, AttributeKind, Schema


def coerce_rng(seed: "int | np.random.Generator") -> np.random.Generator:
    """An ``np.random.Generator`` from a seed or pass an existing one through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _make_schema(n_continuous: int, cardinalities: list[int], n_classes: int) -> Schema:
    attrs = [
        Attribute(f"c{i}", AttributeKind.CONTINUOUS) for i in range(n_continuous)
    ]
    attrs += [
        Attribute(
            f"d{i}",
            AttributeKind.CATEGORICAL,
            tuple(f"d{i}_v{j}" for j in range(card)),
        )
        for i, card in enumerate(cardinalities)
    ]
    labels = tuple(f"class{i}" for i in range(n_classes))
    return Schema(tuple(attrs), labels)


def random_tree(
    *,
    depth: int = 6,
    n_continuous: int = 4,
    n_categorical: int = 2,
    n_classes: int = 3,
    seed: "int | np.random.Generator" = 0,
    p_numeric: float = 0.5,
    p_categorical: float = 0.25,
    p_linear: float = 0.25,
    leaf_prob: float = 0.0,
    root_records: int = 10_000,
) -> DecisionTree:
    """A random tree mixing numeric, categorical and linear splits.

    ``depth`` bounds the tree; with ``leaf_prob == 0`` every branch
    reaches it (a full tree with ``2**depth`` leaves), otherwise each
    internal candidate independently stops early with that probability.
    Split-kind probabilities are renormalized over the kinds the schema
    supports (linear needs two continuous attributes, categorical needs
    a categorical one).  Class counts split binomially parent to child,
    so ``n_records`` is consistent down every path — which is what the
    unseen-category "heavier child" routing rule keys off.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    if n_continuous + n_categorical < 1:
        raise ValueError("need at least one attribute")
    rng = coerce_rng(seed)
    cards = [int(rng.integers(2, 7)) for _ in range(n_categorical)]
    schema = _make_schema(n_continuous, cards, n_classes)

    kinds: list[str] = []
    weights: list[float] = []
    if n_continuous >= 1 and p_numeric > 0:
        kinds.append("numeric")
        weights.append(p_numeric)
    if n_categorical >= 1 and p_categorical > 0:
        kinds.append("categorical")
        weights.append(p_categorical)
    if n_continuous >= 2 and p_linear > 0:
        kinds.append("linear")
        weights.append(p_linear)
    if not kinds:
        raise ValueError("no split kind is possible under these parameters")
    probs = np.asarray(weights, dtype=np.float64)
    probs /= probs.sum()

    counter = {"next": 0}

    def new_node(node_depth: int, counts: np.ndarray) -> Node:
        node = Node(counter["next"], node_depth, counts.astype(np.float64))
        counter["next"] += 1
        return node

    def make_split():
        kind = kinds[int(rng.choice(len(kinds), p=probs))]
        if kind == "numeric":
            attr = int(rng.integers(0, n_continuous))
            return NumericSplit(attr, float(rng.uniform(0.0, 1.0)))
        if kind == "categorical":
            j = int(rng.integers(0, n_categorical))
            card = cards[j]
            mask = rng.random(card) < 0.5
            if mask.all():
                mask[int(rng.integers(0, card))] = False
            if not mask.any():
                mask[int(rng.integers(0, card))] = True
            return CategoricalSplit(n_continuous + j, tuple(bool(b) for b in mask))
        ax, ay = rng.choice(n_continuous, size=2, replace=False)
        a = float(rng.uniform(0.25, 2.0)) * (1 if rng.random() < 0.5 else -1)
        b = float(rng.uniform(0.25, 2.0)) * (1 if rng.random() < 0.5 else -1)
        return LinearSplit(int(ax), int(ay), b=b, c=float(rng.uniform(-1.0, 1.0)), a=a)

    def grow(node: Node) -> None:
        if node.depth >= depth or (leaf_prob > 0 and rng.random() < leaf_prob):
            return
        node.split = make_split()
        frac = rng.uniform(0.2, 0.8)
        left_counts = rng.binomial(node.class_counts.astype(np.int64), frac)
        right_counts = node.class_counts.astype(np.int64) - left_counts
        node.left = new_node(node.depth + 1, np.asarray(left_counts))
        node.right = new_node(node.depth + 1, np.asarray(right_counts))
        grow(node.left)
        grow(node.right)

    root_counts = rng.multinomial(root_records, np.full(n_classes, 1.0 / n_classes))
    root = new_node(0, np.asarray(root_counts))
    grow(root)
    return DecisionTree(root, schema)


def random_batch(
    schema: Schema,
    n: int,
    seed: "int | np.random.Generator" = 0,
    unseen_frac: float = 0.0,
) -> np.ndarray:
    """Record batch over ``schema``: continuous in ``[-0.5, 1.5)``, codes in range.

    ``unseen_frac`` of each categorical column is replaced by codes one
    past the training vocabulary, exercising the heavier-child fallback.
    """
    rng = coerce_rng(seed)
    X = np.empty((n, schema.n_attributes), dtype=np.float64)
    for j, attr in enumerate(schema.attributes):
        if attr.is_continuous:
            X[:, j] = rng.uniform(-0.5, 1.5, size=n)
        else:
            X[:, j] = rng.integers(0, attr.cardinality, size=n).astype(np.float64)
            if unseen_frac > 0 and n:
                hit = rng.random(n) < unseen_frac
                X[hit, j] = float(attr.cardinality)
    return X


# ---------------------------------------------------------------------------
# Adversarial training-set generators (verification fuzzing profiles)
# ---------------------------------------------------------------------------


def _assemble(
    cont_cols: list[np.ndarray],
    cat_cols: list[tuple[np.ndarray, int]],
    y: np.ndarray,
    n_classes: int,
) -> Dataset:
    """Dataset from continuous columns + (codes, cardinality) pairs."""
    attrs = [Attribute(f"a{i}", AttributeKind.CONTINUOUS) for i in range(len(cont_cols))]
    cols = [np.asarray(c, dtype=np.float64) for c in cont_cols]
    for i, (codes, card) in enumerate(cat_cols):
        attrs.append(
            Attribute(
                f"cat{i}",
                AttributeKind.CATEGORICAL,
                tuple(f"cat{i}_v{j}" for j in range(card)),
            )
        )
        cols.append(np.asarray(codes, dtype=np.float64))
    schema = Schema(tuple(attrs), tuple(f"class{i}" for i in range(n_classes)))
    return Dataset(np.column_stack(cols), np.asarray(y, dtype=np.int64), schema)


def _noisy_labels(
    y: np.ndarray, rng: np.random.Generator, n_classes: int, flip: float = 0.08
) -> np.ndarray:
    """Flip a fraction of labels so trees stay non-trivial but imperfect."""
    y = np.asarray(y, dtype=np.int64) % n_classes
    hit = rng.random(len(y)) < flip
    y[hit] = rng.integers(0, n_classes, size=int(hit.sum()))
    return y


def _gen_ties(n: int, rng: np.random.Generator, n_classes: int) -> Dataset:
    """Heavy duplicate values: a handful of atoms carrying most records.

    Equal-depth edges land *on* data values here, so nearly every record
    sits exactly at an interval boundary — the regime where off-by-one
    tie handling (``<=`` vs ``<`` at an edge) visibly corrupts splits.
    """
    pool0 = np.sort(rng.choice(np.arange(1.0, 21.0), size=5, replace=False))
    a0 = rng.choice(pool0, size=n, p=np.array([0.35, 0.3, 0.2, 0.1, 0.05]))
    pool1 = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
    a1 = rng.choice(pool1, size=n)
    codes = rng.integers(0, 4, size=n)
    y = (a0 > pool0[2]).astype(np.int64) + (a1 >= 0.5).astype(np.int64)
    return _assemble(
        [a0, a1], [(codes, 4)], _noisy_labels(y, rng, n_classes), n_classes
    )


def _gen_near_boundary(n: int, rng: np.random.Generator, n_classes: int) -> Dataset:
    """Values a few billionths apart around shared centers.

    The class flips on the *strict* side of each center, so a resolved
    threshold placed one representable value off misroutes a cluster.
    """
    centers = np.array([0.25, 0.5, 0.75])
    which = rng.integers(0, len(centers), size=n)
    offsets = rng.integers(-3, 4, size=n).astype(np.float64) * 1e-9
    a0 = centers[which] + offsets
    a1 = rng.uniform(0.0, 1.0, size=n)
    y = (offsets > 0).astype(np.int64) + (a1 > 0.6).astype(np.int64)
    return _assemble([a0, a1], [], _noisy_labels(y, rng, n_classes, 0.04), n_classes)


def _gen_skew(n: int, rng: np.random.Generator, n_classes: int) -> Dataset:
    """Extreme class skew: one class holds ~96% of the records."""
    p = np.full(n_classes, 0.04 / max(n_classes - 1, 1))
    p[0] = 1.0 - p[1:].sum()
    y = rng.choice(n_classes, size=n, p=p)
    a0 = y.astype(np.float64) + rng.normal(0.0, 0.35, size=n)
    a1 = rng.uniform(0.0, 1.0, size=n)
    codes = np.minimum(y, 2) if n_classes > 2 else y.copy()
    return _assemble([a0, a1], [(codes, 3)], y, n_classes)


def _gen_singleton_class(n: int, rng: np.random.Generator, n_classes: int) -> Dataset:
    """All classes beyond the first two get exactly one record each.

    With two configured classes, one of them is reduced to a single
    record instead.
    """
    a0 = rng.uniform(0.0, 1.0, size=n)
    a1 = rng.uniform(0.0, 1.0, size=n)
    y = (a0 > 0.5).astype(np.int64)
    if n_classes > 2:
        for cls in range(2, n_classes):
            y[int(rng.integers(0, n))] = cls
    else:
        y[:] = 0
        y[int(rng.integers(0, n))] = 1
    return _assemble([a0, a1], [], y, n_classes)


def _gen_constant(n: int, rng: np.random.Generator, n_classes: int) -> Dataset:
    """All-identical attributes riding along one informative attribute."""
    a0 = np.full(n, 7.5)
    a1 = rng.uniform(0.0, 1.0, size=n)
    codes = np.zeros(n, dtype=np.int64)
    y = (a1 > 0.45).astype(np.int64)
    return _assemble(
        [a0, a1], [(codes, 2)], _noisy_labels(y, rng, n_classes), n_classes
    )


def _gen_mixed(n: int, rng: np.random.Generator, n_classes: int) -> Dataset:
    """Ties + near-boundary + constant column + skewed labels at once."""
    a0 = rng.choice(np.array([1.0, 2.0, 3.0]), size=n, p=np.array([0.6, 0.3, 0.1]))
    a1 = 0.5 + rng.integers(-2, 3, size=n).astype(np.float64) * 1e-9
    a2 = np.full(n, -3.0)
    codes = rng.integers(0, 3, size=n)
    y = np.where(
        rng.random(n) < 0.9,
        (a0 > 1.0).astype(np.int64),
        rng.integers(0, n_classes, size=n),
    )
    return _assemble([a0, a1, a2], [(codes, 3)], y % n_classes, n_classes)


#: Profile name -> generator ``(n, rng, n_classes) -> Dataset``.
ADVERSARIAL_PROFILES = {
    "ties": _gen_ties,
    "near_boundary": _gen_near_boundary,
    "skew": _gen_skew,
    "singleton_class": _gen_singleton_class,
    "constant": _gen_constant,
    "mixed": _gen_mixed,
}


def adversarial_dataset(
    profile: str,
    n: int = 400,
    seed: "int | np.random.Generator" = 0,
    n_classes: int = 3,
) -> Dataset:
    """A training set from one adversarial profile (see
    :data:`ADVERSARIAL_PROFILES`).

    Every profile keeps at least two continuous attributes so CMP-B and
    full CMP can run, and is deterministic given the seed.
    """
    try:
        gen = ADVERSARIAL_PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown profile {profile!r}; choose from "
            f"{sorted(ADVERSARIAL_PROFILES)}"
        ) from None
    if n < 1:
        raise ValueError("n must be positive")
    return gen(n, coerce_rng(seed), n_classes)


__all__ = [
    "ADVERSARIAL_PROFILES",
    "adversarial_dataset",
    "coerce_rng",
    "random_batch",
    "random_tree",
]
