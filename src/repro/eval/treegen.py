"""Randomized decision-tree and record-batch generators.

The compiled inference engine must agree with the object walker on *any*
tree the builders can produce, including shapes the synthetic datasets
rarely induce (deep categorical chains, linear splits off the root,
lopsided class counts).  :func:`random_tree` manufactures such trees
directly — mixing all three split kinds of :mod:`repro.core.splits` with
controllable proportions — and :func:`random_batch` draws record batches
over the matching schema, optionally including category codes never seen
at training time.  Used by ``tests/test_compiled.py``, the prediction
benchmark and the ``serve-bench`` CLI command.
"""

from __future__ import annotations

import numpy as np

from repro.core.splits import CategoricalSplit, LinearSplit, NumericSplit
from repro.core.tree import DecisionTree, Node
from repro.data.schema import Attribute, AttributeKind, Schema


def _make_schema(n_continuous: int, cardinalities: list[int], n_classes: int) -> Schema:
    attrs = [
        Attribute(f"c{i}", AttributeKind.CONTINUOUS) for i in range(n_continuous)
    ]
    attrs += [
        Attribute(
            f"d{i}",
            AttributeKind.CATEGORICAL,
            tuple(f"d{i}_v{j}" for j in range(card)),
        )
        for i, card in enumerate(cardinalities)
    ]
    labels = tuple(f"class{i}" for i in range(n_classes))
    return Schema(tuple(attrs), labels)


def random_tree(
    *,
    depth: int = 6,
    n_continuous: int = 4,
    n_categorical: int = 2,
    n_classes: int = 3,
    seed: int = 0,
    p_numeric: float = 0.5,
    p_categorical: float = 0.25,
    p_linear: float = 0.25,
    leaf_prob: float = 0.0,
    root_records: int = 10_000,
) -> DecisionTree:
    """A random tree mixing numeric, categorical and linear splits.

    ``depth`` bounds the tree; with ``leaf_prob == 0`` every branch
    reaches it (a full tree with ``2**depth`` leaves), otherwise each
    internal candidate independently stops early with that probability.
    Split-kind probabilities are renormalized over the kinds the schema
    supports (linear needs two continuous attributes, categorical needs
    a categorical one).  Class counts split binomially parent to child,
    so ``n_records`` is consistent down every path — which is what the
    unseen-category "heavier child" routing rule keys off.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    if n_continuous + n_categorical < 1:
        raise ValueError("need at least one attribute")
    rng = np.random.default_rng(seed)
    cards = [int(rng.integers(2, 7)) for _ in range(n_categorical)]
    schema = _make_schema(n_continuous, cards, n_classes)

    kinds: list[str] = []
    weights: list[float] = []
    if n_continuous >= 1 and p_numeric > 0:
        kinds.append("numeric")
        weights.append(p_numeric)
    if n_categorical >= 1 and p_categorical > 0:
        kinds.append("categorical")
        weights.append(p_categorical)
    if n_continuous >= 2 and p_linear > 0:
        kinds.append("linear")
        weights.append(p_linear)
    if not kinds:
        raise ValueError("no split kind is possible under these parameters")
    probs = np.asarray(weights, dtype=np.float64)
    probs /= probs.sum()

    counter = {"next": 0}

    def new_node(node_depth: int, counts: np.ndarray) -> Node:
        node = Node(counter["next"], node_depth, counts.astype(np.float64))
        counter["next"] += 1
        return node

    def make_split():
        kind = kinds[int(rng.choice(len(kinds), p=probs))]
        if kind == "numeric":
            attr = int(rng.integers(0, n_continuous))
            return NumericSplit(attr, float(rng.uniform(0.0, 1.0)))
        if kind == "categorical":
            j = int(rng.integers(0, n_categorical))
            card = cards[j]
            mask = rng.random(card) < 0.5
            if mask.all():
                mask[int(rng.integers(0, card))] = False
            if not mask.any():
                mask[int(rng.integers(0, card))] = True
            return CategoricalSplit(n_continuous + j, tuple(bool(b) for b in mask))
        ax, ay = rng.choice(n_continuous, size=2, replace=False)
        a = float(rng.uniform(0.25, 2.0)) * (1 if rng.random() < 0.5 else -1)
        b = float(rng.uniform(0.25, 2.0)) * (1 if rng.random() < 0.5 else -1)
        return LinearSplit(int(ax), int(ay), b=b, c=float(rng.uniform(-1.0, 1.0)), a=a)

    def grow(node: Node) -> None:
        if node.depth >= depth or (leaf_prob > 0 and rng.random() < leaf_prob):
            return
        node.split = make_split()
        frac = rng.uniform(0.2, 0.8)
        left_counts = rng.binomial(node.class_counts.astype(np.int64), frac)
        right_counts = node.class_counts.astype(np.int64) - left_counts
        node.left = new_node(node.depth + 1, np.asarray(left_counts))
        node.right = new_node(node.depth + 1, np.asarray(right_counts))
        grow(node.left)
        grow(node.right)

    root_counts = rng.multinomial(root_records, np.full(n_classes, 1.0 / n_classes))
    root = new_node(0, np.asarray(root_counts))
    grow(root)
    return DecisionTree(root, schema)


def random_batch(
    schema: Schema,
    n: int,
    seed: int = 0,
    unseen_frac: float = 0.0,
) -> np.ndarray:
    """Record batch over ``schema``: continuous in ``[-0.5, 1.5)``, codes in range.

    ``unseen_frac`` of each categorical column is replaced by codes one
    past the training vocabulary, exercising the heavier-child fallback.
    """
    rng = np.random.default_rng(seed)
    X = np.empty((n, schema.n_attributes), dtype=np.float64)
    for j, attr in enumerate(schema.attributes):
        if attr.is_continuous:
            X[:, j] = rng.uniform(-0.5, 1.5, size=n)
        else:
            X[:, j] = rng.integers(0, attr.cardinality, size=n).astype(np.float64)
            if unseen_frac > 0 and n:
                hit = rng.random(n) < unseen_frac
                X[hit, j] = float(attr.cardinality)
    return X


__all__ = ["random_tree", "random_batch"]
