"""K-fold cross-validation on top of the builder interface."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builder import TreeBuilder
from repro.data.dataset import Dataset
from repro.eval.metrics import accuracy


@dataclass(frozen=True)
class CrossValResult:
    """Per-fold accuracies plus aggregate statistics."""

    fold_accuracies: tuple[float, ...]

    @property
    def mean(self) -> float:
        """Mean held-out accuracy."""
        return float(np.mean(self.fold_accuracies))

    @property
    def std(self) -> float:
        """Standard deviation across folds."""
        return float(np.std(self.fold_accuracies))

    @property
    def n_folds(self) -> int:
        """Number of folds evaluated."""
        return len(self.fold_accuracies)


def kfold_indices(
    n: int, k: int, rng: np.random.Generator
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Shuffled (train, test) index pairs for k-fold cross-validation."""
    if k < 2:
        raise ValueError("need at least 2 folds")
    if n < k:
        raise ValueError("need at least one record per fold")
    perm = rng.permutation(n)
    folds = np.array_split(perm, k)
    out = []
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        out.append((train, test))
    return out


def cross_validate(
    builder_factory,
    dataset: Dataset,
    k: int = 5,
    seed: int = 0,
) -> CrossValResult:
    """K-fold cross-validation.

    ``builder_factory`` is called once per fold and must return a fresh
    :class:`~repro.core.builder.TreeBuilder` (e.g.
    ``lambda: CMPBuilder(config)``) so no state leaks between folds.
    """
    rng = np.random.default_rng(seed)
    accs: list[float] = []
    for train_idx, test_idx in kfold_indices(dataset.n_records, k, rng):
        builder = builder_factory()
        if not isinstance(builder, TreeBuilder):
            raise TypeError("builder_factory must return a TreeBuilder")
        result = builder.build(dataset.take(train_idx))
        accs.append(accuracy(result.tree, dataset.take(test_idx)))
    return CrossValResult(tuple(accs))
