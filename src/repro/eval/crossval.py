"""K-fold cross-validation on top of the builder interface."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builder import TreeBuilder
from repro.data.dataset import Dataset
from repro.eval.metrics import accuracy


@dataclass(frozen=True)
class CrossValResult:
    """Per-fold accuracies plus aggregate statistics."""

    fold_accuracies: tuple[float, ...]

    @property
    def mean(self) -> float:
        """Mean held-out accuracy."""
        return float(np.mean(self.fold_accuracies))

    @property
    def std(self) -> float:
        """Standard deviation across folds."""
        return float(np.std(self.fold_accuracies))

    @property
    def n_folds(self) -> int:
        """Number of folds evaluated."""
        return len(self.fold_accuracies)


def kfold_indices(
    n: int, k: int, rng: np.random.Generator
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Shuffled (train, test) index pairs for k-fold cross-validation."""
    if k < 2:
        raise ValueError("need at least 2 folds")
    if n < k:
        raise ValueError("need at least one record per fold")
    perm = rng.permutation(n)
    folds = np.array_split(perm, k)
    out = []
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        out.append((train, test))
    return out


def stratified_kfold_indices(
    y: np.ndarray, k: int, rng: np.random.Generator
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Shuffled (train, test) pairs with per-class proportional folds.

    Each class's records are shuffled and dealt across the ``k`` folds
    independently, so every fold's class mix tracks the full dataset's.
    A class rarer than ``k`` records simply appears in fewer folds —
    but never vanishes from *every* training split, which is the
    failure mode of unstratified folds (a rare class concentrated in
    one fold leaves the complementary training set without it, so the
    trained tree cannot predict it at all).
    """
    y = np.asarray(y)
    n = len(y)
    if k < 2:
        raise ValueError("need at least 2 folds")
    if n < k:
        raise ValueError("need at least one record per fold")
    fold_members: list[list[np.ndarray]] = [[] for _ in range(k)]
    # Classes iterated in sorted label order and a single rng stream keep
    # the assignment deterministic for a given (y, k, seed).
    for label in np.unique(y):
        members = rng.permutation(np.flatnonzero(y == label))
        # Rotate the starting fold per class so small classes don't all
        # pile into fold 0.
        start = int(rng.integers(0, k))
        for i, part in enumerate(np.array_split(members, k)):
            if len(part):
                fold_members[(start + i) % k].append(part)
    out = []
    for i in range(k):
        test = (
            np.sort(np.concatenate(fold_members[i]))
            if fold_members[i]
            else np.empty(0, dtype=np.intp)
        )
        mask = np.ones(n, dtype=bool)
        mask[test] = False
        out.append((np.flatnonzero(mask), test))
    return out


def cross_validate(
    builder_factory,
    dataset: Dataset,
    k: int = 5,
    seed: int = 0,
    stratify: bool = True,
) -> CrossValResult:
    """K-fold cross-validation.

    ``builder_factory`` is called once per fold and must return a fresh
    :class:`~repro.core.builder.TreeBuilder` (e.g.
    ``lambda: CMPBuilder(config)``) so no state leaks between folds.

    ``stratify`` (default on — these are classification datasets) deals
    each class across folds proportionally so rare classes cannot
    vanish from a training split; pass ``False`` for the historical
    unstratified shuffle-and-split folds.
    """
    rng = np.random.default_rng(seed)
    if stratify:
        splits = stratified_kfold_indices(dataset.y, k, rng)
    else:
        splits = kfold_indices(dataset.n_records, k, rng)
    accs: list[float] = []
    for train_idx, test_idx in splits:
        builder = builder_factory()
        if not isinstance(builder, TreeBuilder):
            raise TypeError("builder_factory must return a TreeBuilder")
        result = builder.build(dataset.take(train_idx))
        accs.append(accuracy(result.tree, dataset.take(test_idx)))
    return CrossValResult(tuple(accs))
