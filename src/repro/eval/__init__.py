"""Evaluation: metrics, harness, cross-validation and experiment drivers."""

from repro.eval.crossval import CrossValResult, cross_validate, kfold_indices
from repro.eval.harness import RunRecord, format_table, run_builder
from repro.eval.metrics import accuracy, confusion_matrix, error_rate, per_class_recall
from repro.eval.treegen import random_batch, random_tree

__all__ = [
    "CrossValResult",
    "cross_validate",
    "kfold_indices",
    "RunRecord",
    "format_table",
    "run_builder",
    "accuracy",
    "confusion_matrix",
    "error_rate",
    "per_class_recall",
    "random_batch",
    "random_tree",
]
