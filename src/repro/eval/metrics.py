"""Classification quality metrics."""

from __future__ import annotations

import numpy as np

from repro.core.tree import DecisionTree
from repro.data.dataset import Dataset


def accuracy(tree: DecisionTree, dataset: Dataset) -> float:
    """Fraction of records the tree classifies correctly."""
    if dataset.n_records == 0:
        raise ValueError("cannot score an empty dataset")
    return float((tree.predict(dataset.X) == dataset.y).mean())


def error_rate(tree: DecisionTree, dataset: Dataset) -> float:
    """Fraction of records the tree misclassifies."""
    return 1.0 - accuracy(tree, dataset)


def confusion_matrix(tree: DecisionTree, dataset: Dataset) -> np.ndarray:
    """``(c, c)`` matrix: rows are true classes, columns predictions."""
    pred = tree.predict(dataset.X)
    c = dataset.n_classes
    out = np.zeros((c, c), dtype=np.int64)
    np.add.at(out, (dataset.y, pred), 1)
    return out


def per_class_recall(tree: DecisionTree, dataset: Dataset) -> np.ndarray:
    """Recall per true class (0 where a class has no records)."""
    cm = confusion_matrix(tree, dataset)
    totals = cm.sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(totals > 0, np.diag(cm) / np.maximum(totals, 1), 0.0)
