"""Structured per-request access log for the serving front-end.

Aggregate :class:`~repro.io.metrics.ServingStats` counters say *how
many* requests were shed or timed out; they cannot say *which* request,
on *which* route, after waiting *how long*.  The access log closes that
gap: the serving engine emits exactly one :class:`AccessRecord` per
call it receives, and the micro-batcher one per *submitted* request
(distinguish with the ``source`` field — a flush of N queued requests
yields N ``batcher`` records plus one ``engine`` record for the
coalesced call), into a thread-safe :class:`AccessLog` that exports as
JSONL (one record per line, read back by :func:`load_access_log`).

The record schema is the per-request mirror of the robustness layer:

``outcome``
    ``ok`` (answered by the routed model), ``shed`` (admission control),
    ``deadline`` (budget expired before or during execution),
    ``breaker`` (circuit open, no degraded answer), ``fallback``
    (circuit open, answered by the fallback path), or ``error`` (any
    other failure — validation, unknown model, execution fault).
``route``
    ``stable`` / ``canary`` for endpoint traffic (the rollout split an
    aggregate counter cannot attribute per request), ``direct`` for raw
    fingerprint targets.
``queue_wait_s`` / ``batch_id``
    Micro-batcher provenance: how long the request sat in the queue and
    which flush executed it.  ``None`` for direct engine calls.
``trace_id``
    Span-id exemplar of the engine's ``request`` span when tracing is
    on — the join key from one logged request into the trace file.

When bound to a :class:`~repro.obs.metrics.MetricsRegistry`, every
record also feeds RED metrics per ``(endpoint, fingerprint)``:
``cmp_requests_total`` (rate, labelled by outcome),
``cmp_request_errors_total`` (every non-``ok`` outcome) and the
``cmp_request_latency_seconds`` histogram.

The log is observational only — recording never raises into the
serving path and never changes an answer.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass
from typing import IO, Iterator

from repro.obs.metrics import MetricsRegistry

#: Closed outcome vocabulary; see the module docstring.
OUTCOMES = ("ok", "shed", "deadline", "breaker", "fallback", "error")

#: Label length for fingerprints in RED metrics — long enough to be
#: unambiguous (the registry resolves >= 8-char prefixes), short enough
#: to keep exposition lines readable.
_FP_LABEL_CHARS = 12


@dataclass(frozen=True)
class AccessRecord:
    """One serving request, from submission to its final outcome."""

    #: Seconds since the epoch (``time.time``) at record emission.
    ts: float
    #: Emitting component: ``"engine"`` or ``"batcher"``.
    source: str
    #: What the caller addressed: endpoint name or raw fingerprint.
    endpoint: str
    #: Model that answered (or would have); ``None`` when resolution failed.
    fingerprint: str | None
    #: ``"stable"`` / ``"canary"`` / ``"direct"``; ``None`` pre-resolution.
    route: str | None
    #: Prediction method requested (``predict`` / ``predict_proba`` / ``apply``).
    method: str
    #: Rows in the request batch.
    rows: int
    #: One of :data:`OUTCOMES`.
    outcome: str
    #: Submission-to-outcome latency in seconds.
    latency_s: float
    #: Seconds queued in the micro-batcher (``None`` for direct calls).
    queue_wait_s: float | None = None
    #: Micro-batcher flush sequence number (``None`` for direct calls).
    batch_id: int | None = None
    #: Span id of the engine's ``request`` span (``None`` untraced).
    trace_id: int | None = None
    #: Exception class name for ``error`` outcomes.
    error: str | None = None
    #: Sticky routing key the caller supplied (``None`` for keyless
    #: requests) — lets hot-swap tests assert per-key version monotonicity
    #: straight from the log.
    route_key: str | None = None

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (one JSONL line)."""
        d = asdict(self)
        d["ts"] = round(self.ts, 6)
        d["latency_s"] = round(self.latency_s, 9)
        if self.queue_wait_s is not None:
            d["queue_wait_s"] = round(self.queue_wait_s, 9)
        return d

    @classmethod
    def from_dict(cls, obj: dict[str, object]) -> "AccessRecord":
        return cls(
            ts=float(obj["ts"]),  # type: ignore[arg-type]
            source=str(obj["source"]),
            endpoint=str(obj["endpoint"]),
            fingerprint=obj.get("fingerprint"),  # type: ignore[arg-type]
            route=obj.get("route"),  # type: ignore[arg-type]
            method=str(obj["method"]),
            rows=int(obj["rows"]),  # type: ignore[arg-type]
            outcome=str(obj["outcome"]),
            latency_s=float(obj["latency_s"]),  # type: ignore[arg-type]
            queue_wait_s=obj.get("queue_wait_s"),  # type: ignore[arg-type]
            batch_id=obj.get("batch_id"),  # type: ignore[arg-type]
            trace_id=obj.get("trace_id"),  # type: ignore[arg-type]
            error=obj.get("error"),  # type: ignore[arg-type]
            route_key=obj.get("route_key"),  # type: ignore[arg-type]
        )


class AccessLog:
    """Thread-safe accumulator of :class:`AccessRecord` entries.

    Optionally bound to a :class:`MetricsRegistry`, in which case every
    record also increments the RED families described in the module
    docstring.  ``capacity`` bounds memory for long-running engines:
    once exceeded, the oldest records are dropped (the RED metrics keep
    the full totals).
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        capacity: int | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.metrics = metrics
        self.capacity = capacity
        self._records: list[AccessRecord] = []
        self._dropped = 0
        self._lock = threading.Lock()

    def record(
        self,
        *,
        source: str,
        endpoint: str,
        fingerprint: str | None,
        route: str | None,
        method: str,
        rows: int,
        outcome: str,
        latency_s: float,
        queue_wait_s: float | None = None,
        batch_id: int | None = None,
        trace_id: int | None = None,
        error: str | None = None,
        route_key: str | None = None,
    ) -> AccessRecord:
        """Append one request record (and update bound RED metrics)."""
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}; expected {OUTCOMES}")
        rec = AccessRecord(
            ts=time.time(),
            source=source,
            endpoint=endpoint,
            fingerprint=fingerprint,
            route=route,
            method=method,
            rows=rows,
            outcome=outcome,
            latency_s=latency_s,
            queue_wait_s=queue_wait_s,
            batch_id=batch_id,
            trace_id=trace_id,
            error=error,
            route_key=route_key,
        )
        with self._lock:
            self._records.append(rec)
            if self.capacity is not None and len(self._records) > self.capacity:
                drop = len(self._records) - self.capacity
                del self._records[:drop]
                self._dropped += drop
        if self.metrics is not None:
            self._emit_red(rec)
        return rec

    def _emit_red(self, rec: AccessRecord) -> None:
        fp = (rec.fingerprint or "unresolved")[:_FP_LABEL_CHARS]
        base = {"endpoint": rec.endpoint, "fingerprint": fp}
        self.metrics.counter(
            "cmp_requests_total",
            "Serving requests by endpoint, fingerprint and outcome.",
            {**base, "outcome": rec.outcome},
        ).inc()
        if rec.outcome != "ok":
            self.metrics.counter(
                "cmp_request_errors_total",
                "Serving requests that did not get the routed model's answer.",
                base,
            ).inc()
        self.metrics.histogram(
            "cmp_request_latency_seconds",
            "Per-request serving latency (submission to outcome).",
            base,
        ).observe(rec.latency_s)

    # -- reading -------------------------------------------------------------

    def records(self) -> list[AccessRecord]:
        """Snapshot of retained records, in emission order."""
        with self._lock:
            return list(self._records)

    @property
    def dropped(self) -> int:
        """Records evicted by the capacity bound (0 when unbounded)."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def outcome_counts(self) -> dict[str, int]:
        """Retained records per outcome (zero-filled over the vocabulary)."""
        counts = {outcome: 0 for outcome in OUTCOMES}
        for rec in self.records():
            counts[rec.outcome] += 1
        return counts

    # -- export --------------------------------------------------------------

    def write_jsonl(self, path_or_file: "str | IO[str]") -> int:
        """Write one JSON object per record; returns the record count."""
        records = self.records()
        if hasattr(path_or_file, "write"):
            for rec in records:
                path_or_file.write(json.dumps(rec.to_dict()) + "\n")  # type: ignore[union-attr]
        else:
            with open(path_or_file, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
                for rec in records:
                    fh.write(json.dumps(rec.to_dict()) + "\n")
        return len(records)


def load_access_log(path_or_file: "str | IO[str]") -> list[AccessRecord]:
    """Read records back from a :meth:`AccessLog.write_jsonl` file.

    Malformed lines raise ``ValueError`` naming the line number — same
    loud-failure contract as :func:`repro.obs.trace.load_trace_jsonl`.
    """

    def _parse(lines: Iterator[str]) -> list[AccessRecord]:
        records: list[AccessRecord] = []
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(AccessRecord.from_dict(json.loads(line)))
            except (KeyError, TypeError, json.JSONDecodeError) as exc:
                raise ValueError(f"bad access-log line {lineno}: {exc}") from exc
        return records

    if hasattr(path_or_file, "read"):
        return _parse(iter(path_or_file))  # type: ignore[arg-type]
    with open(path_or_file, "r", encoding="utf-8") as fh:  # type: ignore[arg-type]
        return _parse(iter(fh))


__all__ = ["AccessRecord", "AccessLog", "load_access_log", "OUTCOMES"]
