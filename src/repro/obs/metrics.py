"""Counters, gauges and log-bucketed histograms with a Prometheus-shaped registry.

The repository already had two kinds of numeric telemetry — cumulative
counters (:class:`repro.io.metrics.IOStats`) and min/max extrema
(``ServingStats``) — but nothing in between: no latency distribution, no
quantiles, nothing a scrape endpoint could expose.  This module supplies
the missing primitives:

* :class:`Counter` / :class:`Gauge` — thread-safe scalars.
* :class:`Histogram` — cumulative-style bucket counts over **log-spaced**
  upper bounds, with quantile estimation by within-bucket linear
  interpolation and an exact ``merge_from`` reducer, the same
  merge-deltas idiom the parallel scan engine uses for class histograms
  (worker-private copies merged deterministically).
* :class:`MetricsRegistry` — get-or-create keyed by ``(name, labels)``,
  the collection surface :mod:`repro.obs.export` renders as Prometheus
  text exposition or JSON.

Everything here is pure stdlib and importable on its own: the adapters
that project ``BuildStats``/``ServingStats`` into a registry live in
:mod:`repro.obs.export` so this module never imports :mod:`repro.io`.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping

#: Canonical label ordering: sorted (key, value) pairs.
LabelSet = "tuple[tuple[str, str], ...]"


def _labelset(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def log_buckets(lo: float, hi: float, factor: float = 2.0) -> tuple[float, ...]:
    """Geometric bucket upper bounds from ``lo`` until ``hi`` is covered.

    ``log_buckets(1e-4, 1.0)`` → 1e-4, 2e-4, 4e-4, … , first bound >= 1.0.
    The implicit ``+Inf`` bucket is added by :class:`Histogram` itself.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if factor <= 1.0:
        raise ValueError("factor must be > 1")
    bounds = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * factor)
    return tuple(bounds)


#: Default latency buckets: 100 µs … ~105 s in ×2 steps (21 bounds).
LATENCY_BUCKETS_S = log_buckets(1e-4, 100.0)


class Counter:
    """Monotonically increasing scalar."""

    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters never go down)."""
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Scalar that can move both ways (peak memory, live models, …)."""

    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Bucketed distribution with quantile estimation and exact merging.

    ``bounds`` are finite, strictly increasing bucket *upper* bounds; an
    ``+Inf`` overflow bucket is implicit.  An observation lands in the
    first bucket whose bound is >= the value (Prometheus ``le``
    semantics).  Per-bucket counts plus ``sum``/``count`` are exactly
    mergeable, so worker threads can observe into private histograms and
    fold them together afterwards — order-independent, no locks on the
    hot path.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str = "",
        labels: tuple[tuple[str, str], ...] = (),
        bounds: Iterable[float] = LATENCY_BUCKETS_S,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ValueError("histogram needs at least one finite bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        if not all(math.isfinite(b) for b in self.bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        # counts[i] observations in (bounds[i-1], bounds[i]]; last is +Inf.
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (binary search over the bounds)."""
        value = float(value)
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self._sum += value

    def merge_from(self, other: "Histogram") -> None:
        """Fold ``other`` in; bucket layouts must match exactly."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        with other._lock:
            counts = list(other._counts)
            total = other._sum
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._sum += total

    # -- reading -------------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> list[int]:
        """Per-bucket counts (last entry is the +Inf overflow bucket)."""
        with self._lock:
            return list(self._counts)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs incl. +Inf."""
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.bounds, counts):
            running += c
            out.append((bound, running))
        out.append((math.inf, running + counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by within-bucket linear interpolation.

        Matches ``histogram_quantile`` semantics: the first bucket
        interpolates from 0, and a quantile landing in the overflow
        bucket returns the largest finite bound (the histogram cannot
        resolve beyond it).  Returns ``nan`` for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            counts = list(self._counts)
        total = sum(counts)
        if total == 0:
            return math.nan
        rank = q * total
        running = 0.0
        for i, c in enumerate(counts):
            if c == 0:
                continue
            if running + c >= rank:
                if i >= len(self.bounds):  # overflow bucket
                    return self.bounds[-1]
                lo = 0.0 if i == 0 else self.bounds[i - 1]
                hi = self.bounds[i]
                frac = (rank - running) / c
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            running += c
        return self.bounds[-1]

    def percentiles(self, *ps: float) -> dict[str, float]:
        """Shorthand: ``percentiles(50, 90, 99)`` → ``{"p50": …, …}``."""
        return {f"p{g:g}": self.quantile(g / 100.0) for g in ps}


Metric = "Counter | Gauge | Histogram"


class MetricsRegistry:
    """Get-or-create store of metrics keyed by ``(name, labels)``.

    A *family* is every metric sharing one name; all members must have
    the same kind (and, for histograms, the same bucket bounds), which
    is what makes the Prometheus exposition well-formed.  ``help_text``
    is per-family, taken from the first registration.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._lock = threading.Lock()

    def _get_or_create(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Mapping[str, str] | None,
        factory,
    ):
        if not name or not name[0].isalpha():
            raise ValueError(f"invalid metric name {name!r}")
        key = (name, _labelset(labels))
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is not None and existing_kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing_kind}"
                )
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory(name, key[1])
                self._metrics[key] = metric
                self._kinds[name] = kind
                if help_text or name not in self._help:
                    self._help.setdefault(name, help_text)
            return metric

    def counter(
        self, name: str, help_text: str = "", labels: Mapping[str, str] | None = None
    ) -> Counter:
        return self._get_or_create(name, "counter", help_text, labels, Counter)

    def gauge(
        self, name: str, help_text: str = "", labels: Mapping[str, str] | None = None
    ) -> Gauge:
        return self._get_or_create(name, "gauge", help_text, labels, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Mapping[str, str] | None = None,
        bounds: Iterable[float] = LATENCY_BUCKETS_S,
    ) -> Histogram:
        bounds = tuple(bounds)
        hist = self._get_or_create(
            name,
            "histogram",
            help_text,
            labels,
            lambda n, ls: Histogram(n, ls, bounds),
        )
        if hist.bounds != bounds:
            raise ValueError(f"histogram {name!r} already has different buckets")
        return hist

    # -- collection ----------------------------------------------------------

    def collect(self) -> list[tuple[str, str, str, list[object]]]:
        """``(name, kind, help, [metrics])`` per family, registration order."""
        with self._lock:
            families: dict[str, list[object]] = {}
            for (name, __), metric in self._metrics.items():
                families.setdefault(name, []).append(metric)
            return [
                (name, self._kinds[name], self._help.get(name, ""), members)
                for name, members in families.items()
            ]

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot (the ``--metrics foo.json`` surface)."""
        out: dict[str, object] = {}
        for name, kind, help_text, members in self.collect():
            entries = []
            for m in members:
                entry: dict[str, object] = {"labels": dict(m.labels)}
                if kind == "histogram":
                    entry["count"] = m.count
                    entry["sum"] = m.sum
                    entry["buckets"] = [
                        {"le": le if math.isfinite(le) else "+Inf", "count": c}
                        for le, c in m.cumulative_buckets()
                    ]
                    entry.update(m.percentiles(50, 90, 99))
                else:
                    entry["value"] = m.value
                entries.append(entry)
            out[name] = {"type": kind, "help": help_text, "values": entries}
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
    "LATENCY_BUCKETS_S",
]
