"""Summarize exported traces: slowest spans, phase rollups, scan cross-checks.

This is the analysis half of the ``cmp-repro inspect-trace`` subcommand.
It consumes the span list written by :meth:`repro.obs.trace.Tracer.write_jsonl`
(or loaded back via :func:`repro.obs.trace.load_trace_jsonl`) and
produces plain data a CLI can print (text or, via
:meth:`TraceSummary.to_dict`, JSON for scripted consumers):

* **per-phase rollup** — total duration and span count per ``phase:*``
  span name;
* **slowest spans** — the top-N spans by duration, excluding the
  all-enclosing ``build`` roots;
* **scan cross-check** — for every ``build`` root span, the number of
  ``scan`` spans beneath it (grouped per tree level) compared against
  the ``scans`` attribute the builder stamped on the root from
  ``IOStats.scans``.  Agreement is the structural invariant the paper's
  accounting rests on: every sequential pass, and only those, traces
  exactly one ``scan`` span;
* **worker-batch cross-check** — for every parallel ``scan`` span, the
  ``chunk_batch`` children (shipped home by forked workers, or recorded
  in place by thread workers) must number exactly the span's declared
  ``workers`` and their ``chunks`` attrs must sum to the span's
  declared ``chunks`` — a dropped or double-grafted worker subtree is
  a mismatch.  Batches are also tallied per worker pid, which is how a
  process-backend trace proves the spans really came from the children.

A mismatch on either check flips :attr:`TraceSummary.consistent`, which
is the CLI's exit code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.trace import Span


@dataclass
class BuildCheck:
    """Scan accounting for one ``build`` root span."""

    builder: str
    span: Span
    recorded_scans: int | None
    counted_scans: int
    #: scan-span count per level; key -1 collects pre-level scans
    #: (quantiling pass, root histogram pass) and overflow rescans that
    #: fire outside a ``level`` span.
    scans_per_level: dict[int, int] = field(default_factory=dict)
    #: ``chunk_batch`` spans under this build, per worker pid (spans
    #: recorded before the pid attr existed land under ``"?"``).
    worker_batches_per_pid: dict[str, int] = field(default_factory=dict)
    #: Human-readable descriptions of scan spans whose declared
    #: ``workers``/``chunks`` disagree with their ``chunk_batch``
    #: children.
    batch_mismatches: list[str] = field(default_factory=list)

    @property
    def matches(self) -> bool:
        """True when scan counts and worker batches both check out."""
        scans_ok = (
            self.recorded_scans is None
            or self.recorded_scans == self.counted_scans
        )
        return scans_ok and not self.batch_mismatches

    def to_dict(self) -> dict[str, object]:
        return {
            "builder": self.builder,
            "recorded_scans": self.recorded_scans,
            "counted_scans": self.counted_scans,
            "scans_per_level": {
                str(level): count
                for level, count in sorted(self.scans_per_level.items())
            },
            "worker_batches_per_pid": dict(
                sorted(self.worker_batches_per_pid.items())
            ),
            "batch_mismatches": list(self.batch_mismatches),
            "matches": self.matches,
        }


@dataclass
class TraceSummary:
    """Everything ``inspect-trace`` prints."""

    n_spans: int
    wall_s: float
    phase_rollup: dict[str, tuple[float, int]]
    slowest: list[Span]
    builds: list[BuildCheck]

    @property
    def consistent(self) -> bool:
        """True when every build's cross-checks agree."""
        return all(b.matches for b in self.builds)

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form for ``inspect-trace --format json``."""
        return {
            "n_spans": self.n_spans,
            "wall_s": round(self.wall_s, 9),
            "consistent": self.consistent,
            "phases": {
                name: {"seconds": round(total, 9), "spans": count}
                for name, (total, count) in sorted(self.phase_rollup.items())
            },
            "slowest": [sp.to_dict() for sp in self.slowest],
            "builds": [b.to_dict() for b in self.builds],
        }


def _check_scan_batches(
    scan: Span, batch_children: list[Span]
) -> list[str]:
    """Worker-batch mismatches for one parallel ``scan`` span."""
    issues: list[str] = []
    declared_workers = scan.attrs.get("workers")
    if declared_workers is not None and int(declared_workers) != len(
        batch_children
    ):
        issues.append(
            f"scan span {scan.span_id}: {len(batch_children)} chunk_batch "
            f"span(s) for {declared_workers} declared worker(s)"
        )
    declared_chunks = scan.attrs.get("chunks")
    if declared_chunks is not None:
        batch_chunks = [b.attrs.get("chunks") for b in batch_children]
        if all(c is not None for c in batch_chunks):
            total = sum(int(c) for c in batch_chunks)
            if total != int(declared_chunks):
                issues.append(
                    f"scan span {scan.span_id}: worker batches cover "
                    f"{total} chunk(s), scan declared {declared_chunks}"
                )
    return issues


def summarize_trace(spans: list[Span], top: int = 10) -> TraceSummary:
    """Analyze a span list (see module docstring for the pieces)."""
    by_id = {sp.span_id: sp for sp in spans}

    def ancestors(sp: Span):
        seen = set()
        cur = sp
        while cur.parent_id is not None and cur.parent_id in by_id:
            if cur.parent_id in seen:  # defensive: corrupt parent loop
                break
            seen.add(cur.parent_id)
            cur = by_id[cur.parent_id]
            yield cur

    phase_rollup: dict[str, tuple[float, int]] = {}
    for sp in spans:
        if sp.name.startswith("phase:"):
            total, count = phase_rollup.get(sp.name, (0.0, 0))
            phase_rollup[sp.name] = (total + sp.duration_s, count + 1)

    builds: dict[int, BuildCheck] = {}
    for sp in spans:
        if sp.name == "build":
            recorded = sp.attrs.get("scans")
            builds[sp.span_id] = BuildCheck(
                builder=str(sp.attrs.get("builder", "?")),
                span=sp,
                recorded_scans=int(recorded) if recorded is not None else None,
                counted_scans=0,
            )

    def enclosing_build(sp: Span) -> "BuildCheck | None":
        for anc in ancestors(sp):
            if anc.span_id in builds:
                return builds[anc.span_id]
        return None

    batches_by_scan: dict[int, list[Span]] = {}
    for sp in spans:
        if sp.name == "chunk_batch":
            if sp.parent_id is not None:
                batches_by_scan.setdefault(sp.parent_id, []).append(sp)
            build = enclosing_build(sp)
            if build is not None:
                pid = str(sp.attrs.get("pid", "?"))
                build.worker_batches_per_pid[pid] = (
                    build.worker_batches_per_pid.get(pid, 0) + 1
                )

    for sp in spans:
        if sp.name != "scan":
            continue
        level = -1
        build: BuildCheck | None = None
        for anc in ancestors(sp):
            if anc.name == "level" and level == -1 and "level" in anc.attrs:
                level = int(anc.attrs["level"])
            if anc.span_id in builds:
                build = builds[anc.span_id]
                break
        if build is not None:
            build.counted_scans += 1
            build.scans_per_level[level] = build.scans_per_level.get(level, 0) + 1
            if sp.attrs.get("parallel"):
                build.batch_mismatches.extend(
                    _check_scan_batches(sp, batches_by_scan.get(sp.span_id, []))
                )

    candidates = [sp for sp in spans if sp.name != "build"] or list(spans)
    slowest = sorted(candidates, key=lambda s: s.duration_s, reverse=True)[:top]

    if spans:
        start = min(sp.start_s for sp in spans)
        end = max(sp.start_s + sp.duration_s for sp in spans)
        wall = end - start
    else:
        wall = 0.0
    return TraceSummary(
        n_spans=len(spans),
        wall_s=wall,
        phase_rollup=phase_rollup,
        slowest=slowest,
        builds=list(builds.values()),
    )


def format_summary(summary: TraceSummary) -> str:
    """Human-readable rendering of a :class:`TraceSummary`."""
    lines = [f"{summary.n_spans} spans over {summary.wall_s * 1000.0:.1f} ms"]
    if summary.phase_rollup:
        lines.append("")
        lines.append("Per-phase rollup:")
        for name, (total, count) in sorted(
            summary.phase_rollup.items(), key=lambda kv: -kv[1][0]
        ):
            lines.append(f"  {name:<20} {total * 1000.0:>10.2f} ms  ({count} spans)")
    if summary.slowest:
        lines.append("")
        lines.append("Slowest spans:")
        for sp in summary.slowest:
            attrs = " ".join(f"{k}={v}" for k, v in sp.attrs.items())
            lines.append(
                f"  {sp.name:<20} {sp.duration_s * 1000.0:>10.2f} ms"
                + (f"  [{attrs}]" if attrs else "")
            )
    for b in summary.builds:
        lines.append("")
        lines.append(f"Build {b.builder}: {b.counted_scans} scan spans")
        for level in sorted(b.scans_per_level):
            label = "prelude" if level == -1 else f"level {level}"
            lines.append(f"  {label:<10} {b.scans_per_level[level]} scans")
        if b.worker_batches_per_pid:
            per_pid = "  ".join(
                f"pid {pid}: {count}"
                for pid, count in sorted(b.worker_batches_per_pid.items())
            )
            lines.append(f"  worker batches  {per_pid}")
        if b.recorded_scans is None:
            lines.append("  cross-check: build span carries no scans attribute")
        elif b.recorded_scans == b.counted_scans:
            lines.append(f"  cross-check: OK (IOStats.scans == {b.recorded_scans})")
        else:
            lines.append(
                f"  cross-check: MISMATCH (trace {b.counted_scans} != "
                f"IOStats.scans {b.recorded_scans})"
            )
        for issue in b.batch_mismatches:
            lines.append(f"  worker cross-check: MISMATCH ({issue})")
        if not b.batch_mismatches and b.worker_batches_per_pid:
            lines.append(
                "  worker cross-check: OK "
                f"({sum(b.worker_batches_per_pid.values())} chunk_batch spans)"
            )
    return "\n".join(lines)


__all__ = ["BuildCheck", "TraceSummary", "summarize_trace", "format_summary"]
