"""Summarize exported traces: slowest spans, phase rollups, scan cross-checks.

This is the analysis half of the ``cmp-repro inspect-trace`` subcommand.
It consumes the span list written by :meth:`repro.obs.trace.Tracer.write_jsonl`
(or loaded back via :func:`repro.obs.trace.load_trace_jsonl`) and
produces plain data a CLI can print:

* **per-phase rollup** — total duration and span count per ``phase:*``
  span name;
* **slowest spans** — the top-N spans by duration, excluding the
  all-enclosing ``build`` roots;
* **scan cross-check** — for every ``build`` root span, the number of
  ``scan`` spans beneath it (grouped per tree level) compared against
  the ``scans`` attribute the builder stamped on the root from
  ``IOStats.scans``.  Agreement is the structural invariant the paper's
  accounting rests on: every sequential pass, and only those, traces
  exactly one ``scan`` span.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.trace import Span


@dataclass
class BuildCheck:
    """Scan accounting for one ``build`` root span."""

    builder: str
    span: Span
    recorded_scans: int | None
    counted_scans: int
    #: scan-span count per level; key -1 collects pre-level scans
    #: (quantiling pass, root histogram pass) and overflow rescans that
    #: fire outside a ``level`` span.
    scans_per_level: dict[int, int] = field(default_factory=dict)

    @property
    def matches(self) -> bool:
        """True when the trace and ``IOStats.scans`` agree (or no attr)."""
        return self.recorded_scans is None or self.recorded_scans == self.counted_scans


@dataclass
class TraceSummary:
    """Everything ``inspect-trace`` prints."""

    n_spans: int
    wall_s: float
    phase_rollup: dict[str, tuple[float, int]]
    slowest: list[Span]
    builds: list[BuildCheck]

    @property
    def consistent(self) -> bool:
        """True when every build's scan cross-check agrees."""
        return all(b.matches for b in self.builds)


def summarize_trace(spans: list[Span], top: int = 10) -> TraceSummary:
    """Analyze a span list (see module docstring for the pieces)."""
    by_id = {sp.span_id: sp for sp in spans}

    def ancestors(sp: Span):
        seen = set()
        cur = sp
        while cur.parent_id is not None and cur.parent_id in by_id:
            if cur.parent_id in seen:  # defensive: corrupt parent loop
                break
            seen.add(cur.parent_id)
            cur = by_id[cur.parent_id]
            yield cur

    phase_rollup: dict[str, tuple[float, int]] = {}
    for sp in spans:
        if sp.name.startswith("phase:"):
            total, count = phase_rollup.get(sp.name, (0.0, 0))
            phase_rollup[sp.name] = (total + sp.duration_s, count + 1)

    builds: dict[int, BuildCheck] = {}
    for sp in spans:
        if sp.name == "build":
            recorded = sp.attrs.get("scans")
            builds[sp.span_id] = BuildCheck(
                builder=str(sp.attrs.get("builder", "?")),
                span=sp,
                recorded_scans=int(recorded) if recorded is not None else None,
                counted_scans=0,
            )
    for sp in spans:
        if sp.name != "scan":
            continue
        level = -1
        build: BuildCheck | None = None
        for anc in ancestors(sp):
            if anc.name == "level" and level == -1 and "level" in anc.attrs:
                level = int(anc.attrs["level"])
            if anc.span_id in builds:
                build = builds[anc.span_id]
                break
        if build is not None:
            build.counted_scans += 1
            build.scans_per_level[level] = build.scans_per_level.get(level, 0) + 1

    candidates = [sp for sp in spans if sp.name != "build"] or list(spans)
    slowest = sorted(candidates, key=lambda s: s.duration_s, reverse=True)[:top]

    if spans:
        start = min(sp.start_s for sp in spans)
        end = max(sp.start_s + sp.duration_s for sp in spans)
        wall = end - start
    else:
        wall = 0.0
    return TraceSummary(
        n_spans=len(spans),
        wall_s=wall,
        phase_rollup=phase_rollup,
        slowest=slowest,
        builds=list(builds.values()),
    )


def format_summary(summary: TraceSummary) -> str:
    """Human-readable rendering of a :class:`TraceSummary`."""
    lines = [f"{summary.n_spans} spans over {summary.wall_s * 1000.0:.1f} ms"]
    if summary.phase_rollup:
        lines.append("")
        lines.append("Per-phase rollup:")
        for name, (total, count) in sorted(
            summary.phase_rollup.items(), key=lambda kv: -kv[1][0]
        ):
            lines.append(f"  {name:<20} {total * 1000.0:>10.2f} ms  ({count} spans)")
    if summary.slowest:
        lines.append("")
        lines.append("Slowest spans:")
        for sp in summary.slowest:
            attrs = " ".join(f"{k}={v}" for k, v in sp.attrs.items())
            lines.append(
                f"  {sp.name:<20} {sp.duration_s * 1000.0:>10.2f} ms"
                + (f"  [{attrs}]" if attrs else "")
            )
    for b in summary.builds:
        lines.append("")
        lines.append(f"Build {b.builder}: {b.counted_scans} scan spans")
        for level in sorted(b.scans_per_level):
            label = "prelude" if level == -1 else f"level {level}"
            lines.append(f"  {label:<10} {b.scans_per_level[level]} scans")
        if b.recorded_scans is None:
            lines.append("  cross-check: build span carries no scans attribute")
        elif b.matches:
            lines.append(f"  cross-check: OK (IOStats.scans == {b.recorded_scans})")
        else:
            lines.append(
                f"  cross-check: MISMATCH (trace {b.counted_scans} != "
                f"IOStats.scans {b.recorded_scans})"
            )
    return "\n".join(lines)


__all__ = ["BuildCheck", "TraceSummary", "summarize_trace", "format_summary"]
