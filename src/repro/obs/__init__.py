"""Observability: span tracing, metrics with histograms, export surfaces.

* :mod:`repro.obs.trace` — parent-linked spans, JSONL export, text trees.
* :mod:`repro.obs.metrics` — counters, gauges, log-bucketed histograms
  (mergeable, with interpolated quantiles) behind a
  :class:`MetricsRegistry`.
* :mod:`repro.obs.export` — Prometheus text exposition, JSON snapshots,
  and adapters projecting the existing ``BuildStats``/``IOStats``/
  ``ServingStats`` blocks into a registry.
* :mod:`repro.obs.inspect` — trace summaries and the scan-count
  cross-check behind ``cmp-repro inspect-trace``.

Tracing is strictly observational: a traced build or serve produces
bit-identical trees and predictions, at low single-digit-percent
overhead (``benchmarks/bench_obs_overhead.py`` enforces the bound).
"""

from repro.obs.export import (
    record_admission,
    record_breaker,
    record_build_stats,
    record_io_stats,
    record_serving_stats,
    to_prometheus,
    write_metrics,
)
from repro.obs.inspect import TraceSummary, format_summary, summarize_trace
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    load_trace_jsonl,
    render_tree,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "load_trace_jsonl",
    "render_tree",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
    "LATENCY_BUCKETS_S",
    "to_prometheus",
    "write_metrics",
    "record_io_stats",
    "record_build_stats",
    "record_serving_stats",
    "record_breaker",
    "record_admission",
    "TraceSummary",
    "summarize_trace",
    "format_summary",
]
