"""Observability: tracing, metrics, access logs, SLOs, bench history.

* :mod:`repro.obs.trace` — parent-linked spans, JSONL export, text
  trees, and cross-process continuity (:class:`TraceContext` +
  :meth:`Tracer.graft` splice forked scan workers' spans under the
  parent scan span).
* :mod:`repro.obs.metrics` — counters, gauges, log-bucketed histograms
  (mergeable, with interpolated quantiles) behind a
  :class:`MetricsRegistry`.
* :mod:`repro.obs.export` — Prometheus text exposition, JSON snapshots,
  and adapters projecting the existing ``BuildStats``/``IOStats``/
  ``ServingStats`` blocks into a registry.
* :mod:`repro.obs.access` — structured per-request serving access log
  (JSONL) with RED metrics per ``(endpoint, fingerprint)``.
* :mod:`repro.obs.slo` — declarative availability/latency objectives
  with multi-window burn-rate alerting over cumulative samples.
* :mod:`repro.obs.benchhist` — append-only bench-result trajectory and
  the rolling-baseline regression gate behind ``cmp-repro
  bench-history``.
* :mod:`repro.obs.inspect` — trace summaries and the scan-count /
  per-pid worker-span cross-checks behind ``cmp-repro inspect-trace``.

Tracing is strictly observational: a traced build or serve produces
bit-identical trees and predictions, at low single-digit-percent
overhead (``benchmarks/bench_obs_overhead.py`` enforces the bound on
both scan backends).
"""

from repro.obs.access import OUTCOMES, AccessLog, AccessRecord, load_access_log
from repro.obs.benchhist import (
    Regression,
    append_run,
    check_regressions,
    flatten_metrics,
    load_history,
    metric_direction,
    new_history,
    save_history,
    summarize_history,
)
from repro.obs.export import (
    record_admission,
    record_breaker,
    record_build_stats,
    record_io_stats,
    record_serving_stats,
    to_prometheus,
    write_metrics,
)
from repro.obs.inspect import TraceSummary, format_summary, summarize_trace
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    BurnAlert,
    BurnRateWindow,
    SLODefinition,
    SLOMonitor,
    availability_counts,
    latency_counts,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    load_trace_jsonl,
    render_tree,
    span_from_dict,
)

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "span_from_dict",
    "load_trace_jsonl",
    "render_tree",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
    "LATENCY_BUCKETS_S",
    "to_prometheus",
    "write_metrics",
    "record_io_stats",
    "record_build_stats",
    "record_serving_stats",
    "record_breaker",
    "record_admission",
    "AccessLog",
    "AccessRecord",
    "load_access_log",
    "OUTCOMES",
    "SLODefinition",
    "SLOMonitor",
    "BurnRateWindow",
    "BurnAlert",
    "DEFAULT_WINDOWS",
    "availability_counts",
    "latency_counts",
    "Regression",
    "append_run",
    "check_regressions",
    "flatten_metrics",
    "load_history",
    "metric_direction",
    "new_history",
    "save_history",
    "summarize_history",
    "TraceSummary",
    "summarize_trace",
    "format_summary",
]
