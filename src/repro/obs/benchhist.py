"""Bench-history trajectory: append-only run log + regression gate.

CI uploads one ``BENCH_*.json`` per benchmark job, but each artifact
only describes *one* run — the performance trajectory across commits
was invisible and unguarded.  This module folds any number of bench
artifacts into a single append-only history file and flags regressions
against a rolling, noise-tolerant baseline:

* :func:`append_run` flattens every numeric leaf of each artifact into
  dotted-path metrics (``builders.CMP-S.on_wall_seconds``) and appends
  one run entry ``{run_id, timestamp, benchmarks}``;
* :func:`check_regressions` compares the latest run's metrics against
  the **median of the previous ``window`` runs** — the median absorbs
  one-off CI noise spikes a mean would chase — and flags any gated
  metric that moved more than ``tolerance`` (relative) in its *bad*
  direction.  A metric is gated only when its direction is inferable
  from its name (:func:`metric_direction`): wall-clock/latency/overhead
  metrics must not rise, throughput/accuracy metrics must not fall, and
  anything directionless (record counts, config echoes, booleans-as-0/1
  excluded outright) is tracked but never gated;
* nothing is gated before ``min_runs`` prior observations exist, so a
  freshly added benchmark gets a settling-in period instead of
  self-comparing noise.

``cmp-repro bench-history`` is the CLI surface: ``--append`` folds
artifacts in, ``--check`` exits nonzero on any regression (the CI
gate), and the bare command prints the trajectory summary.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from statistics import median
from typing import Iterable, Mapping

#: History schema version (bump on incompatible layout changes).
HISTORY_VERSION = 1

#: Name-pattern ladder for direction inference.  First match wins;
#: substrings are matched against the lower-cased dotted metric path.
_LOWER_IS_BETTER = (
    "seconds",
    "latency",
    "overhead",
    "_ms",
    "p50",
    "p90",
    "p99",
    "wall",
    "bytes",
)
_HIGHER_IS_BETTER = (
    "per_s",
    "per_sec",
    "throughput",
    "speedup",
    "accuracy",
    "compliance",
)


def metric_direction(path: str) -> str | None:
    """``"lower"`` / ``"higher"`` is better, or ``None`` (ungated).

    Inference is by name because the artifacts are heterogeneous; a
    metric whose polarity the patterns cannot determine is recorded in
    the history but never gated — silence, not a guess.
    """
    lowered = path.lower()
    for pattern in _LOWER_IS_BETTER:
        if pattern in lowered:
            return "lower"
    for pattern in _HIGHER_IS_BETTER:
        if pattern in lowered:
            return "higher"
    return None


def flatten_metrics(
    obj: object, prefix: str = ""
) -> dict[str, float]:
    """Numeric leaves of a bench artifact as dotted-path metrics.

    Booleans are excluded (``bit_identical: true`` is a correctness
    assertion, not a measurement); non-finite values are excluded
    (a NaN baseline would poison every later comparison).
    """
    out: dict[str, float] = {}
    if isinstance(obj, Mapping):
        for key, value in obj.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_metrics(value, path))
    elif isinstance(obj, (list, tuple)):
        for i, value in enumerate(obj):
            path = f"{prefix}.{i}" if prefix else str(i)
            out.update(flatten_metrics(value, path))
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)):
        value = float(obj)
        if value == value and abs(value) != float("inf"):
            out[prefix] = value
    return out


def _benchmark_name(source_path: str, payload: Mapping[str, object]) -> str:
    """The artifact's self-declared benchmark name, else its file stem."""
    name = payload.get("benchmark")
    if isinstance(name, str) and name:
        return name
    stem = os.path.basename(source_path)
    return stem[:-5] if stem.endswith(".json") else stem


def new_history() -> dict[str, object]:
    """An empty trajectory."""
    return {"version": HISTORY_VERSION, "runs": []}


def load_history(path: str) -> dict[str, object]:
    """Read a history file; a missing file is an empty trajectory."""
    if not os.path.exists(path):
        return new_history()
    with open(path, "r", encoding="utf-8") as fh:
        history = json.load(fh)
    version = history.get("version")
    if version != HISTORY_VERSION:
        raise ValueError(
            f"history {path!r} has version {version!r}; "
            f"this build reads version {HISTORY_VERSION}"
        )
    if not isinstance(history.get("runs"), list):
        raise ValueError(f"history {path!r} has no runs list")
    return history


def save_history(path: str, history: Mapping[str, object]) -> None:
    """Atomic-rename write, same idiom as the table format."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(history, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def append_run(
    history: dict[str, object],
    artifact_paths: Iterable[str],
    run_id: str | None = None,
    timestamp: float | None = None,
    max_runs: int = 200,
) -> dict[str, object]:
    """Fold bench artifacts into one new run entry; returns the entry.

    Artifacts that are not JSON objects raise — a truncated upload
    should fail the append, not silently record an empty run.  The
    history is truncated to the newest ``max_runs`` runs so the file
    stays boundedly small no matter how long the trajectory grows.
    """
    benchmarks: dict[str, object] = {}
    for path in artifact_paths:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if not isinstance(payload, Mapping):
            raise ValueError(f"bench artifact {path!r} is not a JSON object")
        name = _benchmark_name(path, payload)
        benchmarks[name] = {
            "source": os.path.basename(path),
            "metrics": flatten_metrics(payload),
        }
    if not benchmarks:
        raise ValueError("no bench artifacts to append")
    runs = history["runs"]
    assert isinstance(runs, list)
    entry = {
        "run_id": run_id if run_id else f"run-{len(runs) + 1}",
        "timestamp": time.time() if timestamp is None else timestamp,
        "benchmarks": benchmarks,
    }
    runs.append(entry)
    if max_runs > 0 and len(runs) > max_runs:
        del runs[: len(runs) - max_runs]
    return entry


@dataclass(frozen=True)
class Regression:
    """One gated metric that moved past tolerance in its bad direction."""

    benchmark: str
    metric: str
    direction: str
    baseline: float
    latest: float
    change_pct: float

    def describe(self) -> str:
        arrow = "rose" if self.direction == "lower" else "fell"
        return (
            f"{self.benchmark}:{self.metric} {arrow} "
            f"{abs(self.change_pct):.1f}% (baseline {self.baseline:.6g} "
            f"-> latest {self.latest:.6g})"
        )


def check_regressions(
    history: Mapping[str, object],
    tolerance: float = 0.25,
    min_runs: int = 3,
    window: int = 5,
) -> list[Regression]:
    """Gate the newest run against the rolling baseline.

    For each gated metric in the latest run, the baseline is the median
    of that metric's values over the previous ``window`` runs (skipping
    runs that lack it).  Fewer than ``min_runs`` prior values → not
    gated yet.  Baselines at (or below) zero are not gated — a relative
    tolerance around zero is meaningless.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if min_runs < 1:
        raise ValueError("min_runs must be at least 1")
    if window < min_runs:
        raise ValueError("window must be at least min_runs")
    runs = history.get("runs")
    if not isinstance(runs, list) or len(runs) < 2:
        return []
    latest = runs[-1]
    prior = runs[:-1]
    regressions: list[Regression] = []
    for bench_name, bench in latest.get("benchmarks", {}).items():
        for metric, value in bench.get("metrics", {}).items():
            direction = metric_direction(metric)
            if direction is None:
                continue
            prior_values = [
                run["benchmarks"][bench_name]["metrics"][metric]
                for run in prior[-window:]
                if metric in run.get("benchmarks", {})
                .get(bench_name, {})
                .get("metrics", {})
            ]
            if len(prior_values) < min_runs:
                continue
            baseline = median(prior_values)
            if baseline <= 0:
                continue
            change = (value - baseline) / baseline
            regressed = (
                change > tolerance
                if direction == "lower"
                else change < -tolerance
            )
            if regressed:
                regressions.append(
                    Regression(
                        benchmark=bench_name,
                        metric=metric,
                        direction=direction,
                        baseline=float(baseline),
                        latest=float(value),
                        change_pct=change * 100.0,
                    )
                )
    regressions.sort(key=lambda r: -abs(r.change_pct))
    return regressions


def summarize_history(history: Mapping[str, object]) -> dict[str, object]:
    """Trajectory overview for the CLI's bare ``bench-history`` call."""
    runs = history.get("runs")
    if not isinstance(runs, list) or not runs:
        return {"runs": 0, "benchmarks": [], "latest": None}
    benchmarks: set[str] = set()
    for run in runs:
        benchmarks.update(run.get("benchmarks", {}))
    latest = runs[-1]
    return {
        "runs": len(runs),
        "benchmarks": sorted(benchmarks),
        "latest": {
            "run_id": latest.get("run_id"),
            "timestamp": latest.get("timestamp"),
            "metrics": sum(
                len(b.get("metrics", {}))
                for b in latest.get("benchmarks", {}).values()
            ),
        },
    }


__all__ = [
    "HISTORY_VERSION",
    "Regression",
    "append_run",
    "check_regressions",
    "flatten_metrics",
    "load_history",
    "metric_direction",
    "new_history",
    "save_history",
    "summarize_history",
]
