"""Lightweight span tracing for builds, scans and serving.

A :class:`Tracer` records **spans**: named intervals with monotonic
timestamps, explicit parent links and free-form attributes.  There is no
module-level global tracer — every component that traces receives a
tracer object (builders through ``TreeBuilder(config, tracer=...)``,
the scan engine and retrying table from the builder, the serving engine
at construction).  Code that does not care receives :data:`NULL_TRACER`,
whose ``span()`` is a reusable no-op, so the traced hot paths cost one
attribute access and a method call when tracing is off.

Parenting is explicit-first: ``tracer.span(name, parent=some_span)``
links wherever the caller says.  When no parent is given, the span
attaches to the innermost open span *of the current thread* (a
per-tracer ``threading.local`` stack — still no process-global state),
which makes ``with`` nesting do the right thing in single-threaded code
while worker threads pass their parent across the thread boundary by
hand (see :meth:`repro.core.parallel.ScanEngine.scan`).  Forked scan
workers go one step further: the parent ships a :class:`TraceContext`
(epoch + parent span id), the worker records into a local
``Tracer.from_context(ctx)`` tracer, and the shipped span dicts are
spliced back with :meth:`Tracer.graft` — so ``thread`` and ``process``
backends produce structurally equivalent traces.

Span timestamps come from :func:`time.perf_counter` relative to the
tracer's construction, so exported traces start near zero and are
immune to wall-clock adjustments.  Tracing is observational only: no
code path may branch on a span, so a traced build is bit-identical to
an untraced one (property-tested in ``tests/test_obs_integration.py``).

Export surfaces: :meth:`Tracer.write_jsonl` (one span per line, the
format read back by :func:`load_trace_jsonl` and the ``cmp-repro
inspect-trace`` subcommand) and :func:`render_tree` (indented text).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import IO, Iterable, Iterator

#: Attribute value types that survive a JSONL round-trip unchanged.
AttrValue = "str | int | float | bool | None"


@dataclass(frozen=True)
class TraceContext:
    """Serializable handle for continuing a trace in another process.

    Carries the parent tracer's epoch (``time.perf_counter`` is
    CLOCK_MONOTONIC on Linux, so it is consistent across ``fork`` — a
    worker tracer built from this context produces timestamps on the
    *same* axis as the parent's spans) plus the span id the shipped
    subtree should hang under.  Instances are plain frozen dataclasses:
    picklable for process pools and JSON-friendly via
    :meth:`to_dict`/:meth:`from_dict`.
    """

    epoch: float
    parent_id: int | None = None

    def to_dict(self) -> dict[str, object]:
        return {"epoch": self.epoch, "parent_id": self.parent_id}

    @classmethod
    def from_dict(cls, obj: dict[str, object]) -> "TraceContext":
        parent = obj.get("parent_id")
        return cls(
            epoch=float(obj["epoch"]),  # type: ignore[arg-type]
            parent_id=None if parent is None else int(parent),  # type: ignore[arg-type]
        )


class Span:
    """One named, timed interval in a trace.

    ``end_s`` is ``None`` while the span is open.  Attributes may be
    added at any time — including after exit, which is how a build span
    picks up its final counter totals (the span object stays reachable
    through the tracer until export).
    """

    __slots__ = ("name", "span_id", "parent_id", "start_s", "end_s", "thread", "attrs")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        start_s: float,
        thread: str,
        attrs: dict[str, object],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: float | None = None
        self.thread = thread
        self.attrs = attrs

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def annotate(self, **attrs: object) -> "Span":
        """Attach attributes to the span; returns the span for chaining."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (one JSONL line)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": round(self.start_s, 9),
            "dur_s": round(self.duration_s, 9),
            "thread": self.thread,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, dur={self.duration_s:.6f}s)"


class _SpanContext:
    """Context manager that opens ``span`` on enter and closes it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc: object) -> None:
        self._tracer._finish(self._span)


class Tracer:
    """Collects spans; thread-safe; no global state.

    Spans are appended to the record at *start* (under the lock), so the
    export order is start order regardless of which thread finished
    first.  Open spans export with ``dur_s == 0``.
    """

    def __init__(self, epoch: float | None = None) -> None:
        self._epoch = time.perf_counter() if epoch is None else epoch
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._next_id = 0
        self._stack = threading.local()

    # -- cross-process continuity --------------------------------------------

    def context(self, parent: Span | None = None) -> TraceContext:
        """Serializable context for a worker-local continuation tracer.

        Ship the returned :class:`TraceContext` across the process
        boundary, build a tracer there with :meth:`from_context`, and
        graft the recorded spans back with :meth:`graft`.
        """
        return TraceContext(
            epoch=self._epoch,
            parent_id=parent.span_id if parent is not None else None,
        )

    @classmethod
    def from_context(cls, ctx: TraceContext) -> "Tracer":
        """Worker-side tracer sharing the originating tracer's time axis."""
        return cls(epoch=ctx.epoch)

    def graft(
        self,
        shipped: "Iterable[Span | dict[str, object]]",
        parent: Span | None = None,
        **root_attrs: object,
    ) -> list[Span]:
        """Splice spans recorded by another tracer into this one.

        ``shipped`` is what a worker sends back — :class:`Span` objects
        or their :meth:`Span.to_dict` forms.  Span ids are re-allocated
        from this tracer's sequence (ids are only unique per tracer);
        parent links *within* the shipped set are remapped accordingly,
        and shipped roots (spans whose parent is absent from the set)
        are attached under ``parent`` and annotated with ``root_attrs``.
        Timestamps are kept verbatim: both tracers share an epoch via
        :meth:`context`, so no re-basing is needed.
        """
        incoming = [
            sp if isinstance(sp, Span) else span_from_dict(sp) for sp in shipped
        ]
        grafted: list[Span] = []
        with self._lock:
            idmap: dict[int, int] = {}
            for sp in incoming:
                idmap[sp.span_id] = self._next_id
                self._next_id += 1
            for sp in incoming:
                is_root = sp.parent_id is None or sp.parent_id not in idmap
                if is_root:
                    parent_id = parent.span_id if parent is not None else None
                else:
                    parent_id = idmap[sp.parent_id]  # type: ignore[index]
                nsp = Span(
                    sp.name,
                    idmap[sp.span_id],
                    parent_id,
                    sp.start_s,
                    sp.thread,
                    dict(sp.attrs),
                )
                nsp.end_s = sp.end_s
                if is_root and root_attrs:
                    nsp.attrs.update(root_attrs)
                self._spans.append(nsp)
                grafted.append(nsp)
        return grafted

    # -- recording -----------------------------------------------------------

    def span(
        self, name: str, parent: Span | None | type[Ellipsis] = ..., **attrs: object
    ) -> _SpanContext:
        """Open a span as a context manager.

        ``parent=...`` (the default) attaches to the current thread's
        innermost open span; ``parent=None`` forces a root span;
        ``parent=<span>`` links explicitly (the only option that works
        across threads).
        """
        if parent is ...:
            stack = getattr(self._stack, "spans", None)
            resolved = stack[-1] if stack else None
        else:
            resolved = parent  # type: ignore[assignment]
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            sp = Span(
                name,
                span_id,
                resolved.span_id if resolved is not None else None,
                time.perf_counter() - self._epoch,
                threading.current_thread().name,
                dict(attrs),
            )
            self._spans.append(sp)
        return _SpanContext(self, sp)

    def _push(self, span: Span) -> None:
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = []
            self._stack.spans = stack
        stack.append(span)

    def _finish(self, span: Span) -> None:
        span.end_s = time.perf_counter() - self._epoch
        stack = getattr(self._stack, "spans", None)
        if stack is not None:
            # Remove by identity from the end: robust even if a generator
            # holding an open span was finalized on a different thread.
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] is span:
                    del stack[i]
                    break

    # -- reading -------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True — this tracer records spans (cf. :class:`NullTracer`)."""
        return True

    def spans(self) -> list[Span]:
        """Snapshot of all recorded spans, in start order."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- export --------------------------------------------------------------

    def write_jsonl(self, path_or_file: "str | IO[str]") -> int:
        """Write one JSON object per span; returns the span count."""
        spans = self.spans()
        if hasattr(path_or_file, "write"):
            for sp in spans:
                path_or_file.write(json.dumps(sp.to_dict()) + "\n")  # type: ignore[union-attr]
        else:
            with open(path_or_file, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
                for sp in spans:
                    fh.write(json.dumps(sp.to_dict()) + "\n")
        return len(spans)

    def render(self) -> str:
        """Indented text tree of the recorded spans."""
        return render_tree(self.spans())


class _NoopSpan:
    """Shared inert span yielded by :class:`NullTracer`."""

    __slots__ = ()
    name = "noop"
    span_id = -1
    parent_id = None
    start_s = 0.0
    end_s = 0.0
    thread = ""
    attrs: dict[str, object] = {}
    duration_s = 0.0

    def annotate(self, **attrs: object) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class NullTracer:
    """Drop-in tracer that records nothing and allocates nothing per span."""

    enabled = False

    def span(self, name: str, parent: object = ..., **attrs: object) -> _NoopSpan:
        return _NOOP_SPAN

    def spans(self) -> list[Span]:
        return []

    def context(self, parent: object = None) -> None:
        """No continuation context — workers see ``None`` and skip tracing."""
        return None

    def graft(
        self, shipped: object, parent: object = None, **root_attrs: object
    ) -> list[Span]:
        return []

    def __len__(self) -> int:
        return 0

    def write_jsonl(self, path_or_file: object) -> int:
        raise RuntimeError("NullTracer records no spans; nothing to export")

    def render(self) -> str:
        return "(tracing disabled)"


#: Shared inert tracer — the default wherever tracing is optional.
NULL_TRACER = NullTracer()


def span_from_dict(obj: dict[str, object]) -> Span:
    """Rebuild a :class:`Span` from its :meth:`Span.to_dict` form."""
    sp = Span(
        str(obj["name"]),
        int(obj["span_id"]),  # type: ignore[arg-type]
        None if obj["parent_id"] is None else int(obj["parent_id"]),  # type: ignore[arg-type]
        float(obj["start_s"]),  # type: ignore[arg-type]
        str(obj.get("thread", "")),
        dict(obj.get("attrs", {})),  # type: ignore[arg-type]
    )
    sp.end_s = sp.start_s + float(obj["dur_s"])  # type: ignore[arg-type]
    return sp


def load_trace_jsonl(path_or_file: "str | IO[str]") -> list[Span]:
    """Read spans back from a :meth:`Tracer.write_jsonl` file.

    Malformed lines raise ``ValueError`` naming the line number — a
    truncated trace should fail loudly, not summarize silently.
    """

    def _parse(lines: Iterator[str]) -> list[Span]:
        spans: list[Span] = []
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(span_from_dict(json.loads(line)))
            except (KeyError, TypeError, json.JSONDecodeError) as exc:
                raise ValueError(f"bad trace line {lineno}: {exc}") from exc
        return spans

    if hasattr(path_or_file, "read"):
        return _parse(iter(path_or_file))  # type: ignore[arg-type]
    with open(path_or_file, "r", encoding="utf-8") as fh:  # type: ignore[arg-type]
        return _parse(iter(fh))


def render_tree(spans: list[Span]) -> str:
    """Indented text rendering: one line per span, children under parents.

    Spans whose parent is missing from ``spans`` (e.g. a filtered
    export) are promoted to roots rather than dropped.
    """
    by_id = {sp.span_id: sp for sp in spans}
    children: dict[int | None, list[Span]] = {}
    for sp in spans:
        key = sp.parent_id if sp.parent_id in by_id else None
        children.setdefault(key, []).append(sp)
    for kids in children.values():
        kids.sort(key=lambda s: (s.start_s, s.span_id))

    lines: list[str] = []

    def walk(sp: Span, depth: int) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in sp.attrs.items())
        lines.append(
            "  " * depth
            + f"{sp.name}  {sp.duration_s * 1000.0:.3f} ms"
            + (f"  [{attrs}]" if attrs else "")
        )
        for kid in children.get(sp.span_id, []):
            walk(kid, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines) if lines else "(empty trace)"


__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "span_from_dict",
    "load_trace_jsonl",
    "render_tree",
]
