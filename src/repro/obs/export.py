"""Export surfaces: Prometheus text exposition, JSON metrics, stats adapters.

Two halves:

* **Rendering** — :func:`to_prometheus` emits the Prometheus text
  exposition format (version 0.0.4: ``# HELP`` / ``# TYPE`` headers,
  ``_bucket{le=…}`` / ``_sum`` / ``_count`` for histograms, escaped
  label values).  The exact output is golden-file-tested.
  :func:`write_metrics` routes a registry to a path: ``*.json`` gets the
  JSON snapshot, anything else the Prometheus text.

* **Adapters** — the repository's pre-existing counter blocks
  (:class:`~repro.io.metrics.BuildStats`, ``IOStats``, ``ServingStats``)
  keep their ``summary()``/``snapshot()`` dict APIs untouched; the
  functions here *project* them into a :class:`MetricsRegistry` after
  the fact.  Nothing in the training or serving hot path writes to a
  registry directly, so the export surface costs nothing until asked
  for.  (Adapters duck-type their inputs; this module deliberately does
  not import :mod:`repro.io` at runtime, keeping ``repro.obs``
  import-cycle-free.)

Metric names follow Prometheus conventions: ``cmp_`` prefix, base
units, ``_total`` on counters.
"""

from __future__ import annotations

import json
import math
from typing import IO, TYPE_CHECKING, Mapping

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.io.metrics import BuildStats, IOStats, ServingStats


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    # HELP text escapes only backslash and newline (quotes stay raw),
    # per the exposition-format spec — different from label values.
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _format_value(bound)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render ``registry`` in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, kind, help_text, members in registry.collect():
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for m in members:
            if kind == "histogram":
                for le, cum in m.cumulative_buckets():
                    labels = _format_labels(m.labels, f'le="{_format_le(le)}"')
                    lines.append(f"{name}_bucket{labels} {cum}")
                labels = _format_labels(m.labels)
                lines.append(f"{name}_sum{labels} {_format_value(m.sum)}")
                lines.append(f"{name}_count{labels} {m.count}")
            else:
                labels = _format_labels(m.labels)
                lines.append(f"{name}{labels} {_format_value(m.value)}")
    return "\n".join(lines) + "\n" if lines else ""


def write_metrics(registry: MetricsRegistry, path_or_file: "str | IO[str]") -> None:
    """Write ``registry`` to a path: ``*.json`` → JSON, else Prometheus text."""
    if hasattr(path_or_file, "write"):
        path_or_file.write(to_prometheus(registry))  # type: ignore[union-attr]
        return
    path = str(path_or_file)
    with open(path, "w", encoding="utf-8") as fh:
        if path.endswith(".json"):
            json.dump(registry.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        else:
            fh.write(to_prometheus(registry))


# ---------------------------------------------------------------------------
# Adapters: existing stats blocks -> registry
# ---------------------------------------------------------------------------


def record_io_stats(
    registry: MetricsRegistry,
    io: "IOStats",
    labels: Mapping[str, str] | None = None,
) -> None:
    """Project an :class:`~repro.io.metrics.IOStats` block into counters."""
    snap = io.snapshot()
    help_by_name = {
        "cmp_io_scans_total": "Sequential passes over the training table.",
        "cmp_io_pages_read_total": "Sequential page reads.",
        "cmp_io_records_read_total": "Records delivered by table scans.",
        "cmp_io_aux_records_read_total": "Auxiliary-structure records read.",
        "cmp_io_aux_records_written_total": "Auxiliary-structure records written.",
        "cmp_io_random_seeks_total": "Random seeks charged by the cost model.",
        "cmp_io_read_retries_total": "Chunk reads that were retried.",
        "cmp_io_backoff_ms_total": "Simulated retry backoff, milliseconds.",
    }
    for field, value in snap.items():
        name = f"cmp_io_{field}_total"
        registry.counter(name, help_by_name.get(name, ""), labels).inc(float(value))


def record_build_stats(
    registry: MetricsRegistry,
    stats: "BuildStats",
    labels: Mapping[str, str] | None = None,
) -> None:
    """Project one finished build's :class:`BuildStats` into the registry.

    Counters/gauges only — the flat ``summary()`` dict remains the
    in-process reporting surface; this adapter is its machine-readable
    twin.  Call once per build (counters accumulate across calls, which
    is exactly right for a sweep of several builds sharing a registry).
    """
    record_io_stats(registry, stats.io, labels)
    registry.counter(
        "cmp_build_total", "Tree builds recorded into this registry.", labels
    ).inc()
    registry.counter(
        "cmp_build_wall_seconds_total", "Wall-clock build time, seconds.", labels
    ).inc(stats.wall_seconds)
    registry.counter(
        "cmp_build_simulated_ms_total", "Cost-model simulated build time.", labels
    ).inc(stats.simulated_ms)
    registry.counter(
        "cmp_build_parallel_batches_total",
        "Parallel chunk batches dispatched by the scan engine.",
        labels,
    ).inc(float(stats.parallel_batches))
    registry.counter(
        "cmp_build_buffer_overflow_rescans_total",
        "Extra scans forced by alive-buffer overflow.",
        labels,
    ).inc(float(stats.buffer_overflow_rescans))
    registry.counter(
        "cmp_build_native_kernel_calls_total",
        "Native training-kernel calls made during the build.",
        labels,
    ).inc(float(stats.native_kernel_calls))
    for phase, seconds in sorted(stats.phase_seconds.items()):
        phase_labels = dict(labels or {})
        phase_labels["phase"] = phase
        registry.counter(
            "cmp_build_phase_seconds_total",
            "Wall-clock seconds per build phase.",
            phase_labels,
        ).inc(seconds)
    registry.gauge(
        "cmp_build_peak_memory_bytes", "Peak tracked memory of the last build.", labels
    ).set(float(stats.memory.peak))
    registry.gauge(
        "cmp_build_nodes", "Nodes in the last built tree.", labels
    ).set(float(stats.nodes_created))
    registry.gauge(
        "cmp_build_levels", "Depth of the last built tree.", labels
    ).set(float(stats.levels_built))
    registry.gauge(
        "cmp_build_scan_workers", "Configured chunk-routing workers.", labels
    ).set(float(stats.scan_workers))


def record_serving_stats(
    registry: MetricsRegistry,
    stats: "ServingStats",
    labels: Mapping[str, str] | None = None,
) -> None:
    """Project one model's :class:`ServingStats` into the registry.

    The latency histogram is merged bucket-for-bucket into the
    registry's, so Prometheus quantiles computed downstream agree with
    ``snapshot()``'s p50/p90/p99.
    """
    snap = stats.snapshot()
    registry.counter(
        "cmp_serve_requests_total", "Prediction requests received.", labels
    ).inc(snap["requests"])
    registry.counter(
        "cmp_serve_batches_total", "Batches executed by the serving engine.", labels
    ).inc(snap["batches"])
    registry.counter(
        "cmp_serve_records_total", "Records predicted.", labels
    ).inc(snap["records"])
    registry.counter(
        "cmp_serve_busy_seconds_total", "Summed batch execution time.", labels
    ).inc(snap["busy_seconds"])
    registry.counter(
        "cmp_serve_shed_total", "Requests rejected by admission control.", labels
    ).inc(snap["shed"])
    registry.counter(
        "cmp_serve_timeouts_total", "Requests whose deadline expired.", labels
    ).inc(snap["timeouts"])
    registry.counter(
        "cmp_serve_breaker_rejections_total",
        "Requests refused by an open circuit breaker.",
        labels,
    ).inc(snap["breaker_rejections"])
    registry.counter(
        "cmp_serve_fallbacks_total",
        "Requests answered by the degraded fallback path.",
        labels,
    ).inc(snap["fallbacks"])
    registry.counter(
        "cmp_serve_shard_retries_total",
        "Shard executions retried after a failure.",
        labels,
    ).inc(snap["shard_retries"])
    hist = registry.histogram(
        "cmp_serve_batch_latency_seconds",
        "Per-batch execution latency.",
        labels,
        bounds=stats.latency.bounds,
    )
    hist.merge_from(stats.latency)


def record_breaker(
    registry: MetricsRegistry,
    breaker,
    labels: Mapping[str, str] | None = None,
) -> None:
    """Project one circuit breaker's state and counters into the registry.

    The state gauge uses the numeric encoding of
    :data:`repro.serve.breaker.STATE_CODES` (0 closed, 1 half-open,
    2 open), so dashboards can alert on ``cmp_serve_breaker_state > 0``.
    Duck-typed on ``snapshot()`` like the other adapters.
    """
    snap = breaker.snapshot()
    registry.gauge(
        "cmp_serve_breaker_state",
        "Circuit state: 0 closed, 1 half-open, 2 open.",
        labels,
    ).set(float(snap["state_code"]))
    registry.counter(
        "cmp_serve_breaker_trips_total", "Closed/half-open to open transitions.",
        labels,
    ).inc(float(snap["trips"]))
    registry.counter(
        "cmp_serve_breaker_open_rejections_total",
        "Requests rejected while the circuit was open.",
        labels,
    ).inc(float(snap["rejections"]))


def record_admission(
    registry: MetricsRegistry,
    admission,
    labels: Mapping[str, str] | None = None,
) -> None:
    """Project an admission controller's queue gauges and shed counters."""
    snap = admission.snapshot()
    registry.gauge(
        "cmp_serve_queue_depth", "Requests currently admitted and in flight.",
        labels,
    ).set(float(snap["depth"]))
    registry.gauge(
        "cmp_serve_queue_depth_limit", "Configured admission bound.", labels
    ).set(float(snap["max_depth"]))
    registry.gauge(
        "cmp_serve_queue_peak_depth", "High-water mark of the serve queue.",
        labels,
    ).set(float(snap["peak_depth"]))
    registry.counter(
        "cmp_serve_admitted_total", "Requests granted an admission permit.",
        labels,
    ).inc(float(snap["admitted"]))
    registry.counter(
        "cmp_serve_admission_shed_total",
        "Requests rejected at the admission gate.",
        labels,
    ).inc(float(snap["shed"]))


__all__ = [
    "to_prometheus",
    "write_metrics",
    "record_io_stats",
    "record_build_stats",
    "record_serving_stats",
    "record_breaker",
    "record_admission",
]
