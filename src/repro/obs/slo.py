"""Declarative SLOs with multi-window burn-rate alerting.

An SLO ("99.9% of requests get a real answer", "99% answer within
50 ms") turns raw counters into a judgement: given ``good`` and
``total`` request counts, the **error budget** is ``1 - objective`` and
the **burn rate** over a window is::

    burn = (bad / total) / (1 - objective)

Burn 1.0 spends the budget exactly at the sustainable pace; burn 14.4
over an hour exhausts a 30-day budget in ~2 days.  Alerting on a single
window either pages too slowly (long window) or flaps on noise (short
window), so :class:`SLOMonitor` evaluates the standard *multi-window,
multi-burn-rate* policy: an alert fires only when **both** a long
window and its short companion exceed the window's burn threshold —
the long window proves the problem is sustained, the short one proves
it is still happening.

Everything is deterministic and merge-friendly:

* the clock is injectable (tests hand-compute burn rates against a
  fake clock; benchmarks pass real ``time.monotonic`` values);
* observations are **cumulative** ``(t, good, total)`` samples — the
  same exact-counter idiom as :class:`~repro.obs.metrics.Counter` — so
  windowed rates are exact differences, not decayed estimates, and two
  monitors fed the same samples agree bit-for-bit;
* :func:`availability_counts` and :func:`latency_counts` adapt the
  existing surfaces (a :meth:`ServingStats.snapshot` dict, a latency
  :class:`~repro.obs.metrics.Histogram`) without new bookkeeping in
  the serving path.

Wired into ``cmp-repro serve-bench`` (``--slo-availability`` /
``--slo-latency-ms``) and ``benchmarks/bench_serve_saturation.py``,
where a saturation run demonstrates burn rates far above threshold
while the admitted traffic stays healthy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.obs.metrics import Histogram

#: SLO kinds understood by :class:`SLODefinition`.
SLO_KINDS = ("availability", "latency")


@dataclass(frozen=True)
class SLODefinition:
    """One declarative objective over a good/total request ratio.

    ``objective`` is the target good fraction in ``(0, 1)`` — e.g.
    ``0.999`` for three nines.  ``kind="latency"`` additionally needs
    ``latency_threshold_s``: a request is *good* when it finished within
    the threshold (counted from histogram buckets, see
    :func:`latency_counts`).
    """

    name: str
    objective: float
    kind: str = "availability"
    latency_threshold_s: float | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLO name must be non-empty")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective!r}"
            )
        if self.kind not in SLO_KINDS:
            raise ValueError(f"kind must be one of {SLO_KINDS}, got {self.kind!r}")
        if self.kind == "latency" and self.latency_threshold_s is None:
            raise ValueError("latency SLOs need latency_threshold_s")

    @property
    def error_budget(self) -> float:
        """Tolerated bad fraction (``1 - objective``)."""
        return 1.0 - self.objective


@dataclass(frozen=True)
class BurnRateWindow:
    """One (long, short) window pair with its firing threshold."""

    long_s: float
    short_s: float
    threshold: float
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.long_s <= 0 or self.short_s <= 0:
            raise ValueError("window lengths must be positive")
        if self.short_s > self.long_s:
            raise ValueError("short window must not exceed the long window")
        if self.threshold <= 0:
            raise ValueError("burn threshold must be positive")


#: The SRE-workbook ladder for a 30-day budget: fast burn pages within
#: the hour, slow burn tickets within the day.
DEFAULT_WINDOWS = (
    BurnRateWindow(long_s=3600.0, short_s=300.0, threshold=14.4, severity="page"),
    BurnRateWindow(long_s=21600.0, short_s=1800.0, threshold=6.0, severity="page"),
    BurnRateWindow(long_s=86400.0, short_s=7200.0, threshold=3.0, severity="ticket"),
)


@dataclass(frozen=True)
class BurnAlert:
    """Evaluation of one window pair at one instant."""

    slo: str
    window: BurnRateWindow
    long_burn: float
    short_burn: float
    firing: bool

    def to_dict(self) -> dict[str, object]:
        return {
            "slo": self.slo,
            "long_s": self.window.long_s,
            "short_s": self.window.short_s,
            "threshold": self.window.threshold,
            "severity": self.window.severity,
            "long_burn": round(self.long_burn, 6),
            "short_burn": round(self.short_burn, 6),
            "firing": self.firing,
        }


class SLOMonitor:
    """Evaluates one SLO over cumulative good/total samples.

    Feed it monotonically non-decreasing cumulative counters via
    :meth:`observe` (or the :meth:`observe_stats` /
    :meth:`observe_histogram` adapters); ask for :meth:`burn_rate`
    over any window or :meth:`evaluate` against the configured window
    ladder.  Not thread-safe — sample from one collection loop, as the
    benchmarks do.
    """

    def __init__(
        self,
        slo: SLODefinition,
        windows: tuple[BurnRateWindow, ...] = DEFAULT_WINDOWS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not windows:
            raise ValueError("need at least one burn-rate window")
        self.slo = slo
        self.windows = tuple(windows)
        self._clock = clock
        self._samples: list[tuple[float, float, float]] = []

    # -- sampling ------------------------------------------------------------

    def observe(
        self, good: float, total: float, now: float | None = None
    ) -> None:
        """Record cumulative ``good``/``total`` counts at time ``now``.

        Counts and timestamps must be non-decreasing and ``good <=
        total`` — violations raise, because a decreasing "cumulative"
        counter means the caller is feeding deltas and every windowed
        rate would silently be wrong.
        """
        t = self._clock() if now is None else now
        if good < 0 or total < 0 or good > total:
            raise ValueError(
                f"need 0 <= good <= total, got good={good} total={total}"
            )
        if self._samples:
            lt, lg, ltot = self._samples[-1]
            if t < lt:
                raise ValueError(f"time went backwards: {t} < {lt}")
            if good < lg or total < ltot:
                raise ValueError(
                    "cumulative counts decreased; feed running totals, "
                    "not per-interval deltas"
                )
        self._samples.append((t, float(good), float(total)))

    def observe_stats(
        self, snapshot: Mapping[str, object], now: float | None = None
    ) -> None:
        """Sample an availability SLO from a ``ServingStats.snapshot()``."""
        good, total = availability_counts(snapshot)
        self.observe(good, total, now)

    def observe_histogram(
        self, latency: Histogram, now: float | None = None
    ) -> None:
        """Sample a latency SLO from a latency histogram."""
        threshold = self.slo.latency_threshold_s
        if threshold is None:
            raise ValueError("observe_histogram needs a latency SLO")
        good, total = latency_counts(latency, threshold)
        self.observe(good, total, now)

    # -- evaluation ----------------------------------------------------------

    def _window_delta(
        self, window_s: float, now: float
    ) -> tuple[float, float]:
        """(good, total) delta across the trailing window.

        The baseline is the youngest sample at or before ``now -
        window_s``; with no sample that old yet, the oldest sample
        stands in (the window simply covers the whole history so far).
        """
        if not self._samples:
            return 0.0, 0.0
        cutoff = now - window_s
        baseline = self._samples[0]
        for sample in self._samples:
            if sample[0] <= cutoff:
                baseline = sample
            else:
                break
        latest = self._samples[-1]
        return latest[1] - baseline[1], latest[2] - baseline[2]

    def burn_rate(self, window_s: float, now: float | None = None) -> float:
        """Error-budget burn rate over the trailing ``window_s`` seconds.

        ``0.0`` when the window saw no traffic: no evidence is not
        evidence of burning.
        """
        now = self._clock() if now is None else now
        good, total = self._window_delta(window_s, now)
        if total <= 0:
            return 0.0
        bad_rate = (total - good) / total
        return bad_rate / self.slo.error_budget

    def evaluate(self, now: float | None = None) -> list[BurnAlert]:
        """All window pairs at ``now``; ``firing`` needs both to exceed."""
        now = self._clock() if now is None else now
        alerts = []
        for window in self.windows:
            long_burn = self.burn_rate(window.long_s, now)
            short_burn = self.burn_rate(window.short_s, now)
            alerts.append(
                BurnAlert(
                    slo=self.slo.name,
                    window=window,
                    long_burn=long_burn,
                    short_burn=short_burn,
                    firing=(
                        long_burn >= window.threshold
                        and short_burn >= window.threshold
                    ),
                )
            )
        return alerts

    def firing(self, now: float | None = None) -> list[BurnAlert]:
        """Just the alerts currently firing."""
        return [a for a in self.evaluate(now) if a.firing]

    def snapshot(self, now: float | None = None) -> dict[str, object]:
        """JSON-friendly evaluation (benchmark reports, CLI output)."""
        now = self._clock() if now is None else now
        good, total = (
            (self._samples[-1][1], self._samples[-1][2])
            if self._samples
            else (0.0, 0.0)
        )
        return {
            "slo": self.slo.name,
            "kind": self.slo.kind,
            "objective": self.slo.objective,
            "good": good,
            "total": total,
            "compliance": (good / total) if total > 0 else None,
            "alerts": [a.to_dict() for a in self.evaluate(now)],
            "firing": bool(self.firing(now)),
        }


def availability_counts(
    snapshot: Mapping[str, object]
) -> tuple[float, float]:
    """(good, total) for an availability SLO, from serving counters.

    *Good* requests got an answer: executed batches plus degraded
    fallback answers.  *Bad* requests got an exception: shed, expired,
    or breaker-rejected without a fallback.  ``breaker_rejections``
    counts every open-circuit rejection and ``fallbacks`` the subset
    that was still answered, so the hard-failed remainder is their
    difference — which the total below folds in without double count::

        total = batches + shed + timeouts + breaker_rejections
        good  = batches + fallbacks
    """
    batches = float(snapshot.get("batches", 0))  # type: ignore[arg-type]
    shed = float(snapshot.get("shed", 0))  # type: ignore[arg-type]
    timeouts = float(snapshot.get("timeouts", 0))  # type: ignore[arg-type]
    breaker = float(snapshot.get("breaker_rejections", 0))  # type: ignore[arg-type]
    fallbacks = float(snapshot.get("fallbacks", 0))  # type: ignore[arg-type]
    total = batches + shed + timeouts + breaker
    good = batches + fallbacks
    return min(good, total), total


def latency_counts(
    latency: Histogram, threshold_s: float
) -> tuple[float, float]:
    """(good, total) for a latency SLO, from a latency histogram.

    *Good* is the cumulative count at the largest bucket bound that
    does not exceed ``threshold_s`` — the conservative reading (a
    threshold between bounds undercounts good, never overcounts).
    Pick a threshold that is an exact bucket bound (the default
    buckets are ``log_buckets(1e-4, 100.0)``) for an exact count.
    """
    if threshold_s <= 0:
        raise ValueError("latency threshold must be positive")
    good = 0
    for bound, cumulative in latency.cumulative_buckets():
        if bound <= threshold_s:
            good = cumulative
        else:
            break
    return float(good), float(latency.count)


__all__ = [
    "SLODefinition",
    "BurnRateWindow",
    "BurnAlert",
    "SLOMonitor",
    "DEFAULT_WINDOWS",
    "SLO_KINDS",
    "availability_counts",
    "latency_counts",
]
