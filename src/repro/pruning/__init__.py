"""Decision-tree pruning: MDL and integrated PUBLIC(1)."""

from repro.pruning.mdl import class_entropy_bits, leaf_cost, mdl_prune, split_cost, subtree_cost
from repro.pruning.public import OPEN_LEAF_BOUND, final_mdl_cost, public_prune_pass

__all__ = [
    "class_entropy_bits",
    "leaf_cost",
    "mdl_prune",
    "split_cost",
    "subtree_cost",
    "OPEN_LEAF_BOUND",
    "final_mdl_cost",
    "public_prune_pass",
]
