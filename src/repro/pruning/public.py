"""PUBLIC(1)-style pruning integrated with tree building (Rastogi & Shim [9]).

PUBLIC's observation: MDL pruning can run *during* construction, as long as
leaves that might still be expanded are charged a **lower bound** on the
cost of whatever subtree might eventually replace them, rather than their
(possibly large) leaf cost.  PUBLIC(1) uses the cheapest valid bound — the
single bit needed to encode any node — which is the variant the paper
invokes ("we use the algorithm in PUBLIC... PUBLIC(1)", Figures 4 and 10,
line 20).

Because the bound under-states the open leaves' true cost, any subtree
pruned now would also be pruned by a post-hoc MDL pass, so intermediate
pruning never changes the final tree — it only avoids growing doomed
branches (and lets the builder cancel their pending splits).
"""

from __future__ import annotations

from repro.core.tree import Node
from repro.pruning.mdl import leaf_cost, split_cost, subtree_cost

#: PUBLIC(1)'s lower bound on the eventual cost of a not-yet-expanded leaf.
OPEN_LEAF_BOUND = 1.0


def public_prune_pass(
    root: Node,
    open_ids: set[int],
    n_classes: int | None = None,
    n_attributes: int | None = None,
) -> set[int]:
    """One integrated pruning pass; returns the ids of all removed nodes.

    ``open_ids`` are the node ids of frontier leaves that may still be
    expanded.  The returned set contains every node that is no longer in
    the tree *or* whose expansion became moot because an ancestor was
    pruned — builders cancel pending splits whose node id appears in it.
    """
    if n_classes is None:
        n_classes = len(root.class_counts)
    if n_attributes is None:
        n_attributes = 2  # conservative attr-count bound when not supplied
    open_cost = {i: OPEN_LEAF_BOUND for i in open_ids}
    removed: set[int] = set()

    def walk(node: Node) -> float:
        as_leaf = leaf_cost(node, n_classes)
        if node.is_leaf:
            if node.node_id in open_cost:
                return min(as_leaf, OPEN_LEAF_BOUND)
            return as_leaf
        left, right = node.children()
        as_subtree = (
            1.0
            + split_cost(node.split, n_attributes, node.n_records)  # type: ignore[arg-type]
            + walk(left)
            + walk(right)
        )
        if as_leaf <= as_subtree:
            _collect(node, removed)
            removed.discard(node.node_id)
            node.make_leaf()
            return as_leaf
        return as_subtree

    walk(root)
    return removed


def final_mdl_cost(root: Node, n_classes: int, n_attributes: int) -> float:
    """MDL cost of a finished tree (no open leaves)."""
    return subtree_cost(root, n_classes, n_attributes, open_cost=None)


def _collect(node: Node, into: set[int]) -> None:
    into.add(node.node_id)
    if not node.is_leaf:
        left, right = node.children()
        _collect(left, into)
        _collect(right, into)
