"""MDL-based decision-tree pruning (Mehta, Rissanen & Agrawal [10]).

The cost of a subtree is the number of bits needed to encode both the tree
structure and the training records' classes given the tree:

* a **leaf** costs 1 bit (node type) + ``log2(c)`` bits (its label) +
  ``n * H(S)`` bits of data (the entropy-optimal class encoding);
* an **internal node** costs 1 bit + the split encoding + its children.

A subtree is pruned when encoding its root as a leaf is no more expensive
than the subtree itself.  The split encoding follows SLIQ/PUBLIC:
``log2(p)`` bits to name the attribute plus a value term (``log2`` of the
candidate-threshold count for continuous splits, one bit per category for
subset splits, and two value terms for CMP's two-attribute linear splits).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.splits import CategoricalSplit, LinearSplit, NumericSplit, Split
from repro.core.tree import DecisionTree, Node


def class_entropy_bits(counts: np.ndarray) -> float:
    """Total bits to encode the class labels of a set: ``n * H(S)``."""
    counts = np.asarray(counts, dtype=np.float64)
    n = counts.sum()
    if n <= 0:
        return 0.0
    p = counts[counts > 0] / n
    return float(-n * np.sum(p * np.log2(p)))


def leaf_cost(node: Node, n_classes: int) -> float:
    """Bits to encode ``node`` as a leaf, structure plus data."""
    return 1.0 + math.log2(max(n_classes, 2)) + class_entropy_bits(node.class_counts)


def split_cost(split: Split, n_attributes: int, n_records: float) -> float:
    """Bits to encode one split criterion.

    SLIQ/C4.5 prescribe ``log2(candidate-threshold count)`` value bits
    for a continuous split — the threshold names one of the candidates
    actually examined, not one of ``n_records`` arbitrary values.
    Builders record that count on :class:`NumericSplit.n_candidates`;
    charging ``log2(n_records)`` (the previous behaviour, kept as the
    fallback for splits without the count) over-penalized splits on
    low-cardinality attributes and over-pruned them.
    """
    attr_bits = math.log2(max(n_attributes, 2))
    value_bits = math.log2(max(n_records, 2.0))
    if isinstance(split, NumericSplit):
        if split.n_candidates is not None:
            return attr_bits + math.log2(max(split.n_candidates, 2))
        return attr_bits + value_bits
    if isinstance(split, CategoricalSplit):
        return attr_bits + len(split.left_mask)
    if isinstance(split, LinearSplit):
        # Two attributes plus two real coefficients.
        return 2 * attr_bits + 2 * value_bits
    raise TypeError(f"unknown split type {type(split).__name__}")


def subtree_cost(
    node: Node,
    n_classes: int,
    n_attributes: int,
    open_cost: dict[int, float] | None = None,
) -> float:
    """MDL cost of the subtree rooted at ``node``.

    ``open_cost`` maps node ids of *not yet expanded* frontier leaves to a
    lower bound on their eventual cost (PUBLIC-style integrated pruning);
    such a leaf costs ``min(leaf_cost, bound)``.
    """
    if node.is_leaf:
        cost = leaf_cost(node, n_classes)
        if open_cost is not None and node.node_id in open_cost:
            return min(cost, open_cost[node.node_id])
        return cost
    left, right = node.children()
    return (
        1.0
        + split_cost(node.split, n_attributes, node.n_records)  # type: ignore[arg-type]
        + subtree_cost(left, n_classes, n_attributes, open_cost)
        + subtree_cost(right, n_classes, n_attributes, open_cost)
    )


def mdl_prune(tree: DecisionTree) -> int:
    """Prune ``tree`` in place bottom-up; returns the number of nodes removed."""
    n_classes = tree.schema.n_classes
    n_attributes = tree.schema.n_attributes
    removed = 0

    def walk(node: Node) -> float:
        nonlocal removed
        as_leaf = leaf_cost(node, n_classes)
        if node.is_leaf:
            return as_leaf
        left, right = node.children()
        as_subtree = (
            1.0
            + split_cost(node.split, n_attributes, node.n_records)  # type: ignore[arg-type]
            + walk(left)
            + walk(right)
        )
        if as_leaf <= as_subtree:
            removed += _count_nodes(node) - 1
            node.make_leaf()
            return as_leaf
        return as_subtree

    walk(tree.root)
    if removed:
        # The compiled inference form caches the pre-prune structure.
        tree.invalidate_compiled()
    return removed


def _count_nodes(node: Node) -> int:
    if node.is_leaf:
        return 1
    left, right = node.children()
    return 1 + _count_nodes(left) + _count_nodes(right)
