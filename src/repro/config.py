"""Configuration shared by every tree builder in the repository."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class BuilderConfig:
    """Knobs for tree construction.

    Defaults follow the paper: 100+ intervals for large datasets, at most
    two alive intervals, PUBLIC-style pruning available but off by default
    (experiments that measure construction cost follow the paper in
    treating pruning as negligible).
    """

    #: Equal-depth intervals per continuous attribute ("100 to 120" in §3).
    n_intervals: int = 100
    #: Cap on alive intervals per split (paper: "at most 2 is enough").
    max_alive: int = 2
    #: Hard depth limit (root = depth 0).
    max_depth: int = 24
    #: Nodes with fewer records become leaves.
    min_records: int = 24
    #: Nodes with gini below this are considered pure.
    min_gini: float = 1e-3
    #: Minimum gini improvement a split must offer.
    min_gain: float = 1e-4
    #: Reservoir size used for root-grid quantiling during the first scan.
    reservoir_capacity: int = 10_000
    #: Where the CMP-S root grid's equal-depth edges come from during the
    #: quantiling scan: ``"reservoir"`` (uniform sample, the paper's
    #: default) or ``"sketch"`` (deterministic mergeable quantile sketch
    #: with an explicit rank-error bound — the streaming interval source,
    #: see :mod:`repro.stream.sketch`).
    interval_source: str = "reservoir"
    #: Target rank-error fraction when ``interval_source="sketch"``.
    sketch_eps: float = 0.02
    #: Simulated page capacity in records.
    page_records: int = 200
    #: Seed for any randomized tie-breaking / sampling inside builders.
    seed: int = 0
    #: Pruning mode: "none", "public" (integrated PUBLIC(1)) or "mdl"
    #: (post-construction MDL pruning).
    prune: str = "none"
    #: Splitting criterion: "gini" (the paper's choice) or "entropy".
    #: CMP's interval estimation (Eq. 4-5) is gini-specific, so the CMP
    #: family and CLOUDS accept only "gini"; the exact algorithms (SPRINT,
    #: SLIQ, RainForest) support both.
    criterion: str = "gini"

    # --- CMP-specific knobs -------------------------------------------------
    #: Try linear-combination splits only when the best univariate gini at
    #: the node is above this threshold (§2.3 "Heuristics").
    linear_trigger_gini: float = 0.05
    #: Accept a linear split only when its gini is below this fraction of
    #: the best univariate gini ("say 20% smaller" => 0.8).
    linear_accept_ratio: float = 0.8

    #: Linear splits are only attempted at nodes with at least this many
    #: records (line discovery is a structural, top-of-tree concern).
    linear_min_records: int = 500

    #: CMP-B prefers splitting on the predicted X axis when its gini is
    #: within this fraction of the node's impurity of the true best score
    #: (near-tie breaking toward the axis that enables two-level growth;
    #: 0 disables).  Bounded split-quality loss, large scan savings when
    #: attributes are correlated (e.g. salary vs commission).
    x_tie_margin: float = 0.02

    #: Cap on cells per bivariate histogram matrix (CMP-B/CMP).  Grids are
    #: shrunk so qx*qy stays at or below this; exactness is unaffected
    #: because alive-interval buffering resolves thresholds from records.
    matrix_max_cells: int = 2048

    # --- RainForest-specific knobs ------------------------------------------
    #: AVC-group buffer capacity in entries (paper: 2.5 million).
    avc_buffer_entries: int = 2_500_000

    # --- CLOUDS-specific knobs ----------------------------------------------
    #: "ss" = sampled splits only (boundary splits, 1 scan/level);
    #: "sse" = sampling + estimation (alive intervals, extra exact pass).
    clouds_mode: str = "sse"

    # --- Resilience knobs ---------------------------------------------------
    #: Re-read attempts allowed per scan chunk beyond the first (0 turns
    #: recovery off: the first read fault aborts the build).
    scan_retries: int = 3
    #: Simulated backoff before the first retry of a chunk, in ms; doubles
    #: per further attempt.  Charged to ``IOStats.backoff_ms``.
    retry_backoff_ms: float = 1.0
    #: When set, builders write a checkpoint here after every completed
    #: tree level (and remove it once the build finishes).
    checkpoint_path: str | None = None
    #: Resume from ``checkpoint_path`` if a valid checkpoint exists there
    #: (otherwise build from scratch).  The resumed tree is bit-identical
    #: to an uninterrupted build.
    resume: bool = False
    #: Memory budget in bytes for each CMP-S alive-interval record buffer
    #: (0 = unbounded).  On overflow the buffer is dropped and the level
    #: falls back to a CLOUDS-style extra scan that re-collects the alive
    #: records — correctness preserved, one extra scan charged.
    buffer_budget_bytes: int = 0

    # --- Parallelism knobs --------------------------------------------------
    #: Worker threads routing each scan's chunks (1 = serial).  Each worker
    #: accumulates private histogram/matrix/buffer deltas over a contiguous
    #: slice of the chunk list; deltas are merged deterministically in chunk
    #: order, so the built tree is bit-identical for any worker count.
    scan_workers: int = 1
    #: How scan workers execute: ``"thread"`` (shared-memory pool) or
    #: ``"process"`` (fork-per-scan workers that sidestep the GIL; falls
    #: back to threads on platforms without ``fork``).  Either backend
    #: produces bit-identical trees — the choice is purely about speed.
    scan_backend: str = "thread"

    def __post_init__(self) -> None:
        if self.n_intervals < 2:
            raise ValueError("n_intervals must be at least 2")
        if self.max_alive < 0:
            raise ValueError("max_alive must be non-negative")
        if self.max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if self.prune not in ("none", "public", "mdl"):
            raise ValueError("prune must be 'none', 'public' or 'mdl'")
        if self.criterion not in ("gini", "entropy"):
            raise ValueError("criterion must be 'gini' or 'entropy'")
        if self.clouds_mode not in ("ss", "sse"):
            raise ValueError("clouds_mode must be 'ss' or 'sse'")
        if self.interval_source not in ("reservoir", "sketch"):
            raise ValueError("interval_source must be 'reservoir' or 'sketch'")
        if not 0.0 < self.sketch_eps < 1.0:
            raise ValueError("sketch_eps must be in (0, 1)")
        if not 0.0 < self.linear_accept_ratio <= 1.0:
            raise ValueError("linear_accept_ratio must be in (0, 1]")
        if self.scan_retries < 0:
            raise ValueError("scan_retries must be non-negative")
        if self.retry_backoff_ms < 0:
            raise ValueError("retry_backoff_ms must be non-negative")
        if self.buffer_budget_bytes < 0:
            raise ValueError("buffer_budget_bytes must be non-negative")
        if self.scan_workers < 1:
            raise ValueError("scan_workers must be at least 1")
        if self.scan_backend not in ("thread", "process"):
            raise ValueError("scan_backend must be 'thread' or 'process'")
        if self.resume and not self.checkpoint_path:
            raise ValueError("resume requires checkpoint_path")

    def with_(self, **changes: object) -> "BuilderConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


DEFAULT_CONFIG = BuilderConfig()
