"""Gini index computations (Equations 1-3 of the paper).

All functions work on *class-count* vectors rather than label arrays: a set
``S`` is represented by ``counts[j]`` = number of records of class ``j``.
This is exactly the information the paper's histograms carry, and it lets
every routine vectorize over many candidate splits at once.
"""

from __future__ import annotations

import numpy as np

from repro.core import native_scan


def gini(counts: np.ndarray) -> np.ndarray | float:
    """Gini index of one or many sets (Equation 1).

    ``counts`` has class counts along its last axis; the result drops that
    axis.  An empty set has gini 0 by convention (it contributes nothing to
    a weighted partition index).
    """
    counts = np.asarray(counts, dtype=np.float64)
    n = counts.sum(axis=-1)
    with np.errstate(divide="ignore", invalid="ignore"):
        p2 = np.where(n[..., None] > 0, counts / np.maximum(n[..., None], 1.0), 0.0) ** 2
    out = np.where(n > 0, 1.0 - p2.sum(axis=-1), 0.0)
    return float(out) if out.ndim == 0 else out


def gini_partition(left: np.ndarray, right: np.ndarray) -> np.ndarray | float:
    """Weighted gini of a binary partition (Equation 2).

    ``left`` and ``right`` are class-count arrays (class axis last); they
    broadcast, so many candidate partitions can be evaluated at once.
    """
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    nl = left.sum(axis=-1)
    nr = right.sum(axis=-1)
    n = nl + nr
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(
            n > 0,
            (nl * gini(left) + nr * gini(right)) / np.maximum(n, 1.0),
            0.0,
        )
    return float(out) if out.ndim == 0 else out


def gini_partition_many(parts: list[np.ndarray] | np.ndarray) -> float:
    """Weighted gini of a k-way partition (used by the 3-way linear split).

    ``parts`` is a sequence of class-count vectors (or a 2-D array with one
    partition per row).
    """
    parts = np.asarray(parts, dtype=np.float64)
    sizes = parts.sum(axis=-1)
    n = sizes.sum()
    if n == 0:
        return 0.0
    return float((sizes * gini(parts)).sum() / n)


def boundary_ginis(cum: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Partition gini at every interval boundary at once (Equation 3).

    Parameters
    ----------
    cum:
        ``(b, c)`` cumulative class counts: ``cum[k, j]`` is the number of
        class-``j`` records with attribute value at or below boundary ``k``.
    totals:
        ``(c,)`` class counts of the whole set.

    Returns
    -------
    ``(b,)`` array of ``gini^D(S, a <= boundary_k)``.  Degenerate
    boundaries (all records on one side) evaluate to the gini of ``S``
    itself, so they are never preferred over a genuine split.
    """
    cum = np.asarray(cum, dtype=np.float64)
    totals = np.asarray(totals, dtype=np.float64)
    if cum.ndim != 2 or cum.shape[1] != len(totals):
        raise ValueError("cum must be (boundaries, classes) aligned with totals")
    native = native_scan.boundary_ginis(cum, totals)
    if native is not None:
        return native
    return _boundary_ginis_numpy(cum, totals)


def _boundary_ginis_numpy(cum: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Reference numpy sweep (the native kernel replicates it bit for bit)."""
    right = totals[None, :] - cum
    return np.asarray(gini_partition(cum, right), dtype=np.float64)


def best_boundary(cum: np.ndarray, totals: np.ndarray) -> tuple[int, float]:
    """Index and value of the lowest boundary gini; ties break leftward."""
    ginis = boundary_ginis(cum, totals)
    if len(ginis) == 0:
        raise ValueError("no boundaries to evaluate")
    k = int(np.argmin(ginis))
    return k, float(ginis[k])


def gini_gain(parent_counts: np.ndarray, split_gini: float) -> float:
    """Reduction in gini achieved by a split."""
    return float(gini(parent_counts)) - split_gini


def exact_best_threshold_sorted(
    v: np.ndarray, lab: np.ndarray, n_classes: int
) -> tuple[float, float]:
    """Exact best ``a <= C`` split of records already sorted by value.

    This is the primitive SPRINT applies to its presorted attribute lists.
    Returns ``(threshold, gini)``; the threshold is the largest value of
    the left side.  Raises ``ValueError`` when no split exists (fewer than
    two distinct values).
    """
    v = np.asarray(v, dtype=np.float64)
    lab = np.asarray(lab)
    if len(v) != len(lab):
        raise ValueError("values and labels must align")
    # One-hot cumulative class counts after each record.
    onehot = np.zeros((len(v), n_classes), dtype=np.float64)
    onehot[np.arange(len(v)), lab] = 1.0
    cum = np.cumsum(onehot, axis=0)
    # Candidate boundaries: between distinct consecutive values only.
    distinct = np.nonzero(v[:-1] < v[1:])[0]
    if len(distinct) == 0:
        raise ValueError("fewer than two distinct values; no split exists")
    totals = cum[-1]
    ginis = boundary_ginis(cum[distinct], totals)
    k = int(np.argmin(ginis))
    return float(v[distinct[k]]), float(ginis[k])


def exact_best_threshold(
    values: np.ndarray, labels: np.ndarray, n_classes: int
) -> tuple[float, float]:
    """Exact best ``a <= C`` split of an unsorted labelled sample.

    Sorts and delegates to :func:`exact_best_threshold_sorted` — the form
    CMP applies to buffered alive-interval records.
    """
    values = np.asarray(values, dtype=np.float64)
    labels = np.asarray(labels)
    if len(values) != len(labels):
        raise ValueError("values and labels must align")
    order = np.argsort(values, kind="stable")
    return exact_best_threshold_sorted(values[order], labels[order], n_classes)
