"""Linear-combination splits from histogram matrices (§2.3, Figures 11-12).

The full CMP uses its bivariate matrices to look for splitting *lines*
``a·x + b·y = c``.  A candidate line partitions the matrix cells into three
sets — under, above, and crossed-by-the-line (Figure 11) — and its quality
is the three-way weighted gini.  ``giniNegativeSlope`` (Figure 12) walks
the line's two intercepts greedily from ``(1, 1)``, each step extending
whichever intercept lowers the gini more, until no cell remains above the
line; ``giniPositiveSlope`` is the same walk on the matrix with its Y axis
flipped.

A winning line is converted to value space and carried by the builder as a
*projection band*: records with ``w = a·x + b·y`` at or below the band are
routed under, above the band over, and records inside the band — the
linear analog of an alive interval — are buffered so the exact intercept
``c`` is resolved from their sorted projections during the next scan.
This keeps linear splits exactly as cheap and exactly as exact as CMP's
univariate splits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import native_scan
from repro.core.gini import gini_partition_many
from repro.core.matrix import HistogramMatrix, MatrixSet

#: Safety cap on intercept-walk steps (the walk provably terminates well
#: below this; the cap guards degenerate grids).
_MAX_STEPS = 4096


@dataclass(frozen=True)
class GridLine:
    """A candidate line in grid coordinates: from ``(x, 0)`` to ``(0, y)``."""

    x: float
    y: float


def _require_proper(line: GridLine) -> None:
    """Reject degenerate lines (``x <= 0`` or ``y <= 0``).

    A degenerate intercept makes ``rhs = x * y`` collapse to zero and the
    cross-multiplied under/above tests misclassify cells — with both
    intercepts zero every cell satisfies *both* tests at once, so the
    partition double-counts.  The intercept walk starts at ``(1, 1)`` and
    only grows, so it can never propose such a line; anything else must
    not either.
    """
    if not (line.x > 0 and line.y > 0):
        raise ValueError(
            f"degenerate grid line ({line.x:g}, {line.y:g}): both "
            "intercepts must be positive"
        )


def classify_cells(qx: int, qy: int, line: GridLine) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Classify grid cells against a line (under / above / on).

    Cell ``(i, j)`` spans ``[i, i+1] x [j, j+1]`` in grid coordinates.  It
    is *under* when its far corner is on or below the line, *above* when
    its near corner is on or over it, and *on the line* otherwise.
    Comparisons use the cross-multiplied form so no division is involved.
    Degenerate lines raise ``ValueError`` (see :func:`_require_proper`).
    """
    _require_proper(line)
    i = np.arange(qx, dtype=np.float64)[:, None]
    j = np.arange(qy, dtype=np.float64)[None, :]
    rhs = line.x * line.y
    under = (i + 1) * line.y + (j + 1) * line.x <= rhs
    above = i * line.y + j * line.x >= rhs
    on = ~under & ~above
    return under, above, on


def line_gini(counts: np.ndarray, line: GridLine) -> float:
    """Three-way weighted gini of a matrix partitioned by ``line``."""
    qx, qy = counts.shape[0], counts.shape[1]
    under, above, on = classify_cells(qx, qy, line)
    parts = np.stack(
        [
            counts[under].sum(axis=0),
            counts[above].sum(axis=0),
            counts[on].sum(axis=0),
        ]
    )
    return gini_partition_many(parts)


class _WalkScratch:
    """Precomputed corner grids and flattened counts for one matrix."""

    def __init__(self, counts: np.ndarray) -> None:
        qx, qy, c = counts.shape
        self.qx, self.qy = qx, qy
        i = np.arange(qx, dtype=np.float64)[:, None]
        j = np.arange(qy, dtype=np.float64)[None, :]
        self.near_i = np.broadcast_to(i, (qx, qy)).reshape(-1)
        self.near_j = np.broadcast_to(j, (qx, qy)).reshape(-1)
        self.far_i = self.near_i + 1.0
        self.far_j = self.near_j + 1.0
        self.flat = counts.reshape(-1, c)
        self.total = self.flat.sum(axis=0)
        self.n = float(self.total.sum())

    def evaluate(self, line: GridLine) -> tuple[float, bool]:
        """Three-way gini of the line plus whether any cell is above it."""
        _require_proper(line)
        rhs = line.x * line.y
        under = (self.far_i * line.y + self.far_j * line.x) <= rhs
        above = (self.near_i * line.y + self.near_j * line.x) >= rhs
        cu = under.astype(np.float64) @ self.flat
        ca = above.astype(np.float64) @ self.flat
        co = self.total - cu - ca
        # Inline 3-way weighted gini: sum_p (n_p - sum(v^2)/n_p) / n.
        acc = 0.0
        for v in (cu, ca, co):
            s = v.sum()
            if s > 0:
                acc += s - float(v @ v) / s
        return acc / self.n if self.n > 0 else 0.0, bool(above.any())


def gini_slope_walk(counts: np.ndarray) -> tuple[float, GridLine]:
    """``giniNegativeSlope`` (Figure 12): greedy intercept walk.

    Returns the best (lowest) three-way gini seen along the walk and the
    line achieving it.  Flip the matrix's Y axis before calling to obtain
    ``giniPositiveSlope``.
    """
    counts = np.asarray(counts, dtype=np.float64)
    native = native_scan.slope_walk(counts, _MAX_STEPS)
    if native is not None:
        best_gini, bx, by = native
        return best_gini, GridLine(bx, by)
    scratch = _WalkScratch(counts)
    qx, qy = scratch.qx, scratch.qy
    # An intercept beyond qx + qy can no longer change which cells the line
    # crosses meaningfully; capping both bounds the walk at O(qx + qy).
    x_cap = float(qx + qy)
    y_cap = float(qx + qy)
    x, y = 1.0, 1.0
    line = GridLine(x, y)
    best_gini, above_any = scratch.evaluate(line)
    best_line = line
    for __ in range(_MAX_STEPS):
        if not above_any or (x >= x_cap and y >= y_cap):
            break  # the line no longer partitions the matrix into 3 parts
        linex = GridLine(x + 1.0, y) if x < x_cap else None
        liney = GridLine(x, y + 1.0) if y < y_cap else None
        gx, ax = scratch.evaluate(linex) if linex else (np.inf, above_any)
        gy, ay = scratch.evaluate(liney) if liney else (np.inf, above_any)
        if gx <= gy:
            x, line, g, above_any = x + 1.0, linex, gx, ax
        else:
            y, line, g, above_any = y + 1.0, liney, gy, ay
        if g < best_gini:
            best_gini = g
            best_line = line
    return best_gini, best_line


@dataclass(frozen=True)
class LineCandidate:
    """A value-space splitting line with its buffering band.

    ``w = a*x + b*y`` increases from the under side to the above side;
    records with ``w <= c_lo`` are certainly under, ``w > c_hi`` certainly
    above, and the band in between is buffered for exact resolution.
    """

    y_attr: int
    a: float
    b: float
    c_lo: float
    c_hi: float
    gini: float


def _grid_support(edges: np.ndarray) -> np.ndarray:
    """Finite value-space coordinates for grid points ``0 .. q``.

    The outer unbounded intervals get an extent equal to the median inner
    width (the same convention as ``edges_from_histogram``).
    """
    if len(edges) == 0:
        return np.array([0.0, 1.0])
    widths = np.diff(edges)
    typical = float(np.median(widths)) if len(widths) else 1.0
    typical = typical if typical > 0 else 1.0
    return np.concatenate(([edges[0] - typical], edges, [edges[-1] + typical]))


def _grid_to_value_vec(support: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Vectorized grid-coordinate to value-space map (linear extrapolation)."""
    u = np.asarray(u, dtype=np.float64)
    q = len(support) - 1
    out = np.interp(np.clip(u, 0, q), np.arange(q + 1), support)
    below = u < 0
    above = u > q
    if below.any():
        out[below] = support[0] + u[below] * (support[1] - support[0])
    if above.any():
        out[above] = support[-1] + (u[above] - q) * (support[-1] - support[-2])
    return out


def _grid_to_value(support: np.ndarray, u: float) -> float:
    """Map one grid coordinate to value space."""
    return float(_grid_to_value_vec(support, np.array([u]))[0])


def _line_to_candidate(
    matrix: HistogramMatrix,
    line: GridLine,
    flipped: bool,
    gini_value: float,
) -> LineCandidate | None:
    """Convert a grid-space line into a value-space candidate with a band."""
    qx, qy = matrix.qx, matrix.qy
    sx = _grid_support(matrix.x_edges)
    sy = _grid_support(matrix.y_edges)

    if not flipped:
        p1 = (_grid_to_value(sx, line.x), _grid_to_value(sy, 0.0))
        p2 = (_grid_to_value(sx, 0.0), _grid_to_value(sy, line.y))
        origin = (_grid_to_value(sx, 0.0), _grid_to_value(sy, 0.0))
    else:
        p1 = (_grid_to_value(sx, line.x), _grid_to_value(sy, float(qy)))
        p2 = (_grid_to_value(sx, 0.0), _grid_to_value(sy, qy - line.y))
        origin = (_grid_to_value(sx, 0.0), _grid_to_value(sy, float(qy)))

    # Normal to the line through p1, p2.
    a = p2[1] - p1[1]
    b = p1[0] - p2[0]
    c = a * p1[0] + b * p1[1]
    if abs(a) < 1e-12 * max(abs(b), 1.0):
        return None  # effectively univariate; the 1-D machinery covers it
    # Orient so the under region (containing the walk's origin) has w < c.
    if a * origin[0] + b * origin[1] > c:
        a, b, c = -a, -b, -c
    # Normalize the x coefficient to +-1 (the paper normalizes to 1).
    scale = abs(a)
    a, b, c = a / scale, b / scale, c / scale

    # Band: extreme corner projections of the cells the line crosses.
    under, above, on = classify_cells(qx, qy, line)
    if flipped:
        on = on[:, ::-1]
    if not on.any():
        return None
    ii, jj = np.nonzero(on)
    corners = []
    for di in (0, 1):
        for dj in (0, 1):
            wx = _grid_to_value_vec(sx, ii + float(di))
            wy = _grid_to_value_vec(sy, jj + float(dj))
            corners.append(a * wx + b * wy)
    allw = np.concatenate(corners)
    c_lo = float(allw.min())
    c_hi = float(allw.max())
    if not c_lo < c_hi:
        return None
    return LineCandidate(
        y_attr=matrix.y_attr, a=a, b=b, c_lo=c_lo, c_hi=c_hi, gini=gini_value
    )


#: Grids larger than this (per axis) are decimated before the intercept
#: walk; line *direction* discovery does not need fine resolution, and the
#: band is re-derived on the full grid afterwards via the exact-resolution
#: buffering anyway.
WALK_MAX_AXIS = 24


def _decimated(matrix: HistogramMatrix) -> HistogramMatrix:
    """A coarsened copy of ``matrix`` for the intercept walk."""
    fx = -(-matrix.qx // WALK_MAX_AXIS)
    fy = -(-matrix.qy // WALK_MAX_AXIS)
    if fx == 1 and fy == 1:
        return matrix
    qx = -(-matrix.qx // fx)
    qy = -(-matrix.qy // fy)
    c = matrix.n_classes
    padded = np.zeros((qx * fx, qy * fy, c))
    padded[: matrix.qx, : matrix.qy] = matrix.counts
    coarse_counts = padded.reshape(qx, fx, qy, fy, c).sum(axis=(1, 3))
    coarse = HistogramMatrix(
        matrix.x_attr,
        matrix.y_attr,
        matrix.x_edges[fx - 1 :: fx][: qx - 1],
        matrix.y_edges[fy - 1 :: fy][: qy - 1],
        c,
    )
    coarse.counts = coarse_counts
    # Extrema per coarse bin: min/max over the merged fine bins.
    coarse.y_stats.vmin = np.pad(
        matrix.y_stats.vmin, (0, qy * fy - matrix.qy), constant_values=np.inf
    ).reshape(qy, fy).min(axis=1)
    coarse.y_stats.vmax = np.pad(
        matrix.y_stats.vmax, (0, qy * fy - matrix.qy), constant_values=-np.inf
    ).reshape(qy, fy).max(axis=1)
    return coarse


def best_linear_candidate(mset: MatrixSet) -> LineCandidate | None:
    """Best splitting line over every matrix and both slopes (§2.3).

    Returns ``None`` when no matrix yields a usable line.  The caller
    applies the paper's acceptance heuristics (trigger threshold and the
    20 % improvement requirement).
    """
    best: LineCandidate | None = None
    for matrix in mset.matrices.values():
        if matrix.qx < 2 or matrix.qy < 2:
            continue
        coarse = _decimated(matrix)
        for flipped in (False, True):
            counts = coarse.counts[:, ::-1, :] if flipped else coarse.counts
            g, line = gini_slope_walk(counts)
            if best is not None and g >= best.gini:
                continue
            cand = _line_to_candidate(coarse, line, flipped, g)
            if cand is not None and (best is None or cand.gini < best.gini):
                best = cand
    return best
