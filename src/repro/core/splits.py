"""Split criteria stored at decision-tree nodes.

Three forms, matching the paper:

* ``a <= C`` on a continuous attribute (SPRINT, CLOUDS, CMP-S, CMP-B);
* ``a in L`` subset splits on categorical attributes;
* ``x + b*y <= c`` linear-combination splits on two continuous attributes
  (the full CMP, §2.3 — e.g. ``salary + 0.93*commission <= 95 796``).

A split maps a batch of records to a boolean *goes-left* vector.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.data.schema import Schema


class Split(ABC):
    """Abstract binary split criterion."""

    @abstractmethod
    def goes_left(self, X: np.ndarray) -> np.ndarray:
        """Boolean vector: True where the record routes to the left child."""

    @abstractmethod
    def describe(self, schema: Schema | None = None) -> str:
        """Human-readable form of the criterion."""

    @abstractmethod
    def attributes(self) -> tuple[int, ...]:
        """Indices of the attributes this split tests."""


def _attr_name(schema: Schema | None, attr: int) -> str:
    if schema is None:
        return f"x{attr}"
    return schema.attributes[attr].name


@dataclass(frozen=True)
class NumericSplit(Split):
    """``value(attr) <= threshold`` routes left.

    ``n_candidates`` records how many candidate thresholds the builder
    examined when it chose this split (interval boundaries plus distinct
    buffered values).  It does not affect routing; MDL pruning uses it
    for the SLIQ/C4.5 value term — ``log2(candidate count)`` bits rather
    than ``log2(n_records)`` — falling back to the record count when the
    builder did not supply it.
    """

    attr: int
    threshold: float
    n_candidates: int | None = None

    def goes_left(self, X: np.ndarray) -> np.ndarray:
        return X[:, self.attr] <= self.threshold

    def describe(self, schema: Schema | None = None) -> str:
        return f"{_attr_name(schema, self.attr)} <= {self.threshold:g}"

    def attributes(self) -> tuple[int, ...]:
        return (self.attr,)


@dataclass(frozen=True)
class CategoricalSplit(Split):
    """``code(attr) in left set`` routes left.

    ``left_mask`` is a boolean array over category codes.
    """

    attr: int
    left_mask: tuple[bool, ...]

    def goes_left(self, X: np.ndarray, unseen_left: bool = False) -> np.ndarray:
        """Boolean goes-left vector; ``unseen_left`` routes codes outside
        ``left_mask`` (categories never seen at training time, or negative
        codes from NaN casts).

        Indexing ``mask[codes]`` directly raised ``IndexError`` on unseen
        codes; the tree walker and the compiled engine both pass the
        heavier child as the default so their routing agrees.
        """
        mask = np.asarray(self.left_mask, dtype=bool)
        codes = X[:, self.attr].astype(np.intp)
        seen = (codes >= 0) & (codes < len(mask))
        if seen.all():
            return mask[codes]
        out = np.full(len(codes), unseen_left, dtype=bool)
        out[seen] = mask[codes[seen]]
        return out

    def describe(self, schema: Schema | None = None) -> str:
        name = _attr_name(schema, self.attr)
        if schema is not None and schema.attributes[self.attr].categories:
            cats = schema.attributes[self.attr].categories
            members = [cats[i] for i, m in enumerate(self.left_mask) if m]
        else:
            members = [str(i) for i, m in enumerate(self.left_mask) if m]
        return f"{name} in {{{', '.join(members)}}}"

    def attributes(self) -> tuple[int, ...]:
        return (self.attr,)


@dataclass(frozen=True)
class LinearSplit(Split):
    """``a * value(attr_x) + b * value(attr_y) <= c`` routes left.

    The paper normalizes the X coefficient to 1 (Figure 13's
    ``salary + 0.93 x commission``); ``a`` is kept to ``+-1`` so the
    under side of a line can always be expressed with ``<=`` regardless
    of the line's orientation, and ``b`` may be negative for
    positive-slope splitting lines.
    """

    attr_x: int
    attr_y: int
    b: float
    c: float
    a: float = 1.0

    def goes_left(self, X: np.ndarray) -> np.ndarray:
        return self.project(X) <= self.c

    def project(self, X: np.ndarray) -> np.ndarray:
        """The linear form ``a*x + b*y`` evaluated per record."""
        return self.a * X[:, self.attr_x] + self.b * X[:, self.attr_y]

    def describe(self, schema: Schema | None = None) -> str:
        xn = _attr_name(schema, self.attr_x)
        yn = _attr_name(schema, self.attr_y)
        sign = "+" if self.b >= 0 else "-"
        lead = "" if self.a >= 0 else "-"
        return f"{lead}{xn} {sign} {abs(self.b):.4g}*{yn} <= {self.c:g}"

    def attributes(self) -> tuple[int, ...]:
        return (self.attr_x, self.attr_y)
