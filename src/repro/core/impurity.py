"""Pluggable impurity criteria (§1.1: "Several splitting criteria have
been used in the past").

The paper standardizes on the gini index "to make it easier to compare
different algorithms", and all of CMP's estimation machinery (Equations
4-5) is gini-specific.  The *exact* algorithms (SPRINT, SLIQ, RainForest)
have no such dependency, so this module lets them run under information
gain (entropy) as well — useful for studying how criterion choice
interacts with the paper's comparisons.

``BuilderConfig.criterion`` selects the criterion; the CMP family and
CLOUDS reject anything but ``"gini"`` explicitly.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

Criterion = Callable[[np.ndarray], np.ndarray | float]


def gini_impurity(counts: np.ndarray) -> np.ndarray | float:
    """Gini index (Equation 1); see :func:`repro.core.gini.gini`."""
    from repro.core.gini import gini

    return gini(counts)


def entropy_impurity(counts: np.ndarray) -> np.ndarray | float:
    """Shannon entropy in bits, 0 for empty sets."""
    counts = np.asarray(counts, dtype=np.float64)
    n = counts.sum(axis=-1)
    with np.errstate(divide="ignore", invalid="ignore"):
        p = np.where(n[..., None] > 0, counts / np.maximum(n[..., None], 1.0), 0.0)
        plogp = np.where(p > 0, p * np.log2(np.maximum(p, 1e-300)), 0.0)
    out = np.where(n > 0, -plogp.sum(axis=-1), 0.0)
    return float(out) if out.ndim == 0 else out


CRITERIA: dict[str, Criterion] = {
    "gini": gini_impurity,
    "entropy": entropy_impurity,
}


def get_criterion(name: str) -> Criterion:
    """Look a criterion up by config name."""
    try:
        return CRITERIA[name]
    except KeyError:
        raise ValueError(
            f"unknown criterion {name!r}; expected one of {sorted(CRITERIA)}"
        ) from None


def partition_impurity(
    left: np.ndarray, right: np.ndarray, criterion: Criterion = gini_impurity
) -> np.ndarray | float:
    """Weighted impurity of a binary partition (Equation 2, generalized)."""
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    nl = left.sum(axis=-1)
    nr = right.sum(axis=-1)
    n = nl + nr
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(
            n > 0,
            (nl * np.asarray(criterion(left)) + nr * np.asarray(criterion(right)))
            / np.maximum(n, 1.0),
            0.0,
        )
    return float(out) if out.ndim == 0 else out


def boundary_impurities(
    cum: np.ndarray, totals: np.ndarray, criterion: Criterion = gini_impurity
) -> np.ndarray:
    """Partition impurity at every boundary (Equation 3, generalized)."""
    cum = np.asarray(cum, dtype=np.float64)
    totals = np.asarray(totals, dtype=np.float64)
    right = totals[None, :] - cum
    return np.asarray(partition_impurity(cum, right, criterion), dtype=np.float64)


def best_threshold_sorted(
    v: np.ndarray,
    lab: np.ndarray,
    n_classes: int,
    criterion: Criterion = gini_impurity,
) -> tuple[float, float]:
    """Exact best ``a <= C`` split under any criterion (sorted input)."""
    v = np.asarray(v, dtype=np.float64)
    lab = np.asarray(lab)
    if len(v) != len(lab):
        raise ValueError("values and labels must align")
    onehot = np.zeros((len(v), n_classes), dtype=np.float64)
    onehot[np.arange(len(v)), lab] = 1.0
    cum = np.cumsum(onehot, axis=0)
    distinct = np.nonzero(v[:-1] < v[1:])[0]
    if len(distinct) == 0:
        raise ValueError("fewer than two distinct values; no split exists")
    totals = cum[-1]
    scores = boundary_impurities(cum[distinct], totals, criterion)
    k = int(np.argmin(scores))
    return float(v[distinct[k]]), float(scores[k])
