"""CMP-S: the single-variable CMP classifier (Figure 4 of the paper).

CMP-S is "a variation of the CLOUDS algorithm specialized to reduce disk
access up to 50%".  Per tree level it performs exactly **one** scan of the
training set, during which it simultaneously:

1. routes each record from its (pending) parent node into the preliminary
   subnodes created by the parent's *estimated* split, updating the fresh
   per-subnode histograms (Figure 4, lines 05-09);
2. sets aside records that fall into an alive interval of the parent's
   split in an in-memory buffer (line 07);

and after the scan:

3. sorts each buffer to resolve the parent's **exact** split threshold and
   merges the preliminary subnodes accordingly (lines 11-13, Figure 3);
4. analyzes the now-complete child histograms, picks each child's splitting
   attribute, estimates its split and its alive intervals (lines 15-19).

Bookkeeping follows the paper: the training set is never sorted, copied or
modified; a ``nid`` array maps each record to its node (slot) and is charged
as disk-swapped auxiliary I/O.  Two extra scans precede the loop: a
quantiling pass that fixes the root interval grid (charged to CLOUDS
identically, see DESIGN.md §3) and the root-histogram pass of line 03.
Child grids are re-quantiled from the parent's histograms without touching
the data (:func:`repro.data.discretize.edges_from_histogram`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.core.builder import (
    PartState,
    adaptive_intervals,
    RecordBuffer,
    TreeBuilder,
    classify_zones,
    make_part_hists,
    resolve_exact_threshold,
    zone_boundaries,
)
from repro.core.checkpoint import SlotCounter, loop_state as _loop_state
from repro.core.histogram import CategoryHistogram, ClassHistogram
from repro.core.parallel import ScanEngine
from repro.core.intervals import analyze_attribute, choose_split_attribute
from repro.core.splits import CategoricalSplit, NumericSplit, Split
from repro.core.tree import DecisionTree, Node, TreeAccount
from repro.data.dataset import Dataset
from repro.data.discretize import ReservoirSampler, edges_from_histogram, equal_depth_edges
from repro.data.schema import Schema
from repro.io.metrics import BuildStats
from repro.io.pager import ScanChunk

Hists = dict[int, ClassHistogram | CategoryHistogram]


@dataclass
class PendingSplit:
    """A split decided (possibly only estimated) but not yet materialized.

    ``exact_split`` is set for splits known exactly at decision time
    (categorical subsets, boundary splits with no alive interval); then the
    pending merely routes records into two parts on the next scan.
    Otherwise the split is *estimated*: records are routed into
    ``len(alive_bounds) + 1`` preliminary parts, alive-interval records are
    buffered, and the threshold is resolved after the scan.
    """

    node: Node
    parent_slot: int
    child_edges: dict[int, np.ndarray]
    exact_split: Split | None = None
    attr: int = -1
    zone_bounds: np.ndarray = field(default_factory=lambda: np.empty(0))
    alive_bounds: list[tuple[float, float]] = field(default_factory=list)
    alive_cum_below: list[np.ndarray] = field(default_factory=list)
    totals: np.ndarray = field(default_factory=lambda: np.empty(0))
    best_boundary_value: float | None = None
    best_boundary_gini: float = np.inf
    parts: list[PartState] = field(default_factory=list)
    buffer: RecordBuffer = field(default_factory=RecordBuffer)

    @property
    def is_estimated(self) -> bool:
        """True when the exact threshold is still pending."""
        return self.exact_split is None

    def scan_delta(self) -> "PendingSplit":
        """Structural clone with empty accumulators (one worker's delta).

        Decision-time fields (split, zones, part slots) are shared
        read-only; parts and buffer are fresh so each worker thread
        accumulates privately during a parallel scan.
        """
        return replace(
            self,
            parts=[part.clone_empty() for part in self.parts],
            buffer=RecordBuffer(budget_bytes=self.buffer.budget_bytes),
        )

    def merge_scan_delta(self, delta: "PendingSplit") -> None:
        """Fold one worker's delta in; callers merge in chunk order."""
        for part, dpart in zip(self.parts, delta.parts):
            part.merge_from(dpart)
        self.buffer.extend_from(delta.buffer)

    def delta_nbytes(self) -> int:
        """Bytes one fresh scan delta occupies (buffers start empty)."""
        return sum(part.nbytes() for part in self.parts)

    def region_bounds(self) -> list[tuple[float, float]]:
        """Value range covered by each preliminary part, in order."""
        bounds: list[tuple[float, float]] = []
        prev_hi = -np.inf
        for lo, hi in self.alive_bounds:
            bounds.append((prev_hi, lo))
            prev_hi = hi
        bounds.append((prev_hi, np.inf))
        return bounds


def merge_contiguous(indices: list[int]) -> list[tuple[int, int]]:
    """Collapse sorted interval indices into inclusive contiguous runs."""
    runs: list[tuple[int, int]] = []
    for i in indices:
        if runs and i == runs[-1][1] + 1:
            runs[-1] = (runs[-1][0], i)
        else:
            runs.append((i, i))
    return runs


class CMPSBuilder(TreeBuilder):
    """The CMP-S classifier."""

    name = "CMP-S"
    supports_integrated_pruning = True

    def _build(self, dataset: Dataset, stats: BuildStats) -> DecisionTree:
        if self.config.criterion != "gini":
            raise ValueError(f"{self.name} supports only the gini criterion")
        engine = self._scan_engine()
        try:
            return self._build_loop(dataset, stats, engine)
        finally:
            stats.parallel_batches += engine.batches_dispatched
            engine.close()

    def _build_loop(
        self, dataset: Dataset, stats: BuildStats, engine: ScanEngine
    ) -> DecisionTree:
        cfg = self.config
        schema = dataset.schema
        n, c = dataset.n_records, dataset.n_classes
        table = self._open_table(dataset, stats)
        ckpt = self._checkpointer(dataset)
        cont = schema.continuous_indices()

        state = None
        if ckpt is not None and cfg.resume and ckpt.exists():
            level, state = ckpt.load(stats)
        if state is not None:
            account: TreeAccount = state["account"]
            root: Node = state["root"]
            nid: np.ndarray = state["nid"]
            pendings: dict[int, PendingSplit] = state["pendings"]
            next_slot: SlotCounter = state["next_slot"]
        else:
            account = TreeAccount()
            rng = np.random.default_rng(cfg.seed)

            # --- Scan 1: quantiling pass (root grid + class totals). ------
            # Summaries consume records in stream order, so this scan
            # stays serial under every worker count.  Both interval
            # sources expose .extend(values) / .edges(q): the reservoir
            # is the paper's uniform sample; the sketch is the streaming
            # alternative with a deterministic rank-error bound
            # (config.interval_source, PAPERS.md streaming split work).
            if cfg.interval_source == "sketch":
                from repro.stream.sketch import QuantileSketch

                summaries: dict[int, object] = {
                    j: QuantileSketch(cfg.sketch_eps) for j in cont
                }
            else:
                summaries = {
                    j: ReservoirSampler(cfg.reservoir_capacity, rng)
                    for j in cont
                }
            totals = np.zeros(c, dtype=np.float64)
            with stats.phase("scan"):
                for chunk in table.scan():
                    totals += np.bincount(chunk.y, minlength=c)
                    for j in cont:
                        summaries[j].extend(chunk.X[:, j])
            root_edges = {
                j: summaries[j].edges(cfg.n_intervals) for j in cont
            }
            del summaries
            root = account.new_node(0, totals)

            nid = np.zeros(n, dtype=np.int64)
            next_slot = SlotCounter()

            # --- Scan 2: root histograms (Figure 4, line 03). -------------
            root_part = PartState(0, c, make_part_hists(schema, root_edges))
            stats.memory.allocate("hist/root", root_part.nbytes())
            with stats.phase("scan"):
                engine.scan(
                    table,
                    route=lambda chunk, part: part.update(chunk.X, chunk.y),
                    live=root_part,
                    make_delta=root_part.clone_empty,
                    merge_delta=root_part.merge_from,
                    memory=stats.memory,
                    delta_nbytes=root_part.nbytes(),
                )
            self._charge_nid(stats, n)

            pendings = {}
            with stats.phase("resolve"):
                first = self._decide(root, 0, root_part.hists, next_slot, schema, stats)
            stats.memory.release("hist/root")
            if first is not None:
                pendings[0] = first
            level = 0
            if ckpt is not None:
                with stats.phase("checkpoint"):
                    ckpt.save(level, _loop_state(account, root, nid, pendings, next_slot), stats)

        # --- One scan per level (Figure 4, lines 01-21). ------------------
        while pendings:
            with stats.tracer.span("level", level=level + 1, pendings=len(pendings)):
                live = pendings
                with stats.phase("scan"):
                    engine.scan(
                        table,
                        route=lambda chunk, tgt: self._route_chunk(chunk, nid, tgt),
                        live=live,
                        make_delta=lambda: {
                            slot: p.scan_delta() for slot, p in live.items()
                        },
                        merge_delta=lambda delta: [
                            live[slot].merge_scan_delta(d) for slot, d in delta.items()
                        ],
                        memory=stats.memory,
                        delta_nbytes=sum(p.delta_nbytes() for p in live.values()),
                        writeback=nid,
                    )
                self._charge_nid(stats, n)
                overflowed = [
                    p for p in pendings.values() if p.is_estimated and p.buffer.overflowed
                ]
                if overflowed:
                    with stats.phase("scan"):
                        self._refill_overflowed(table, nid, overflowed, stats, n, engine)
                for p in pendings.values():
                    stats.memory.allocate(f"buf/{p.node.node_id}", p.buffer.nbytes())

                with stats.phase("resolve"):
                    new_pendings: dict[int, PendingSplit] = {}
                    remap: dict[int, int] = {}
                    for p in pendings.values():
                        children = self._resolve(p, nid, remap, next_slot, account, schema, stats)
                        stats.memory.release(f"parts/{p.node.node_id}")
                        stats.memory.release(f"buf/{p.node.node_id}")
                        for child, slot, hists in children:
                            stats.memory.allocate(f"hist/{child.node_id}", _hists_nbytes(hists))
                            q = self._decide(child, slot, hists, next_slot, schema, stats)
                            stats.memory.release(f"hist/{child.node_id}")
                            if q is not None:
                                new_pendings[slot] = q
                    if remap:
                        self._apply_remap(nid, remap, stats)
                pendings = new_pendings
                if cfg.prune == "public":
                    pendings = self._public_pass(root, pendings)
                level += 1
                if ckpt is not None:
                    with stats.phase("checkpoint"):
                        ckpt.save(level, _loop_state(account, root, nid, pendings, next_slot), stats)

        if ckpt is not None:
            ckpt.clear()
        return DecisionTree(root, schema)

    def _refill_overflowed(
        self,
        table,
        nid: np.ndarray,
        overflowed: list[PendingSplit],
        stats: BuildStats,
        n: int,
        engine: ScanEngine,
    ) -> None:
        """Re-collect dropped alive-interval records with one extra scan.

        The CLOUDS-style degradation path: when a node's alive buffer
        blew its memory budget during the level's scan, its records are
        recoverable — alive records keep their parent's ``nid`` slot
        (only preliminary-region records were reassigned).  One shared
        pass (chunk-parallel like any other scan; worker sub-buffers
        concatenate in chunk order) refills every overflowed buffer,
        preserving the exact append order of the un-budgeted path, so
        resolution — and the final tree — is unchanged; only the extra
        scan is charged.
        """
        stats.buffer_overflow_rescans += 1
        by_slot: dict[int, PendingSplit] = {}
        for p in overflowed:
            p.buffer = RecordBuffer()  # unbounded: contents fit by paper's premise
            by_slot[p.parent_slot] = p

        def route(chunk: ScanChunk, buffers: dict[int, RecordBuffer]) -> None:
            slots = nid[chunk.start : chunk.stop]
            for slot, buf in buffers.items():
                mask = slots == slot
                if mask.any():
                    buf.append(chunk.X[mask], chunk.y[mask], chunk.rids[mask])

        engine.scan(
            table,
            route=route,
            live={slot: p.buffer for slot, p in by_slot.items()},
            make_delta=lambda: {slot: RecordBuffer() for slot in by_slot},
            merge_delta=lambda delta: [
                by_slot[slot].buffer.extend_from(buf) for slot, buf in delta.items()
            ],
        )
        stats.io.count_aux_read(n)

    # -- scan-time routing ---------------------------------------------------

    def _route_chunk(
        self,
        chunk: ScanChunk,
        nid: np.ndarray,
        pendings: dict[int, PendingSplit],
    ) -> None:
        slots = nid[chunk.start : chunk.stop]
        for slot, p in pendings.items():
            mask = slots == slot
            if not mask.any():
                continue
            X = chunk.X[mask]
            y = chunk.y[mask]
            rids = chunk.rids[mask]
            if p.exact_split is not None:
                left = p.exact_split.goes_left(X)
                p.parts[0].update(X[left], y[left])
                p.parts[1].update(X[~left], y[~left])
                nid[rids[left]] = p.parts[0].slot
                nid[rids[~left]] = p.parts[1].slot
                continue
            zones = classify_zones(X[:, p.attr], p.zone_bounds)
            alive = (zones & 1) == 1
            if alive.any():
                p.buffer.append(X[alive], y[alive], rids[alive])
            for r, part in enumerate(p.parts):
                m = zones == 2 * r
                if m.any():
                    part.update(X[m], y[m])
                    nid[rids[m]] = part.slot

    # -- decisions (Figure 4, lines 15-19) ------------------------------------

    def _decide(
        self,
        node: Node,
        slot: int,
        hists: Hists,
        next_slot: Callable[[], int],
        schema: Schema,
        stats: BuildStats,
    ) -> PendingSplit | None:
        """Pick the node's split (estimated or exact) or make it a leaf."""
        cfg = self.config
        if (
            node.n_records < cfg.min_records
            or node.gini <= cfg.min_gini
            or node.depth >= cfg.max_depth
        ):
            return None
        cont = schema.continuous_indices()
        analyses = [analyze_attribute(j, hists[j]) for j in cont]  # type: ignore[arg-type]
        winner = choose_split_attribute(analyses, cfg.max_alive)
        cont_score = winner.score if winner is not None else np.inf

        best_cat_gini = np.inf
        best_cat: tuple[int, np.ndarray] | None = None
        for j in schema.categorical_indices():
            hist = hists[j]
            assert isinstance(hist, CategoryHistogram)
            try:
                mask, g = hist.best_subset_split()
            except ValueError:
                continue
            if g < best_cat_gini:
                best_cat_gini, best_cat = g, (j, mask)

        if min(cont_score, best_cat_gini) >= node.gini - cfg.min_gain:
            return None

        child_edges = self._refined_edges(hists, cont, node.n_records)
        if best_cat is not None and best_cat_gini < cont_score:
            j, mask = best_cat
            split: Split = CategoricalSplit(j, tuple(bool(b) for b in mask))
            return self._new_pending_exact(node, slot, split, child_edges, next_slot, schema, stats)

        assert winner is not None
        hist = hists[winner.attr]
        assert isinstance(hist, ClassHistogram)
        if not winner.alive:
            split = NumericSplit(
                winner.attr,
                float(winner.edges[winner.best_boundary]),
                n_candidates=max(1, len(winner.edges)),
            )
            return self._new_pending_exact(node, slot, split, child_edges, next_slot, schema, stats)

        # Estimated split around the alive intervals.
        q = hist.n_intervals
        runs = merge_contiguous(winner.alive)
        alive_bounds: list[tuple[float, float]] = []
        alive_cum_below: list[np.ndarray] = []
        for i0, i1 in runs:
            lo = -np.inf if i0 == 0 else float(hist.edges[i0 - 1])
            hi = np.inf if i1 == q - 1 else float(hist.edges[i1])
            alive_bounds.append((lo, hi))
            alive_cum_below.append(hist.cum_below(i0))
        best_val = (
            float(winner.edges[winner.best_boundary])
            if winner.has_boundaries
            else None
        )
        p = PendingSplit(
            node=node,
            parent_slot=slot,
            child_edges=child_edges,
            attr=winner.attr,
            zone_bounds=zone_boundaries(alive_bounds),
            alive_bounds=alive_bounds,
            alive_cum_below=alive_cum_below,
            totals=hist.totals(),
            best_boundary_value=best_val,
            best_boundary_gini=winner.gini_min,
            buffer=RecordBuffer(budget_bytes=cfg.buffer_budget_bytes),
        )
        n_parts = len(alive_bounds) + 1
        p.parts = [
            PartState(next_slot(), schema.n_classes, make_part_hists(schema, child_edges))
            for _ in range(n_parts)
        ]
        stats.memory.allocate(
            f"parts/{node.node_id}", sum(part.nbytes() for part in p.parts)
        )
        return p

    def _new_pending_exact(
        self,
        node: Node,
        slot: int,
        split: Split,
        child_edges: dict[int, np.ndarray],
        next_slot: Callable[[], int],
        schema: Schema,
        stats: BuildStats,
    ) -> PendingSplit:
        p = PendingSplit(node=node, parent_slot=slot, child_edges=child_edges, exact_split=split)
        p.parts = [
            PartState(next_slot(), schema.n_classes, make_part_hists(schema, child_edges))
            for _ in range(2)
        ]
        stats.memory.allocate(
            f"parts/{node.node_id}", sum(part.nbytes() for part in p.parts)
        )
        return p

    def _refined_edges(
        self, hists: Hists, cont: list[int], n_records: float
    ) -> dict[int, np.ndarray]:
        """Re-quantile each continuous attribute from the node's histogram."""
        q = adaptive_intervals(self.config.n_intervals, n_records)
        out: dict[int, np.ndarray] = {}
        for j in cont:
            hist = hists[j]
            assert isinstance(hist, ClassHistogram)
            out[j] = edges_from_histogram(
                hist.edges, hist.counts.sum(axis=1), q, hist.vmin, hist.vmax
            )
        return out

    # -- resolution (Figure 4, lines 11-13) -----------------------------------

    def _resolve(
        self,
        p: PendingSplit,
        nid: np.ndarray,
        remap: dict[int, int],
        next_slot: Callable[[], int],
        account: TreeAccount,
        schema: Schema,
        stats: BuildStats,
    ) -> list[tuple[Node, int, Hists]]:
        """Materialize a pending split; returns the children to decide on."""
        node = p.node
        if p.exact_split is not None:
            lpart, rpart = p.parts
            if lpart.class_counts.sum() == 0 or rpart.class_counts.sum() == 0:
                # Degenerate in practice (can happen when the deciding
                # histogram was approximate at the edges): keep as a leaf.
                for part in p.parts:
                    remap[part.slot] = p.parent_slot
                return []
            node.split = p.exact_split
            left = account.new_node(node.depth + 1, lpart.class_counts)
            right = account.new_node(node.depth + 1, rpart.class_counts)
            node.left, node.right = left, right
            return [
                (left, lpart.slot, lpart.hists),
                (right, rpart.slot, rpart.hists),
            ]

        Xb, yb, rids = p.buffer.concatenated()
        buf_vals = Xb[:, p.attr] if len(yb) else np.empty(0)
        res = resolve_exact_threshold(
            p.totals,
            p.best_boundary_value,
            p.best_boundary_gini,
            p.alive_bounds,
            p.alive_cum_below,
            buf_vals,
            yb,
        )
        if res is None:
            for part in p.parts:
                remap[part.slot] = p.parent_slot
            return []
        if res.from_buffer:
            stats.splits_resolved_exactly += 1
        threshold = res.threshold

        lslot, rslot = next_slot(), next_slot()
        left_hists = make_part_hists(schema, p.child_edges)
        right_hists = make_part_hists(schema, p.child_edges)
        left_counts = np.zeros(schema.n_classes, dtype=np.float64)
        right_counts = np.zeros(schema.n_classes, dtype=np.float64)
        for part, (__, hi) in zip(p.parts, p.region_bounds()):
            if hi <= threshold:
                target_hists, target_slot = left_hists, lslot
                left_counts += part.class_counts
            else:
                target_hists, target_slot = right_hists, rslot
                right_counts += part.class_counts
            for j, hist in part.hists.items():
                target_hists[j].merge_from(hist)  # type: ignore[arg-type]
            remap[part.slot] = target_slot

        if len(yb):
            goes_left = buf_vals <= threshold
            for j in left_hists:
                left_hists[j].update(Xb[goes_left][:, j], yb[goes_left])
                right_hists[j].update(Xb[~goes_left][:, j], yb[~goes_left])
            left_counts += np.bincount(yb[goes_left], minlength=schema.n_classes)
            right_counts += np.bincount(yb[~goes_left], minlength=schema.n_classes)
            nid[rids[goes_left]] = lslot
            nid[rids[~goes_left]] = rslot

        if left_counts.sum() == 0 or right_counts.sum() == 0:
            # Defensive: candidate validation should prevent this.
            for part in p.parts:
                remap[part.slot] = p.parent_slot
            remap[lslot] = p.parent_slot
            remap[rslot] = p.parent_slot
            return []

        node.split = NumericSplit(p.attr, threshold, n_candidates=res.n_candidates)
        left = account.new_node(node.depth + 1, left_counts)
        right = account.new_node(node.depth + 1, right_counts)
        node.left, node.right = left, right
        return [(left, lslot, left_hists), (right, rslot, right_hists)]

    # -- bookkeeping -----------------------------------------------------------

    @staticmethod
    def _charge_nid(stats: BuildStats, n: int) -> None:
        """Charge the per-scan nid array swap (paper: kept on disk)."""
        stats.io.count_aux_read(n)
        stats.io.count_aux_write(n)

    @staticmethod
    def _apply_remap(nid: np.ndarray, remap: dict[int, int], stats: BuildStats) -> None:
        max_slot = int(nid.max())
        lookup = np.arange(max(max_slot + 1, max(remap) + 1), dtype=np.int64)
        for src, dst in remap.items():
            lookup[src] = dst
        nid[:] = lookup[nid]

    def _public_pass(
        self, root: Node, pendings: dict[int, PendingSplit]
    ) -> dict[int, PendingSplit]:
        """Integrated PUBLIC(1) pruning between levels."""
        from repro.pruning.public import public_prune_pass

        open_ids = {p.node.node_id for p in pendings.values()}
        removed = public_prune_pass(root, open_ids)
        if not removed:
            return pendings
        return {
            slot: p for slot, p in pendings.items() if p.node.node_id not in removed
        }


def _hists_nbytes(hists: Hists) -> int:
    return sum(h.nbytes() for h in hists.values())
