"""Alive-interval analysis (§2.1 "Sampling the splitting points…").

Given a node's per-attribute histograms, this module decides:

* ``gini_a^min`` — the best boundary gini of each attribute;
* ``gini_a^est`` — the per-interval lower-bound estimates;
* which attribute wins the split (CMP-S restriction 1: the attribute whose
  best estimate is minimal — alive intervals on other attributes are
  pruned);
* which of the winner's intervals stay *alive* (restriction 2: estimates
  strictly below ``gini_a^min``, capped to the lowest ``N``).

When no interval stays alive, the best split point is an interval boundary
and is therefore already exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.estimation import interval_estimates
from repro.core.gini import gini
from repro.core.histogram import ClassHistogram

#: Tolerance for "strictly better than the best boundary" comparisons.
_EPS = 1e-12


@dataclass
class AttributeAnalysis:
    """Everything CMP-S derives from one attribute's histogram."""

    attr: int
    edges: np.ndarray
    boundary_gini: np.ndarray
    gini_min: float
    best_boundary: int
    est: np.ndarray
    est_min: float
    node_gini: float
    alive: list[int] = field(default_factory=list)

    @property
    def score(self) -> float:
        """Selection score: the most optimistic gini this attribute offers."""
        return min(self.gini_min, self.est_min)

    @property
    def has_boundaries(self) -> bool:
        """True when at least one non-degenerate boundary exists."""
        return np.isfinite(self.gini_min)

    @property
    def splittable(self) -> bool:
        """True when the attribute offers any split, exact or estimated."""
        return np.isfinite(self.score)


def analyze_attribute(attr: int, hist: ClassHistogram) -> AttributeAnalysis:
    """Compute boundary ginis and interval estimates for one attribute.

    Boundaries with an empty side (all of the node's records on one side)
    are *degenerate*: they are masked to ``+inf`` so they can never be
    selected as a split.  When a node's records concentrate in a single
    grid interval, no valid boundary exists (``gini_min = inf``) but the
    interval's estimate stays finite — it then becomes an alive interval
    and the exact split is recovered from the buffered records, so deep
    nodes never lose splittability to a coarse grid.
    """
    node_g = float(gini(hist.totals()))
    bg = hist.boundary_ginis()
    if len(bg) == 0:
        return AttributeAnalysis(
            attr=attr,
            edges=hist.edges,
            boundary_gini=bg,
            gini_min=np.inf,
            best_boundary=-1,
            est=np.full(hist.n_intervals, np.inf),
            est_min=np.inf,
            node_gini=node_g,
        )
    n = hist.n_records
    sizes = hist.cumulative()[:-1].sum(axis=1)
    valid = (sizes > 0) & (sizes < n)
    raw_bg = bg
    bg = np.where(valid, bg, np.inf)
    est = interval_estimates(hist.counts, atomic=hist.atomic_intervals())
    # Footnote 1 of the paper proves the gini index can decrease by less
    # than 2*N_i/N inside an interval with N_i of the node's N records, so
    # the true interior minimum is bounded below by the adjacent boundary
    # ginis minus that slack.  Clamping the hill-climb estimate with this
    # bound eliminates spurious alive intervals far from the optimum (the
    # heuristic climb can otherwise undershoot badly in dense intervals).
    # Degenerate outer boundaries truly evaluate to the node's own gini.
    padded = np.concatenate(([node_g], raw_bg, [node_g]))
    adj_min = np.minimum(padded[:-1], padded[1:])
    pops = hist.counts.sum(axis=1)
    slack = 2.0 * pops / max(n, 1.0)
    est = np.maximum(est, adj_min - slack)
    # Empty intervals cannot hold a split point.
    est = np.where(pops > 0, est, np.inf)
    if np.any(valid):
        best = int(np.argmin(bg))
        gini_min = float(bg[best])
    else:
        best = -1
        gini_min = np.inf
    return AttributeAnalysis(
        attr=attr,
        edges=hist.edges,
        boundary_gini=bg,
        gini_min=gini_min,
        best_boundary=best,
        est=est,
        est_min=float(est.min()) if len(est) else np.inf,
        node_gini=node_g,
    )


def select_alive_intervals(analysis: AttributeAnalysis, max_alive: int) -> list[int]:
    """Alive intervals of one attribute, per the CMP-S restrictions.

    An interval is a candidate when its estimate is strictly below the
    attribute's best boundary gini; at most ``max_alive`` candidates with
    the lowest estimates are kept.  Whenever any interval stays alive, the
    interval adjacent to the best boundary is force-included — this is the
    paper's alive interval (i) ("the one whose left boundary or right
    boundary has gini_min"), and it guarantees the best boundary coincides
    with a preliminary-region edge so the deferred exact split never has to
    cut a preliminary subnode in two.

    Returns an empty list when no interval estimate beats the best
    boundary, in which case the boundary split is already exact.
    """
    if max_alive < 0:
        raise ValueError("max_alive must be non-negative")
    if max_alive == 0 or not analysis.splittable:
        return []
    candidates = set(
        int(i) for i in np.nonzero(analysis.est < analysis.gini_min - _EPS)[0]
    )
    if not candidates:
        return []
    forced: int | None = None
    if analysis.has_boundaries:
        k = analysis.best_boundary
        left_est = analysis.est[k]
        right_est = analysis.est[k + 1] if k + 1 < len(analysis.est) else np.inf
        forced = k if left_est <= right_est else k + 1
        candidates.add(forced)
    if len(candidates) <= max_alive:
        return sorted(candidates)
    ranked = sorted(candidates, key=lambda i: (analysis.est[i], i))
    keep = set(ranked[:max_alive])
    if forced is not None and forced not in keep:
        keep.discard(ranked[max_alive - 1])
        keep.add(forced)
    return sorted(keep)


def choose_split_attribute(
    analyses: list[AttributeAnalysis], max_alive: int
) -> AttributeAnalysis | None:
    """Pick the splitting attribute and populate its alive intervals.

    Returns ``None`` when no attribute offers any boundary to split on.
    Alive intervals of losing attributes are pruned (left empty), per the
    paper.
    """
    viable = [a for a in analyses if a.splittable]
    if not viable:
        return None
    winner = min(viable, key=lambda a: (a.score, a.attr))
    winner.alive = select_alive_intervals(winner, max_alive)
    return winner
