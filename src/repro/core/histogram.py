"""Single-attribute class histograms (CMP-S / CLOUDS data structure).

A :class:`ClassHistogram` holds, for one continuous attribute at one tree
node, the per-interval per-class record counts.  Intervals follow the
equal-depth discretization of :mod:`repro.data.discretize`; interval
boundaries are the only points where the gini index is computed exactly.

Categorical attributes use :class:`CategoryHistogram`: one bin per category,
no ordering, no alive intervals — the best binary *subset* split is computed
directly from the counts.
"""

from __future__ import annotations

import numpy as np

from repro.core import native_scan
from repro.core.gini import boundary_ginis, gini_partition
from repro.data.discretize import bin_index


class ClassHistogram:
    """Per-interval class counts for one continuous attribute."""

    def __init__(self, edges: np.ndarray, n_classes: int) -> None:
        self.edges = np.asarray(edges, dtype=np.float64)
        if self.edges.ndim != 1:
            raise ValueError("edges must be 1-D")
        self.n_classes = int(n_classes)
        q = len(self.edges) + 1
        self.counts = np.zeros((q, self.n_classes), dtype=np.float64)
        # Per-interval value extrema; an interval with vmin == vmax holds a
        # single distinct value and therefore no interior split point.
        self.vmin = np.full(q, np.inf)
        self.vmax = np.full(q, -np.inf)

    @property
    def n_intervals(self) -> int:
        """Number of intervals."""
        return self.counts.shape[0]

    @property
    def n_records(self) -> float:
        """Total number of records counted so far."""
        return float(self.counts.sum())

    def nbytes(self) -> int:
        """Memory footprint of the count matrix."""
        return self.counts.nbytes

    def update(
        self,
        values: np.ndarray,
        labels: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        """Add a batch of records to the histogram (vectorized).

        ``weights`` are per-record multiplicities (bootstrap draw
        counts): each record contributes its weight instead of 1.
        Integer-valued float64 weights keep the counts integer-valued,
        hence exact — bit-identical to repeating each record ``weight``
        times.  Callers must drop zero-weight records beforehand; the
        extrema folds see every value passed in.
        """
        if len(values) == 0:
            return
        values = np.asarray(values)
        if native_scan.hist_accum(
            values, labels, self.edges, self.counts, self.vmin, self.vmax, weights
        ):
            return
        bins = bin_index(values, self.edges)
        if weights is None:
            np.add.at(self.counts, (bins, np.asarray(labels)), 1.0)
        else:
            np.add.at(
                self.counts,
                (bins, np.asarray(labels)),
                np.asarray(weights, dtype=np.float64),
            )
        np.minimum.at(self.vmin, bins, values)
        np.maximum.at(self.vmax, bins, values)

    def atomic_intervals(self) -> np.ndarray:
        """Boolean mask of populated intervals holding one distinct value."""
        populated = self.counts.sum(axis=1) > 0
        return populated & (self.vmin == self.vmax)

    def totals(self) -> np.ndarray:
        """Class counts of the whole node."""
        return self.counts.sum(axis=0)

    def cumulative(self) -> np.ndarray:
        """``(q, c)`` cumulative class counts at each interval's upper edge."""
        return np.cumsum(self.counts, axis=0)

    def boundary_ginis(self) -> np.ndarray:
        """``gini^D`` at each of the ``q - 1`` inner boundaries."""
        if self.n_intervals < 2:
            return np.empty(0, dtype=np.float64)
        cum = self.cumulative()[:-1]
        return boundary_ginis(cum, self.totals())

    def cum_below(self, interval: int) -> np.ndarray:
        """Cumulative class counts strictly below ``interval``."""
        if interval == 0:
            return np.zeros(self.n_classes, dtype=np.float64)
        return self.cumulative()[interval - 1]

    def clone_empty(self) -> "ClassHistogram":
        """Same edges and classes, zero counts (for scan-worker deltas)."""
        return ClassHistogram(self.edges, self.n_classes)

    def merge_from(self, other: "ClassHistogram") -> None:
        """Accumulate another histogram with identical structure."""
        if other.counts.shape != self.counts.shape or not np.array_equal(
            other.edges, self.edges
        ):
            raise ValueError("histograms must share edges to merge")
        self.counts += other.counts
        np.minimum(self.vmin, other.vmin, out=self.vmin)
        np.maximum(self.vmax, other.vmax, out=self.vmax)


class CategoryHistogram:
    """Per-category class counts for one categorical attribute."""

    def __init__(self, n_categories: int, n_classes: int) -> None:
        if n_categories < 1:
            raise ValueError("need at least one category")
        self.counts = np.zeros((n_categories, n_classes), dtype=np.float64)

    @property
    def n_categories(self) -> int:
        """Number of category bins."""
        return self.counts.shape[0]

    def nbytes(self) -> int:
        """Memory footprint of the count matrix."""
        return self.counts.nbytes

    def update(
        self,
        codes: np.ndarray,
        labels: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        """Add a batch of records (``codes`` are integer category codes).

        ``weights`` follow the same multiplicity contract as
        :meth:`ClassHistogram.update`.
        """
        if len(codes) == 0:
            return
        codes = np.asarray(codes)
        if codes.dtype == np.float64 and native_scan.cat_accum(
            codes, labels, self.counts, weights
        ):
            return
        if weights is None:
            np.add.at(
                self.counts, (np.asarray(codes, dtype=np.intp), np.asarray(labels)), 1.0
            )
        else:
            np.add.at(
                self.counts,
                (np.asarray(codes, dtype=np.intp), np.asarray(labels)),
                np.asarray(weights, dtype=np.float64),
            )

    def totals(self) -> np.ndarray:
        """Class counts of the whole node."""
        return self.counts.sum(axis=0)

    def clone_empty(self) -> "CategoryHistogram":
        """Same shape, zero counts (for scan-worker deltas)."""
        return CategoryHistogram(self.counts.shape[0], self.counts.shape[1])

    def merge_from(self, other: "CategoryHistogram") -> None:
        """Accumulate another histogram with identical structure."""
        if other.counts.shape != self.counts.shape:
            raise ValueError("histograms must share shape to merge")
        self.counts += other.counts

    def best_subset_split(
        self, criterion=None
    ) -> tuple[np.ndarray, float]:
        """Best binary subset split ``category in L`` of this attribute.

        For two classes the split is exact (Breiman's ordering theorem:
        sorting categories by their class-1 proportion and scanning the
        prefix boundaries covers an optimal subset).  For more classes the
        same ordering is applied per class and the best prefix over all
        orderings is returned — a standard high-quality heuristic, used
        identically by every algorithm in this repository.

        Returns ``(left_mask, gini)`` where ``left_mask[k]`` is True when
        category ``k`` routes left.  Categories with no records stay on the
        right side.
        """
        if criterion is None:
            partition = gini_partition
        else:
            from repro.core.impurity import partition_impurity

            def partition(left, right):
                return partition_impurity(left, right, criterion)

        counts = self.counts
        totals = counts.sum(axis=0)
        n_per_cat = counts.sum(axis=1)
        present = n_per_cat > 0
        if present.sum() < 2:
            raise ValueError("fewer than two populated categories; no split")
        best_gini = np.inf
        best_mask: np.ndarray | None = None
        n_classes = counts.shape[1]
        with np.errstate(divide="ignore", invalid="ignore"):
            for cls in range(n_classes):
                frac = np.where(present, counts[:, cls] / np.maximum(n_per_cat, 1.0), np.inf)
                order = np.argsort(frac, kind="stable")
                ordered = counts[order]
                cum = np.cumsum(ordered, axis=0)[:-1]
                if len(cum) == 0:
                    continue
                ginis = np.asarray(
                    partition(cum, totals[None, :] - cum), dtype=np.float64
                )
                # Skip degenerate prefixes (empty side).
                sizes = cum.sum(axis=1)
                valid = (sizes > 0) & (sizes < totals.sum())
                if not np.any(valid):
                    continue
                ginis = np.where(valid, ginis, np.inf)
                k = int(np.argmin(ginis))
                if ginis[k] < best_gini:
                    best_gini = float(ginis[k])
                    mask = np.zeros(self.n_categories, dtype=bool)
                    mask[order[: k + 1]] = True
                    mask &= present
                    best_mask = mask
        if best_mask is None:
            raise ValueError("no valid subset split found")
        return best_mask, best_gini
