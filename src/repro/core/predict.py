"""predictSplit — choosing each subnode's matrix X axis (§2.2, Figure 7).

After a split, CMP-B must pick the attribute that will serve as the shared
X axis of the subnode's histogram matrices.  If the subnode later splits on
that very attribute, its own subnodes inherit sub-matrices for free and the
tree grows another level without a scan — so the X axis should be the
attribute *most likely to win the subnode's split*.

Figure 7's recipe: for attributes whose marginal gini in the subnode is
exactly computable from the current matrices (the X axis, and every Y axis
when the split happened on X), use that exact value; for the rest, fall
back to the attribute's gini at the *parent* ("a crude estimate [that]
appears effective in most cases" — the paper reports ~80% accuracy on
Function 2).
"""

from __future__ import annotations

import numpy as np


def predict_split(
    exact_scores: dict[int, float],
    fallback_scores: dict[int, float],
) -> int:
    """Return the attribute with the lowest (estimated) split gini.

    ``exact_scores`` are marginal ginis computed from sub-matrices of the
    node being split; ``fallback_scores`` are the parent-level ginis used
    for attributes with no sub-matrix information.  Exact knowledge wins
    over fallback for the same attribute.  Ties break toward the lower
    attribute index.  Raises ``ValueError`` when no candidate is finite.
    """
    combined = dict(fallback_scores)
    combined.update(exact_scores)
    finite = {a: s for a, s in combined.items() if np.isfinite(s)}
    if not finite:
        raise ValueError("predictSplit has no finite candidate attribute")
    return min(finite, key=lambda a: (finite[a], a))
