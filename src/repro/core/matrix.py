"""Bivariate histogram matrices (§2.2, Figure 5).

CMP-B keeps, at every node, one two-dimensional class histogram per
continuous attribute pair ``(x, y)`` where ``x`` — the node's predicted
next split attribute — is shared by every matrix of the node.  Cell
``(i, j)`` of matrix ``M`` counts, per class, the records whose ``x`` value
falls in x-interval ``i`` and whose ``y`` value falls in y-interval ``j``.

Because every matrix shares the X axis, a split on the X axis turns each
matrix into two sub-matrices (Figure 6) — the subnodes' histograms are
available *without a scan*, which is what lets CMP-B grow two tree levels
per pass.  Marginal views (:meth:`MatrixSet.x_marginal`,
:meth:`MatrixSet.y_marginal`) are materialized as ordinary
:class:`~repro.core.histogram.ClassHistogram` objects so the univariate
analysis machinery (boundary ginis, interval estimates, alive selection)
applies unchanged.

Per-interval value extrema are tracked on both axes for atomic-interval
detection; a slice's extrema conservatively reuse the unsliced ones (an
interval atomic over the whole node is atomic in any slice, never the
other way around — see ``estimation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import native_scan
from repro.core.histogram import CategoryHistogram, ClassHistogram
from repro.data.discretize import bin_index
from repro.data.schema import Schema


#: Narrow count dtype: 4 bytes per cell, the paper's memory story (Fig. 19).
#: Integer, not float32 — float32 silently stops incrementing once a cell
#: reaches 2**24 records, corrupting counts on exactly the large-data
#: regime the paper targets.
_COUNT_DTYPE = np.int32
#: Widened dtype once a matrix has absorbed more records than int32 holds.
_WIDE_DTYPE = np.int64
_NARROW_MAX = np.iinfo(_COUNT_DTYPE).max


class AxisStats:
    """Per-interval value extrema along one axis."""

    def __init__(self, n_intervals: int) -> None:
        self.vmin = np.full(n_intervals, np.inf)
        self.vmax = np.full(n_intervals, -np.inf)

    def update(self, bins: np.ndarray, values: np.ndarray) -> None:
        """Fold a batch of binned values into the extrema."""
        if len(values) == 0:
            return
        np.minimum.at(self.vmin, bins, values)
        np.maximum.at(self.vmax, bins, values)

    def merge_from(self, other: "AxisStats") -> None:
        """Combine extrema with another axis of identical shape."""
        np.minimum(self.vmin, other.vmin, out=self.vmin)
        np.maximum(self.vmax, other.vmax, out=self.vmax)


class HistogramMatrix:
    """One ``(x, y)`` bivariate class histogram."""

    def __init__(
        self,
        x_attr: int,
        y_attr: int,
        x_edges: np.ndarray,
        y_edges: np.ndarray,
        n_classes: int,
    ) -> None:
        self.x_attr = x_attr
        self.y_attr = y_attr
        self.x_edges = np.asarray(x_edges, dtype=np.float64)
        self.y_edges = np.asarray(y_edges, dtype=np.float64)
        self.n_classes = n_classes
        # 4-byte integer counts (the paper's implementation uses 4-byte
        # ints; the matrices dominate CMP's memory, Figure 19).  Exact up
        # to 2**31 - 1 per cell; ``_n_added`` tracks the total records ever
        # absorbed so the cube widens to int64 before any cell could
        # overflow — counting never saturates or wraps.
        self.counts = np.zeros(
            (len(self.x_edges) + 1, len(self.y_edges) + 1, n_classes),
            dtype=_COUNT_DTYPE,
        )
        self._n_added = 0
        self.y_stats = AxisStats(len(self.y_edges) + 1)

    def clone_empty(self) -> "HistogramMatrix":
        """Structurally identical matrix with zero counts (worker deltas)."""
        return HistogramMatrix(
            self.x_attr, self.y_attr, self.x_edges, self.y_edges, self.n_classes
        )

    @property
    def qx(self) -> int:
        """Number of x intervals."""
        return self.counts.shape[0]

    @property
    def qy(self) -> int:
        """Number of y intervals."""
        return self.counts.shape[1]

    def nbytes(self) -> int:
        """Memory footprint of the count cube."""
        return self.counts.nbytes

    def _widen_for(self, incoming: int) -> None:
        """Switch to the wide dtype before cell counts could exceed int32.

        A cell can never hold more than the matrix's total record count,
        so widening when ``_n_added`` approaches the narrow maximum keeps
        every addition exact without scanning the cube for its max.
        """
        self._n_added += incoming
        if self.counts.dtype != _WIDE_DTYPE and self._n_added > _NARROW_MAX:
            self.counts = self.counts.astype(_WIDE_DTYPE)

    def update_binned(
        self, x_bins: np.ndarray, y_values: np.ndarray, labels: np.ndarray
    ) -> None:
        """Add records whose x-interval indices are already computed."""
        if len(labels) == 0:
            return
        self._widen_for(len(labels))
        y_values = np.asarray(y_values)
        if native_scan.matrix_accum(
            x_bins,
            y_values,
            labels,
            self.y_edges,
            self.counts,
            self.y_stats.vmin,
            self.y_stats.vmax,
        ):
            return
        y_bins = bin_index(y_values, self.y_edges)
        np.add.at(self.counts, (x_bins, y_bins, np.asarray(labels)), 1)
        self.y_stats.update(y_bins, y_values)

    def y_marginal_counts(self, x_lo: int = 0, x_hi: int | None = None) -> np.ndarray:
        """``(qy, c)`` class counts of y intervals, restricted to x columns
        ``[x_lo, x_hi)`` (the whole axis by default)."""
        return self.counts[x_lo : x_hi if x_hi is not None else self.qx].sum(axis=0)

    def x_marginal_counts(self) -> np.ndarray:
        """``(qx, c)`` class counts of x intervals."""
        return self.counts.sum(axis=1)

    def merge_from(self, other: "HistogramMatrix") -> None:
        """Accumulate another matrix with identical structure (widening
        out of the narrow dtype first when the sum could overflow it)."""
        if other.counts.shape != self.counts.shape:
            raise ValueError("matrices must share shape to merge")
        self._widen_for(other._n_added)
        self.counts += other.counts
        self.y_stats.merge_from(other.y_stats)


def pseudo_histogram(
    counts: np.ndarray,
    edges: np.ndarray,
    vmin: np.ndarray,
    vmax: np.ndarray,
    n_classes: int,
) -> ClassHistogram:
    """Materialize a marginal view as a ClassHistogram (no data pass)."""
    hist = ClassHistogram(edges, n_classes)
    hist.counts = np.asarray(counts, dtype=np.float64)
    hist.vmin = np.asarray(vmin, dtype=np.float64)
    hist.vmax = np.asarray(vmax, dtype=np.float64)
    return hist


@dataclass
class MatrixSet:
    """All histograms of one CMP-B node (or preliminary part).

    One :class:`HistogramMatrix` per continuous attribute other than
    ``x_attr`` (all sharing ``x_attr`` as their X axis), a plain
    :class:`CategoryHistogram` per categorical attribute, and shared
    X-axis extrema.
    """

    x_attr: int
    x_edges: np.ndarray
    n_classes: int
    matrices: dict[int, HistogramMatrix] = field(default_factory=dict)
    categorical: dict[int, CategoryHistogram] = field(default_factory=dict)
    x_stats: AxisStats | None = None
    class_counts: np.ndarray | None = None

    @classmethod
    def create(
        cls, schema: Schema, x_attr: int, edges: dict[int, np.ndarray]
    ) -> "MatrixSet":
        """Fresh, empty matrix set on the given per-attribute grids."""
        if not schema.attributes[x_attr].is_continuous:
            raise ValueError("the shared X axis must be a continuous attribute")
        ms = cls(x_attr=x_attr, x_edges=edges[x_attr], n_classes=schema.n_classes)
        ms.x_stats = AxisStats(len(ms.x_edges) + 1)
        ms.class_counts = np.zeros(schema.n_classes, dtype=np.float64)
        for j, attr in enumerate(schema.attributes):
            if j == x_attr:
                continue
            if attr.is_continuous:
                ms.matrices[j] = HistogramMatrix(
                    x_attr, j, edges[x_attr], edges[j], schema.n_classes
                )
            else:
                ms.categorical[j] = CategoryHistogram(
                    attr.cardinality, schema.n_classes
                )
        return ms

    def clone_empty(self) -> "MatrixSet":
        """Structurally identical, empty matrix set.

        Scan workers accumulate into private clones which are merged back
        (``merge_from``) in chunk order; grids and attribute layout are
        shared with the original, counts start at zero.
        """
        ms = MatrixSet(
            x_attr=self.x_attr, x_edges=self.x_edges, n_classes=self.n_classes
        )
        ms.x_stats = AxisStats(len(self.x_edges) + 1)
        ms.class_counts = np.zeros(self.n_classes, dtype=np.float64)
        for j, m in self.matrices.items():
            ms.matrices[j] = m.clone_empty()
        for j, h in self.categorical.items():
            ms.categorical[j] = CategoryHistogram(
                h.n_categories, h.counts.shape[1]
            )
        return ms

    @property
    def qx(self) -> int:
        """Number of x intervals."""
        return len(self.x_edges) + 1

    def nbytes(self) -> int:
        """Memory footprint of all matrices and histograms."""
        total = sum(m.nbytes() for m in self.matrices.values())
        total += sum(h.nbytes() for h in self.categorical.values())
        return total

    def update(self, X: np.ndarray, y: np.ndarray) -> None:
        """Add a batch of records to every histogram of the set."""
        if len(y) == 0:
            return
        assert self.class_counts is not None and self.x_stats is not None
        self.class_counts += np.bincount(y, minlength=self.n_classes)
        xv = X[:, self.x_attr]
        x_bins = bin_index(xv, self.x_edges)
        self.x_stats.update(x_bins, xv)
        for j, m in self.matrices.items():
            m.update_binned(x_bins, X[:, j], y)
        for j, h in self.categorical.items():
            h.update(X[:, j], y)

    # -- marginal views --------------------------------------------------------

    def _any_matrix(self) -> HistogramMatrix:
        if not self.matrices:
            raise ValueError("a MatrixSet needs at least two continuous attributes")
        return next(iter(self.matrices.values()))

    def x_marginal(self, x_lo: int = 0, x_hi: int | None = None) -> ClassHistogram:
        """X-axis marginal histogram, optionally restricted to a column slice.

        The returned histogram keeps the full x grid; columns outside the
        slice are zeroed, so interval indices remain comparable across
        slices of the same node.
        """
        assert self.x_stats is not None
        counts = self._any_matrix().x_marginal_counts()
        if x_lo != 0 or x_hi is not None:
            hi = x_hi if x_hi is not None else self.qx
            masked = np.zeros_like(counts)
            masked[x_lo:hi] = counts[x_lo:hi]
            counts = masked
        return pseudo_histogram(
            counts, self.x_edges, self.x_stats.vmin, self.x_stats.vmax, self.n_classes
        )

    def y_marginal(
        self, y_attr: int, x_lo: int = 0, x_hi: int | None = None
    ) -> ClassHistogram:
        """Y marginal of one matrix, optionally conditioned on an x slice."""
        m = self.matrices[y_attr]
        counts = m.y_marginal_counts(x_lo, x_hi)
        return pseudo_histogram(
            counts, m.y_edges, m.y_stats.vmin, m.y_stats.vmax, self.n_classes
        )

    def x_marginal_given_y(
        self, y_attr: int, y_lo: int, y_hi: int | None = None
    ) -> ClassHistogram:
        """X marginal conditioned on a row slice of matrix ``(x, y_attr)``.

        This is the Figure 7 case of a split on a Y axis: the ``(x, b)``
        matrix can be sliced along ``b``, giving the subnode's exact
        marginal over the X attribute.
        """
        assert self.x_stats is not None
        m = self.matrices[y_attr]
        hi = y_hi if y_hi is not None else m.qy
        counts = m.counts[:, y_lo:hi].sum(axis=1)
        return pseudo_histogram(
            counts, self.x_edges, self.x_stats.vmin, self.x_stats.vmax, self.n_classes
        )

    def y_marginal_rows(
        self, y_attr: int, y_lo: int, y_hi: int | None = None
    ) -> ClassHistogram:
        """Y marginal of ``y_attr`` restricted to its own row slice.

        Rows outside the slice are zeroed so interval indices stay
        comparable with the unsliced marginal.
        """
        m = self.matrices[y_attr]
        counts = m.y_marginal_counts()
        hi = y_hi if y_hi is not None else m.qy
        masked = np.zeros_like(counts)
        masked[y_lo:hi] = counts[y_lo:hi]
        return pseudo_histogram(
            masked, m.y_edges, m.y_stats.vmin, m.y_stats.vmax, self.n_classes
        )

    def merge_from(self, other: "MatrixSet") -> None:
        """Accumulate a structurally identical matrix set."""
        if other.x_attr != self.x_attr:
            raise ValueError("matrix sets must share the X attribute to merge")
        assert self.class_counts is not None and other.class_counts is not None
        assert self.x_stats is not None and other.x_stats is not None
        self.class_counts += other.class_counts
        self.x_stats.merge_from(other.x_stats)
        for j, m in self.matrices.items():
            m.merge_from(other.matrices[j])
        for j, h in self.categorical.items():
            h.merge_from(other.categorical[j])
