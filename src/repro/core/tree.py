"""Decision-tree model shared by every builder in this repository."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.gini import gini
from repro.core.splits import CategoricalSplit, Split
from repro.data.schema import Schema


@dataclass
class Node:
    """One node of a decision tree.

    ``class_counts`` always reflects the training records that reached the
    node; leaves predict their majority class.
    """

    node_id: int
    depth: int
    class_counts: np.ndarray
    split: Split | None = None
    left: "Node | None" = None
    right: "Node | None" = None
    #: Back-pointer to the parent node, wired by :class:`DecisionTree`;
    #: ``None`` at the root (and on nodes never attached to a tree).
    parent: "Node | None" = field(default=None, repr=False, compare=False)

    @property
    def is_leaf(self) -> bool:
        """True when the node has no split."""
        return self.split is None

    @property
    def n_records(self) -> float:
        """Training records that reached this node."""
        return float(self.class_counts.sum())

    @property
    def effective_counts(self) -> np.ndarray:
        """Class counts to predict from: own, or the nearest ancestor's.

        Bootstrap samples routinely produce nodes no (weighted) training
        record reached; an all-zero count row carries no signal, so the
        prediction falls back deterministically to the closest ancestor
        with a populated distribution.  Returns the node's own (all-zero)
        counts only when every ancestor is empty too.
        """
        node: Node | None = self
        while node is not None:
            if node.class_counts.sum() > 0:
                return node.class_counts
            node = node.parent
        return self.class_counts

    @property
    def majority_class(self) -> int:
        """Class predicted by this node when treated as a leaf.

        Empty nodes (all-zero ``class_counts``) defer to the parent
        distribution via :attr:`effective_counts` instead of silently
        predicting class 0.
        """
        return int(np.argmax(self.effective_counts))

    @property
    def gini(self) -> float:
        """Gini index of the node's class distribution."""
        return float(gini(self.class_counts))

    @property
    def errors(self) -> float:
        """Training records a leaf here would misclassify."""
        return self.n_records - float(self.class_counts[self.majority_class])

    def children(self) -> tuple["Node", "Node"]:
        """Both children; raises on leaves."""
        if self.left is None or self.right is None:
            raise ValueError(f"node {self.node_id} is a leaf")
        return self.left, self.right

    def make_leaf(self) -> None:
        """Prune the subtree below this node."""
        self.split = None
        self.left = None
        self.right = None


def _as_batch(X: np.ndarray) -> np.ndarray:
    """Coerce ``X`` to a float64 record batch.

    An empty batch may arrive as shape ``(0,)`` (e.g. a plain ``[]``);
    it is reshaped to ``(0, 1)`` so column indexing stays valid and the
    prediction paths return correctly shaped empty outputs.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1 and len(X) == 0:
        return X.reshape(0, 1)
    return X


class DecisionTree:
    """A trained classifier: a root node plus the schema it was built on.

    ``predict`` / ``predict_proba`` / ``apply`` route whole batches through
    the compiled array form (:mod:`repro.core.compiled`), built lazily on
    first use and invalidated when the tree is pruned.  The original
    object walker stays available as ``walk_*`` reference methods; the two
    are bit-identical on every input.
    """

    def __init__(self, root: Node, schema: Schema) -> None:
        self.root = root
        self.schema = schema
        self._compiled = None
        self._compiled_nodes = -1
        # Wire parent back-pointers (iteratively: chain trees deeper than
        # the recursion limit must construct fine).  Builders attach
        # children without setting parents; the finished tree fixes them
        # up once so empty-leaf predictions can fall back up the path.
        stack = [root]
        while stack:
            node = stack.pop()
            if not node.is_leaf:
                node.left.parent = node  # type: ignore[union-attr]
                node.right.parent = node  # type: ignore[union-attr]
                stack.append(node.right)  # type: ignore[arg-type]
                stack.append(node.left)  # type: ignore[arg-type]

    def compiled(self):
        """The tree's compiled form, rebuilt when the structure changed.

        The cache key is the node count: pruning (the only in-repo
        mutation of a finished tree) strictly shrinks the tree, so a
        stale cache can always be detected.  Code that mutates nodes
        without changing their count must call :meth:`invalidate_compiled`.
        """
        from repro.core.compiled import compile_tree

        n_nodes = self.n_nodes
        if self._compiled is None or self._compiled_nodes != n_nodes:
            self._compiled = compile_tree(self)
            self._compiled_nodes = n_nodes
        return self._compiled

    def invalidate_compiled(self) -> None:
        """Drop the compiled form (called by pruning after ``make_leaf``)."""
        self._compiled = None
        self._compiled_nodes = -1

    def iter_nodes(self) -> Iterator[Node]:
        """Pre-order traversal of all nodes."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.append(node.right)  # type: ignore[arg-type]
                stack.append(node.left)  # type: ignore[arg-type]

    @property
    def n_nodes(self) -> int:
        """Total node count."""
        return sum(1 for _ in self.iter_nodes())

    @property
    def n_leaves(self) -> int:
        """Leaf count."""
        return sum(1 for n in self.iter_nodes() if n.is_leaf)

    @property
    def depth(self) -> int:
        """Depth of the deepest leaf (root = 0)."""
        return max(n.depth for n in self.iter_nodes())

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Route records to leaves; returns the leaf ``node_id`` per record."""
        return self.compiled().apply(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a class label for each record."""
        return self.compiled().predict(X)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Per-class probabilities from the training-count distribution of
        each record's leaf; shape ``(n, n_classes)``."""
        return self.compiled().predict_proba(X)

    # -- object-walker reference implementations ----------------------------
    #
    # The compiled engine is asserted bit-identical to these; they remain
    # the executable specification (and the benchmark baseline).

    def walk_apply(self, X: np.ndarray) -> np.ndarray:
        """Object-walker ``apply``: leaf ``node_id`` per record."""
        X = _as_batch(X)
        out = np.empty(len(X), dtype=np.int64)
        self._route(self.root, X, np.arange(len(X)), out)
        return out

    def walk_predict(self, X: np.ndarray) -> np.ndarray:
        """Object-walker ``predict``: class label per record."""
        X = _as_batch(X)
        out = np.empty(len(X), dtype=np.int64)
        self._route(self.root, X, np.arange(len(X)), out, predict=True)
        return out

    def walk_predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Object-walker ``predict_proba``.

        A single leaf-indexed gather: one ``(n_leaves, c)`` probability
        table plus a ``node_id -> row`` lookup replaces the former
        per-leaf masked assignment, which rescanned all ``n`` leaf ids
        once per leaf (O(n_leaves * n)).
        """
        leaf_ids = self.walk_apply(X)
        leaves = [n for n in self.iter_nodes() if n.is_leaf]
        table = np.empty((len(leaves), self.schema.n_classes), dtype=np.float64)
        lookup = np.zeros(max(n.node_id for n in leaves) + 1, dtype=np.intp)
        for row, node in enumerate(leaves):
            counts = node.effective_counts
            total = counts.sum()
            table[row] = (
                counts / total
                if total > 0
                else np.full_like(counts, 1.0 / len(counts))
            )
            lookup[node.node_id] = row
        return table[lookup[leaf_ids]]

    def _route(
        self,
        node: Node,
        X: np.ndarray,
        idx: np.ndarray,
        out: np.ndarray,
        predict: bool = False,
    ) -> None:
        # Iterative with an explicit stack: a chain tree deeper than
        # Python's recursion limit (~1000) must still predict correctly.
        stack = [(node, idx)]
        while stack:
            node, idx = stack.pop()
            if len(idx) == 0:
                continue
            if node.is_leaf:
                out[idx] = node.majority_class if predict else node.node_id
                continue
            split = node.split
            if isinstance(split, CategoricalSplit):
                # Category codes unseen at training time follow the child
                # that absorbed more training records (ties go left).
                heavier_left = node.left.n_records >= node.right.n_records  # type: ignore[union-attr]
                goes_left = split.goes_left(X[idx], unseen_left=heavier_left)
            else:
                goes_left = split.goes_left(X[idx])  # type: ignore[union-attr]
            stack.append((node.right, idx[~goes_left]))  # type: ignore[arg-type]
            stack.append((node.left, idx[goes_left]))  # type: ignore[arg-type]

    def render(self) -> str:
        """Multi-line text rendering of the tree (for examples and docs)."""
        lines: list[str] = []

        def walk(node: Node, prefix: str, tag: str) -> None:
            if node.is_leaf:
                label = self.schema.class_labels[node.majority_class]
                lines.append(
                    f"{prefix}{tag}leaf #{node.node_id}: {label} "
                    f"(n={node.n_records:g}, gini={node.gini:.4f})"
                )
                return
            lines.append(
                f"{prefix}{tag}node #{node.node_id}: "
                f"{node.split.describe(self.schema)} (n={node.n_records:g})"  # type: ignore[union-attr]
            )
            walk(node.left, prefix + "  ", "yes: ")  # type: ignore[arg-type]
            walk(node.right, prefix + "  ", "no:  ")  # type: ignore[arg-type]

        walk(self.root, "", "")
        return "\n".join(lines)


@dataclass
class TreeAccount:
    """Node-id allocator used by builders."""

    next_id: int = 0
    created: int = field(default=0)

    def new_node(self, depth: int, class_counts: np.ndarray) -> Node:
        """Allocate a node with a fresh id."""
        node = Node(self.next_id, depth, np.asarray(class_counts, dtype=np.float64))
        self.next_id += 1
        self.created += 1
        return node
