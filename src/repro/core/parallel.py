"""Chunk-parallel scan engine with deterministic delta merging.

Every CMP builder is level-synchronous: a tree level is one sequential
pass over the training table, during which each chunk's records are
routed into per-pending accumulators (class histograms, histogram
matrices, alive-interval record buffers) and the ``nid`` record→slot
map.  All of those accumulators are *mergeable sketches* — they expose
exact ``merge_from`` reducers — which is precisely the structure that
lets split finding parallelize in the streaming/massively-parallel
model (Pham, Ta & Vu).

:class:`ScanEngine` exploits that:

* the level's chunk list is partitioned into ``workers`` **contiguous**
  slices, preserving chunk order within each slice;
* each worker reads its chunks through the shared (retrying, possibly
  fault-injecting) table handle and routes them into a **private
  delta** — a structural clone of the live pendings with empty
  accumulators;
* after the pass, deltas are merged into the live pendings **in slice
  order**, i.e. in global chunk order.

Determinism rule: every accumulator update is exact (integer-valued
float64 or integer counts, extrema, concatenated record buffers), so
merging worker deltas in chunk order reproduces the serial pass *bit
for bit* — the built tree, its predictions and the scan counts are
identical for any worker count and either backend.

Two backends execute the worker slices:

``thread``
    A lazily created thread pool.  Workers share the live process, so
    ``nid`` writes need no delta at all — a chunk only ever writes the
    record ids it covers, so chunk-disjoint writes commute.  Routing is
    GIL-bound except where the native kernels release nothing but are
    simply fast.

``process``
    A per-scan ``fork`` pool.  Each worker is forked *at scan time*, so
    it inherits the live pendings, table handle and routing closures by
    copy-on-write — nothing is pickled on the way in.  Results travel
    back explicitly: the accumulator delta, the worker's slice of the
    ``writeback`` array (the forked copy of ``nid`` is private to the
    child), an IO-counter delta folded into the shared stats so
    page/record/retry accounting matches the serial pass, a per-kernel
    native-call delta folded into :func:`native_scan.merge_counts` so
    ``BuildStats.native_kernel_calls`` stays accurate across backends,
    and — when tracing — the worker's recorded span dicts, grafted
    under the parent ``scan`` span via :meth:`Tracer.graft`.  Merging
    stays in submission order, hence in global chunk order.  On
    platforms without ``fork`` the engine silently uses threads.

The engine composes with the fault-tolerance layer unchanged: chunk
reads go through :class:`~repro.io.retry.RetryingTable.read_chunk`
(per-chunk retries with simulated backoff), injected crashes fire on
``chunk_starts()`` in the caller's thread before workers launch, and
level checkpoints see exactly the same post-merge state a serial build
would produce — a checkpointed parallel build resumes bit-identically
under any other worker count or backend.  One asymmetry: with process
workers, a fault injector's *counters* advance in the forked children,
so the parent-side injector object stays at zero even though retries
(visible in ``read_retries``) happened.

Scan execution is exception-safe on both backends: when routing or
merging raises, pending batches are cancelled and the worker pool is
shut down before the error propagates, so a poisoned scan leaves no
live worker threads or processes behind.

With ``workers == 1`` the engine streams chunks straight into the live
pendings — byte-for-byte the pre-engine serial path, no pool, no
deltas, no merge.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence

import numpy as np

from repro.core import native_scan
from repro.io.metrics import MemoryTracker
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

#: Memory-tracker tag under which worker-delta bytes are charged.
DELTA_ALLOCATION = "scan/worker-deltas"

#: Scan backends accepted by :class:`ScanEngine` and ``--scan-backend``.
SCAN_BACKENDS = ("thread", "process")


def process_backend_available() -> bool:
    """True when this platform can fork scan workers."""
    return "fork" in multiprocessing.get_all_start_methods()


def partition_chunks(starts: Sequence[int], workers: int) -> list[list[int]]:
    """Split chunk starts into at most ``workers`` contiguous, balanced runs.

    Contiguity is what makes the merge deterministic: concatenating the
    per-slice results in slice order reproduces global chunk order.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    n = len(starts)
    w = min(workers, n)
    if w == 0:
        return []
    base, extra = divmod(n, w)
    slices: list[list[int]] = []
    lo = 0
    for i in range(w):
        hi = lo + base + (1 if i < extra else 0)
        slices.append(list(starts[lo:hi]))
        lo = hi
    return slices


#: Scan-scoped job state for forked workers.  Set by the parent
#: immediately before creating the per-scan fork pool (so children
#: inherit it copy-on-write) and cleared when the scan ends.
_FORK_JOB: dict[str, Any] | None = None


def _record_kernel_spans(
    tracer: "Tracer | NullTracer",
    parent: Span,
    before: dict[str, int],
    after: dict[str, int],
) -> None:
    """Emit one marker ``kernel`` span per native kernel that fired.

    ``before``/``after`` are per-kernel call-count snapshots taken
    around a chunk batch; each kernel with a positive delta gets a
    zero-duration span (attrs ``kernel``/``calls``) under ``parent`` —
    dispatch *accounting*, not timing, since individual kernel calls
    are far below span-recording resolution.
    """
    for name in sorted(after):
        calls = after.get(name, 0) - before.get(name, 0)
        if calls > 0:
            with tracer.span("kernel", parent=parent, kernel=name, calls=calls):
                pass


def _run_fork_batch(
    index: int, chunk_starts: list[int]
) -> tuple[Any, int | None, int | None, Any, dict[str, int], dict[str, int], list[dict[str, object]] | None]:
    """Route one contiguous chunk slice inside a forked worker.

    Runs against the fork-inherited :data:`_FORK_JOB`.  Returns the
    accumulator delta, the ``[lo, hi)`` record range covered (when a
    writeback array is in play) with the worker's copy of that slice,
    the worker's IO-counter delta relative to the fork point, the
    per-kernel native-call delta, and — when the parent shipped a
    trace context — the worker's recorded spans as dicts (a
    ``chunk_batch`` root tagged with this worker's pid, io ``retry``
    children, and per-kernel dispatch markers) for the parent to graft.
    """
    job = _FORK_JOB
    assert job is not None, "fork batch outside an active process scan"
    table = job["table"]
    route = job["route"]
    writeback = job["writeback"]
    ctx = job["trace_ctx"]
    wtracer: Tracer | None = None
    if ctx is not None:
        wtracer = Tracer.from_context(ctx)
        if hasattr(table, "tracer"):
            # The forked copy of the table handle is private to this
            # child; pointing it at the worker tracer routes its retry
            # spans here without touching the parent's object.
            table.tracer = wtracer
    kernels_before = native_scan.kernel_counts()
    before = table.stats.snapshot()
    delta = job["make_delta"]()
    lo: int | None = None
    hi: int | None = None

    def _route_slice() -> None:
        nonlocal lo, hi
        for start in chunk_starts:
            chunk = table.read_chunk(start)
            route(chunk, delta)
            if writeback is not None:
                if lo is None:
                    lo = chunk.start
                hi = chunk.stop

    if wtracer is not None:
        with wtracer.span(
            "chunk_batch",
            worker=index,
            chunks=len(chunk_starts),
            pid=os.getpid(),
        ) as batch_span:
            _route_slice()
        _record_kernel_spans(
            wtracer, batch_span, kernels_before, native_scan.kernel_counts()
        )
    else:
        _route_slice()
    after = table.stats.snapshot()
    io_delta = {key: after[key] - before[key] for key in after}
    kernels_after = native_scan.kernel_counts()
    kernel_delta = {
        name: kernels_after[name] - kernels_before.get(name, 0)
        for name in kernels_after
        if kernels_after[name] != kernels_before.get(name, 0)
    }
    nid_slice = None
    if writeback is not None and lo is not None:
        nid_slice = np.ascontiguousarray(writeback[lo:hi])
    span_dicts = (
        [sp.to_dict() for sp in wtracer.spans()] if wtracer is not None else None
    )
    return delta, lo, hi, nid_slice, io_delta, kernel_delta, span_dicts


class ScanEngine:
    """Executes accounted table scans, serially or chunk-parallel.

    Parameters
    ----------
    workers:
        Routing workers per scan.  ``1`` keeps the exact serial path; a
        pool is created only for ``workers > 1``.
    tracer:
        Optional span recorder.  A parallel pass records one ``scan``
        span with a ``chunk_batch`` child per worker slice, each tagged
        with its worker index and pid and carrying the worker's io
        ``retry`` spans plus per-kernel ``kernel`` dispatch markers.
        Thread workers parent-link across the thread boundary; process
        workers record into a worker-local tracer built from a shipped
        :class:`~repro.obs.trace.TraceContext` and the parent grafts
        the subtree back, so both backends produce structurally
        equivalent traces.  Tracing never changes routing, merging, or
        accounting.
    backend:
        ``"thread"`` (default) or ``"process"``.  The process backend
        falls back to threads where ``fork`` is unavailable.
    """

    def __init__(
        self,
        workers: int = 1,
        tracer: "Tracer | NullTracer | None" = None,
        backend: str = "thread",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if backend not in SCAN_BACKENDS:
            raise ValueError(
                f"backend must be one of {SCAN_BACKENDS}, got {backend!r}"
            )
        self.workers = workers
        self.backend = backend
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._pool: ThreadPoolExecutor | None = None
        #: Parallel chunk batches dispatched over the engine's lifetime.
        self.batches_dispatched = 0

    @property
    def parallel(self) -> bool:
        """True when scans fan chunks out across workers."""
        return self.workers > 1

    @property
    def effective_backend(self) -> str:
        """The backend scans actually use on this platform."""
        if self.backend == "process" and not process_backend_available():
            return "thread"
        return self.backend

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="cmp-scan"
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ScanEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def scan(
        self,
        table: Any,
        route: Callable[[Any, Any], None],
        live: Any,
        make_delta: Callable[[], Any],
        merge_delta: Callable[[Any], None],
        *,
        memory: MemoryTracker | None = None,
        delta_nbytes: int = 0,
        writeback: "np.ndarray | None" = None,
    ) -> None:
        """One full accounted pass over ``table``.

        ``route(chunk, target)`` folds one chunk into ``target`` —
        ``live`` on the serial path, a private ``make_delta()`` result
        per worker otherwise.  Deltas are handed to ``merge_delta`` in
        chunk order.  ``delta_nbytes`` (per delta) is charged to
        ``memory`` for the duration of a parallel pass so worker copies
        show up in the Figure 19 accounting.  ``writeback`` names the
        per-record array ``route`` writes through ``chunk.rids`` (the
        ``nid`` map); process workers return their slice of it for the
        parent to apply, thread workers write it in place.
        """
        if not self.parallel:
            for chunk in table.scan():
                route(chunk, live)
            return
        # Mirror RetryingTable.scan: charge the scan, then list the chunk
        # starts (a fault injector's kill_at_scan fires here, in the
        # caller's thread, before any worker launches).
        table.stats.begin_scan()
        slices = partition_chunks(list(table.chunk_starts()), self.workers)
        if memory is not None and delta_nbytes:
            memory.allocate(DELTA_ALLOCATION, len(slices) * delta_nbytes)
        try:
            if self.effective_backend == "process":
                self._scan_processes(table, route, make_delta, merge_delta, slices, writeback)
            else:
                self._scan_threads(table, route, make_delta, merge_delta, slices)
        finally:
            if memory is not None and delta_nbytes:
                memory.release(DELTA_ALLOCATION)

    def _scan_threads(
        self,
        table: Any,
        route: Callable[[Any, Any], None],
        make_delta: Callable[[], Any],
        merge_delta: Callable[[Any], None],
        slices: list[list[int]],
    ) -> None:
        with self.tracer.span(
            "scan",
            parallel=True,
            workers=len(slices),
            backend="thread",
            chunks=sum(len(s) for s in slices),
        ) as scan_span:
            pool = self._ensure_pool()
            traced = self.tracer.enabled

            def job(index: int, chunk_starts: list[int]) -> Any:
                kernels_before = (
                    native_scan.thread_kernel_counts() if traced else None
                )
                with self.tracer.span(
                    "chunk_batch",
                    parent=scan_span,
                    worker=index,
                    chunks=len(chunk_starts),
                    pid=os.getpid(),
                ) as batch_span:
                    delta = make_delta()
                    for start in chunk_starts:
                        route(table.read_chunk(start), delta)
                if traced:
                    _record_kernel_spans(
                        self.tracer,
                        batch_span,
                        kernels_before,
                        native_scan.thread_kernel_counts(),
                    )
                return delta

            futures = [pool.submit(job, i, s) for i, s in enumerate(slices)]
            self.batches_dispatched += len(slices)
            try:
                # Collect in submission order == chunk order.  result()
                # re-raises worker failures (e.g. ScanFailedError after
                # exhausted retries).
                for future in futures:
                    merge_delta(future.result())
            except BaseException:
                # Poisoned scan: drop queued batches, then tear the pool
                # down so no worker threads outlive the failure.
                for future in futures:
                    future.cancel()
                self.close()
                raise

    def _scan_processes(
        self,
        table: Any,
        route: Callable[[Any, Any], None],
        make_delta: Callable[[], Any],
        merge_delta: Callable[[Any], None],
        slices: list[list[int]],
        writeback: "np.ndarray | None",
    ) -> None:
        global _FORK_JOB
        # Resolve (and if necessary compile) the native kernels before
        # forking so every child inherits the loaded library instead of
        # racing to build its own.
        native_scan.warm_up()
        with self.tracer.span(
            "scan",
            parallel=True,
            workers=len(slices),
            backend="process",
            chunks=sum(len(s) for s in slices),
        ) as scan_span:
            _FORK_JOB = {
                "table": table,
                "route": route,
                "make_delta": make_delta,
                "writeback": writeback,
                # Serializable continuation handle (None when tracing is
                # off): workers build a local tracer from it and ship
                # their spans home for grafting.
                "trace_ctx": self.tracer.context(scan_span),
            }
            # A fresh pool per scan: fork workers must inherit *this*
            # scan's live state (pendings, nid, table position), which a
            # pool forked during an earlier scan would not see.
            pool = ProcessPoolExecutor(
                max_workers=len(slices),
                mp_context=multiprocessing.get_context("fork"),
            )
            futures = []
            try:
                futures = [
                    pool.submit(_run_fork_batch, i, s) for i, s in enumerate(slices)
                ]
                self.batches_dispatched += len(slices)
                for index, future in enumerate(futures):
                    delta, lo, hi, nid_slice, io_delta, kernel_delta, span_dicts = (
                        future.result()
                    )
                    merge_delta(delta)
                    if writeback is not None and nid_slice is not None:
                        writeback[lo:hi] = nid_slice
                    table.stats.merge_counter_delta(io_delta)
                    if kernel_delta:
                        native_scan.merge_counts(kernel_delta)
                    if span_dicts:
                        # Same epoch on both sides (TraceContext ships
                        # it), so worker timestamps land on the parent's
                        # axis verbatim.
                        self.tracer.graft(span_dicts, parent=scan_span)
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
            finally:
                pool.shutdown(wait=True)
                _FORK_JOB = None


__all__ = [
    "ScanEngine",
    "partition_chunks",
    "process_backend_available",
    "DELTA_ALLOCATION",
    "SCAN_BACKENDS",
]
