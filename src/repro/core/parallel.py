"""Chunk-parallel scan engine with deterministic delta merging.

Every CMP builder is level-synchronous: a tree level is one sequential
pass over the training table, during which each chunk's records are
routed into per-pending accumulators (class histograms, histogram
matrices, alive-interval record buffers) and the ``nid`` record→slot
map.  All of those accumulators are *mergeable sketches* — they expose
exact ``merge_from`` reducers — which is precisely the structure that
lets split finding parallelize in the streaming/massively-parallel
model (Pham, Ta & Vu).

:class:`ScanEngine` exploits that:

* the level's chunk list is partitioned into ``workers`` **contiguous**
  slices, preserving chunk order within each slice;
* each worker thread reads its chunks through the shared (retrying,
  possibly fault-injecting) table handle and routes them into a
  **private delta** — a structural clone of the live pendings with
  empty accumulators;
* after the pass, deltas are merged into the live pendings **in slice
  order**, i.e. in global chunk order.

Determinism rule: every accumulator update is exact (integer-valued
float64 or integer counts, extrema, concatenated record buffers), so
merging worker deltas in chunk order reproduces the serial pass *bit
for bit* — the built tree, its predictions and the scan counts are
identical for any worker count.  ``nid`` writes need no delta at all:
a chunk only ever writes the record ids it covers, so chunk-disjoint
writes commute.

The engine composes with the fault-tolerance layer unchanged: chunk
reads go through :class:`~repro.io.retry.RetryingTable.read_chunk`
(per-chunk retries with simulated backoff), injected crashes fire on
``chunk_starts()`` in the caller's thread before workers launch, and
level checkpoints see exactly the same post-merge state a serial build
would produce — a checkpointed parallel build resumes bit-identically
under any other worker count.

With ``workers == 1`` the engine streams chunks straight into the live
pendings — byte-for-byte the pre-engine serial path, no pool, no
deltas, no merge.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.io.metrics import MemoryTracker
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

#: Memory-tracker tag under which worker-delta bytes are charged.
DELTA_ALLOCATION = "scan/worker-deltas"


def partition_chunks(starts: Sequence[int], workers: int) -> list[list[int]]:
    """Split chunk starts into at most ``workers`` contiguous, balanced runs.

    Contiguity is what makes the merge deterministic: concatenating the
    per-slice results in slice order reproduces global chunk order.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    n = len(starts)
    w = min(workers, n)
    if w == 0:
        return []
    base, extra = divmod(n, w)
    slices: list[list[int]] = []
    lo = 0
    for i in range(w):
        hi = lo + base + (1 if i < extra else 0)
        slices.append(list(starts[lo:hi]))
        lo = hi
    return slices


class ScanEngine:
    """Executes accounted table scans, serially or chunk-parallel.

    Parameters
    ----------
    workers:
        Routing threads per scan.  ``1`` keeps the exact serial path; a
        pool is created lazily only for ``workers > 1``.
    tracer:
        Optional span recorder.  A parallel pass records one ``scan``
        span with a ``chunk_batch`` child per worker slice (explicitly
        parent-linked across the thread boundary); the serial path
        leaves tracing to the table's own ``scan()``.  Tracing never
        changes routing, merging, or accounting.
    """

    def __init__(
        self, workers: int = 1, tracer: "Tracer | NullTracer | None" = None
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._pool: ThreadPoolExecutor | None = None
        #: Parallel chunk batches dispatched over the engine's lifetime.
        self.batches_dispatched = 0

    @property
    def parallel(self) -> bool:
        """True when scans fan chunks out across worker threads."""
        return self.workers > 1

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="cmp-scan"
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ScanEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def scan(
        self,
        table: Any,
        route: Callable[[Any, Any], None],
        live: Any,
        make_delta: Callable[[], Any],
        merge_delta: Callable[[Any], None],
        *,
        memory: MemoryTracker | None = None,
        delta_nbytes: int = 0,
    ) -> None:
        """One full accounted pass over ``table``.

        ``route(chunk, target)`` folds one chunk into ``target`` —
        ``live`` on the serial path, a private ``make_delta()`` result
        per worker otherwise.  Deltas are handed to ``merge_delta`` in
        chunk order.  ``delta_nbytes`` (per delta) is charged to
        ``memory`` for the duration of a parallel pass so worker copies
        show up in the Figure 19 accounting.
        """
        if not self.parallel:
            for chunk in table.scan():
                route(chunk, live)
            return
        # Mirror RetryingTable.scan: charge the scan, then list the chunk
        # starts (a fault injector's kill_at_scan fires here, in the
        # caller's thread, before any worker launches).
        table.stats.begin_scan()
        slices = partition_chunks(list(table.chunk_starts()), self.workers)
        if memory is not None and delta_nbytes:
            memory.allocate(DELTA_ALLOCATION, len(slices) * delta_nbytes)
        try:
            with self.tracer.span(
                "scan", parallel=True, workers=len(slices)
            ) as scan_span:
                pool = self._ensure_pool()

                def job(index: int, chunk_starts: list[int]) -> Any:
                    with self.tracer.span(
                        "chunk_batch",
                        parent=scan_span,
                        worker=index,
                        chunks=len(chunk_starts),
                    ):
                        delta = make_delta()
                        for start in chunk_starts:
                            route(table.read_chunk(start), delta)
                        return delta

                futures = [pool.submit(job, i, s) for i, s in enumerate(slices)]
                self.batches_dispatched += len(slices)
                # Collect in submission order == chunk order.  result()
                # re-raises worker failures (e.g. ScanFailedError after
                # exhausted retries).
                for future in futures:
                    merge_delta(future.result())
        finally:
            if memory is not None and delta_nbytes:
                memory.release(DELTA_ALLOCATION)


__all__ = ["ScanEngine", "partition_chunks", "DELTA_ALLOCATION"]
