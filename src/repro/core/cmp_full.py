"""The full CMP classifier: CMP-B plus linear-combination splits (§2.3).

When every univariate split at a node is poor — the best gini stays above
``linear_trigger_gini`` — CMP inspects its bivariate matrices for a
splitting *line* (``giniNegativeSlope`` / ``giniPositiveSlope``,
:mod:`repro.core.linear`).  A line is adopted only when its three-way grid
gini undercuts the best univariate split by the paper's margin ("say 20%
smaller", ``linear_accept_ratio``).

The adopted line is carried as a projection band: records project onto
``w = a*x + b*y``; those inside the band (the cells the line crosses,
Figure 11's white cells) are buffered and the exact intercept ``c`` is
resolved from their sorted projections on the next scan — the same
deferred-exactness trick CMP uses for univariate splits.

On the paper's Function f (``age >= 40 and salary + commission >=
100 000``) this produces the two-level tree of Figure 13 where univariate
algorithms build the sprawling staircase of Figure 9.

Chunk-parallel scans (:mod:`repro.core.parallel`) need nothing extra
here: a linear pending routes through the generic :class:`BPending`
delta — the projection line is shared read-only, each worker buffers its
own slice of the band, and band buffers concatenate in chunk order — so
full-CMP trees are bit-identical for any worker count too.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.cmp_b import BPart, BPending, CMPBBuilder
from repro.core.histogram import ClassHistogram
from repro.core.linear import best_linear_candidate
from repro.core.matrix import MatrixSet
from repro.core.predict import predict_split
from repro.core.splits import LinearSplit
from repro.core.tree import Node
from repro.data.schema import Schema
from repro.io.metrics import BuildStats


class CMPBuilder(CMPBBuilder):
    """The complete CMP classifier."""

    name = "CMP"

    def _maybe_linear(
        self,
        node: Node,
        slot: int,
        mset: MatrixSet,
        best_univariate: float,
        node_hists: dict[int, ClassHistogram],
        parent_scores: dict[int, float],
        next_slot: Callable[[], int],
        schema: Schema,
        stats: BuildStats,
    ) -> BPending | None:
        cfg = self.config
        if node.n_records < cfg.linear_min_records:
            return None
        if best_univariate <= cfg.linear_trigger_gini:
            return None  # univariate splits are already good enough
        if not mset.matrices:
            return None
        cand = best_linear_candidate(mset)
        if cand is None:
            return None
        if cand.gini >= cfg.linear_accept_ratio * best_univariate:
            return None  # not "significantly smaller" (§2.3 Heuristics)
        if cand.gini >= node.gini - cfg.min_gain:
            return None

        proto = LinearSplit(
            mset.x_attr, cand.y_attr, b=cand.b, c=cand.c_hi, a=cand.a
        )
        try:
            predicted_x = predict_split({}, parent_scores)
        except ValueError:
            predicted_x = mset.x_attr
        child_edges = self._refined_edges(node_hists, node.n_records / 2)
        p = BPending(node=node, parent_slot=slot, linear=proto)
        p.zone_bounds = np.array([cand.c_lo, cand.c_hi])
        p.parts = [
            BPart(next_slot(), MatrixSet.create(schema, predicted_x, child_edges), True)
            for _ in range(2)
        ]
        stats.memory.allocate(
            f"parts/{node.node_id}", sum(part.mset.nbytes() for part in p.parts)
        )
        return p
