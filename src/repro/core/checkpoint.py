"""Level-granular checkpoint/resume for scan-based tree builders.

Every builder in the CMP family is level-synchronous: the whole of its
mutable state lives in a handful of objects between scans — the partial
tree, the ``nid`` record→slot map, the pending splits (histograms, alive
bounds, empty buffers) and the slot allocator.  A checkpoint is exactly
that state, pickled at a level boundary, plus the I/O/memory counters so
a resumed build reports the same totals an uninterrupted one would.

Resume is bit-identical by construction: the first checkpoint is taken
*after* every randomized step (reservoir quantiling, CMP-B's root X-axis
draw) has completed, and everything from there on is deterministic given
the saved state.  Killing a build after any completed level and resuming
from its checkpoint therefore yields the same serialized tree, the same
predictions and the same scan counts.

Checkpoint files are integrity-protected the same way stored tables are:
a CRC32 over the payload, verified on load, and writes go through a temp
file + ``os.replace`` so a crash *during checkpointing* leaves the
previous checkpoint intact rather than a torn file.  A fingerprint
(builder name, config, dataset shape and schema) binds a checkpoint to
the build that wrote it; resuming against the wrong dataset or config is
refused instead of silently producing a wrong tree.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro.config import BuilderConfig
from repro.io.metrics import BuildStats

MAGIC = b"CMPCKPT1"
_PREFIX = struct.Struct("<8sIQ")  # magic, crc32(payload), len(payload)

#: BuildStats scalar counters carried across a resume (wall_seconds is
#: deliberately excluded: wall time genuinely differs between runs).
_STAT_FIELDS = (
    "splits_resolved_exactly",
    "linear_splits",
    "two_level_splits",
    "predictions_made",
    "predictions_correct",
    "buffer_overflow_rescans",
)


class CheckpointError(ValueError):
    """A checkpoint file is unreadable, corrupt, or from another build."""


class SlotCounter:
    """Picklable monotone slot allocator (replaces ``iter(range(...))``)."""

    def __init__(self, start: int = 1) -> None:
        self.next = start

    def __call__(self) -> int:
        value = self.next
        self.next += 1
        return value


def build_fingerprint(
    builder_name: str, config: BuilderConfig, dataset: Any
) -> dict[str, Any]:
    """Identity of one build: what a checkpoint must match to be resumable."""
    cfg = asdict(config)
    # resume/checkpoint_path/scan_workers/scan_backend say how a build is
    # being run, not what it builds: the resuming run necessarily differs
    # from the writing run on the first two, and the parallel scan engine
    # is bit-identical across worker counts and backends, so a checkpoint
    # written under one parallelism setup is resumable under any other.
    del cfg["resume"], cfg["checkpoint_path"], cfg["scan_workers"]
    del cfg["scan_backend"]
    return {
        "builder": builder_name,
        "config": cfg,
        "n_records": int(dataset.n_records),
        "n_attributes": int(dataset.n_attributes),
        "class_labels": tuple(dataset.schema.class_labels),
        "attributes": tuple(
            (a.name, a.kind.value, tuple(a.categories))
            for a in dataset.schema.attributes
        ),
    }


def loop_state(account, root, nid, pendings, next_slot) -> dict[str, Any]:
    """The five objects that fully determine a level-synchronous build.

    Shared by CMP-S and CMP-B (and hence full CMP): the node allocator,
    the partial tree, the record→slot map, the pending splits and the
    slot counter.  Pickling them in one payload preserves object sharing
    (pending splits reference nodes inside the tree).
    """
    return {
        "account": account,
        "root": root,
        "nid": nid,
        "pendings": pendings,
        "next_slot": next_slot,
    }


class CheckpointManager:
    """Reads and writes one build's checkpoint file."""

    def __init__(self, path: str | Path, fingerprint: dict[str, Any]) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint

    def exists(self) -> bool:
        """True when a checkpoint file is present (not necessarily valid)."""
        return self.path.exists()

    def save(self, level: int, state: dict[str, Any], stats: BuildStats) -> None:
        """Atomically persist the state reached after completing ``level``."""
        payload = pickle.dumps(
            {
                "fingerprint": self.fingerprint,
                "level": level,
                "state": state,
                "io": stats.io.snapshot(),
                "memory": {
                    "live": stats.memory.live_allocations(),
                    "current": stats.memory.current,
                    "peak": stats.memory.peak,
                },
                "counters": {f: getattr(stats, f) for f in _STAT_FIELDS},
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        tmp = self.path.parent / f"{self.path.name}.tmp.{os.getpid()}"
        try:
            with tmp.open("wb") as fh:
                fh.write(_PREFIX.pack(MAGIC, zlib.crc32(payload), len(payload)))
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        finally:
            tmp.unlink(missing_ok=True)

    def load(self, stats: BuildStats) -> tuple[int, dict[str, Any]]:
        """Restore counters into ``stats`` and return ``(level, state)``.

        Raises :class:`CheckpointError` on a torn/corrupt file or a
        fingerprint mismatch.
        """
        raw = self.path.read_bytes()
        if len(raw) < _PREFIX.size:
            raise CheckpointError(f"{self.path}: truncated checkpoint")
        magic, crc, length = _PREFIX.unpack_from(raw)
        if magic != MAGIC:
            raise CheckpointError(f"{self.path}: not a checkpoint file")
        payload = raw[_PREFIX.size : _PREFIX.size + length]
        if len(payload) != length or zlib.crc32(payload) != crc:
            raise CheckpointError(f"{self.path}: checkpoint checksum mismatch")
        data = pickle.loads(payload)
        if data["fingerprint"] != self.fingerprint:
            raise CheckpointError(
                f"{self.path}: checkpoint belongs to a different build "
                "(builder, config, or dataset changed)"
            )
        for name, value in data["io"].items():
            setattr(stats.io, name, value)
        mem = data["memory"]
        for name, nbytes in mem["live"].items():
            stats.memory.allocate(name, nbytes)
        stats.memory.restore_peak(mem["peak"])
        for name, value in data["counters"].items():
            setattr(stats, name, value)
        stats.resumed_from_level = data["level"]
        return data["level"], data["state"]

    def clear(self) -> None:
        """Remove the checkpoint (called when a build completes)."""
        self.path.unlink(missing_ok=True)
