"""Shared machinery for scan-based tree builders.

Every classifier in this repository is *level-synchronous*: it repeatedly
scans the (simulated) disk-resident training set, routing each record to the
frontier node it belongs to, and grows the tree between scans.  This module
holds the pieces common to the CMP family and the baselines:

* :class:`BuildResult` — what ``build()`` returns.
* :class:`TreeBuilder` — the abstract base: timing, pruning, validation.
* Zone arithmetic for preliminary splits around alive intervals.
* :func:`resolve_exact_threshold` — the "from approximate split to exact
  split" computation (§2.1): combine boundary ginis with the sorted records
  buffered from the alive intervals to find the globally best threshold.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.config import BuilderConfig
from repro.core.checkpoint import CheckpointManager, build_fingerprint
from repro.core.gini import gini_partition
from repro.core.parallel import ScanEngine
from repro.core import native_scan
from repro.core.histogram import CategoryHistogram, ClassHistogram
from repro.core.tree import DecisionTree, Node, TreeAccount
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.io.metrics import BuildStats, Stopwatch
from repro.io.retry import RetryingTable
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer


@dataclass
class BuildResult:
    """A trained tree plus the accounting of how it was built."""

    tree: DecisionTree
    stats: BuildStats

    @property
    def summary(self) -> dict[str, float]:
        """Flat stats dict (see :meth:`repro.io.metrics.BuildStats.summary`)."""
        return self.stats.summary()


class TreeBuilder(ABC):
    """Base class for all classifiers.

    Subclasses implement :meth:`_build` and receive a fresh
    :class:`~repro.io.metrics.BuildStats`; :meth:`build` wraps it with
    wall-clock timing and optional pruning.
    """

    #: Short name used in experiment tables.
    name: str = "base"

    #: True for builders that run PUBLIC(1) pruning *during* construction
    #: (the CMP family).  Builders without integrated support fall back to
    #: an equivalent post-hoc MDL pass when ``prune == "public"`` — PUBLIC
    #: never prunes anything the final MDL pass would keep, so the trees
    #: agree; only the construction work differs (which is PUBLIC's point).
    supports_integrated_pruning: bool = False

    def __init__(
        self,
        config: BuilderConfig | None = None,
        tracer: "Tracer | NullTracer | None" = None,
    ) -> None:
        self.config = config if config is not None else BuilderConfig()
        #: Span recorder threaded through the build's table, scan engine
        #: and phase timers.  ``NULL_TRACER`` (the default) records
        #: nothing; tracing never changes the built tree.
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def build(self, dataset: Dataset) -> BuildResult:
        """Train a decision tree on ``dataset``."""
        if dataset.n_records == 0:
            raise ValueError("cannot build a tree on an empty dataset")
        stats = BuildStats()
        stats.scan_workers = self.config.scan_workers
        stats.scan_backend = self._scan_engine().effective_backend
        stats.tracer = self.tracer
        kernel_calls_before = native_scan.kernel_calls_total()
        with Stopwatch(stats):
            with self.tracer.span(
                "build", builder=self.name, records=dataset.n_records
            ) as build_span:
                tree = self._build(dataset, stats)
                prune = self.config.prune
                if prune == "mdl" or (
                    prune == "public" and not self.supports_integrated_pruning
                ):
                    from repro.pruning.mdl import mdl_prune

                    with stats.phase("prune"):
                        mdl_prune(tree)
        stats.nodes_created = tree.n_nodes
        stats.leaves = tree.n_leaves
        stats.levels_built = tree.depth
        stats.native_kernel_calls = (
            native_scan.kernel_calls_total() - kernel_calls_before
        )
        # Stamp the final accounting onto the (already closed) root span
        # so `inspect-trace` can cross-check scan spans against it.
        build_span.annotate(
            scans=stats.io.scans,
            pages_read=stats.io.pages_read,
            levels=stats.levels_built,
            nodes=stats.nodes_created,
            wall_seconds=round(stats.wall_seconds, 6),
        )
        return BuildResult(tree=tree, stats=stats)

    @abstractmethod
    def _build(self, dataset: Dataset, stats: BuildStats) -> DecisionTree:
        """Construct the tree, charging all I/O and memory to ``stats``."""

    def _open_table(self, dataset: Dataset, stats: BuildStats) -> RetryingTable:
        """Open the training table behind the retrying scan wrapper.

        Every builder reads training data through this handle, so all of
        them share the same recovery semantics: recoverable chunk-read
        faults are re-read up to ``config.scan_retries`` times with
        exponential backoff, charged to ``stats.io``.
        """
        table = dataset.as_paged(stats.io, self.config.page_records)
        return RetryingTable(
            table,
            self.config.scan_retries,
            self.config.retry_backoff_ms,
            tracer=self.tracer,
        )

    def _scan_engine(self) -> ScanEngine:
        """A scan engine sized to ``config.scan_workers`` (close after use)."""
        return ScanEngine(
            self.config.scan_workers,
            tracer=self.tracer,
            backend=self.config.scan_backend,
        )

    def _checkpointer(self, dataset: Dataset) -> CheckpointManager | None:
        """The build's checkpoint manager, or ``None`` when not configured."""
        if not self.config.checkpoint_path:
            return None
        return CheckpointManager(
            self.config.checkpoint_path,
            build_fingerprint(self.name, self.config, dataset),
        )


# ---------------------------------------------------------------------------
# Frontier bookkeeping shared by CMP-S / CMP-B
# ---------------------------------------------------------------------------


@dataclass
class PartState:
    """One preliminary subnode being populated during a scan."""

    slot: int
    n_classes: int
    hists: dict[int, ClassHistogram | CategoryHistogram] = field(default_factory=dict)
    class_counts: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.class_counts is None:
            self.class_counts = np.zeros(self.n_classes, dtype=np.float64)

    def update(
        self, X: np.ndarray, y: np.ndarray, weights: np.ndarray | None = None
    ) -> None:
        """Add a batch of records to every histogram of this part.

        ``weights`` are integer-valued per-record multiplicities
        (bootstrap draw counts); the weighted accumulation is exact and
        bit-identical to repeating each record ``weight`` times.
        Callers drop zero-weight records beforehand.
        """
        if len(y) == 0:
            return
        if weights is None:
            self.class_counts += np.bincount(y, minlength=self.n_classes)
        else:
            self.class_counts += np.bincount(
                y, weights=weights, minlength=self.n_classes
            )
        for attr, hist in self.hists.items():
            hist.update(X[:, attr], y, weights)

    def nbytes(self) -> int:
        """Memory footprint of all histograms."""
        return sum(h.nbytes() for h in self.hists.values())

    def clone_empty(self) -> "PartState":
        """Structural copy with zeroed counts (a worker's scan delta)."""
        return PartState(
            self.slot,
            self.n_classes,
            {j: h.clone_empty() for j, h in self.hists.items()},
        )

    def merge_from(self, other: "PartState") -> None:
        """Fold another part's counts into this one (exact, associative)."""
        self.class_counts += other.class_counts
        for j, hist in self.hists.items():
            hist.merge_from(other.hists[j])


def make_part_hists(
    schema: Schema, child_edges: dict[int, np.ndarray]
) -> dict[int, ClassHistogram | CategoryHistogram]:
    """Fresh histograms for one preliminary part.

    Continuous attributes use the per-split grid in ``child_edges``;
    categorical attributes get one bin per category.
    """
    hists: dict[int, ClassHistogram | CategoryHistogram] = {}
    for j, a in enumerate(schema.attributes):
        if a.is_continuous:
            hists[j] = ClassHistogram(child_edges[j], schema.n_classes)
        else:
            hists[j] = CategoryHistogram(a.cardinality, schema.n_classes)
    return hists


@dataclass
class RecordBuffer:
    """Alive-interval record buffer for one pending split.

    ``budget_bytes`` bounds the buffered bytes (0 = unbounded).  Crossing
    the budget *drops the whole buffer* and latches ``overflowed`` — the
    builder then falls back to re-collecting the records with an extra
    scan (the CLOUDS-style degradation: correctness preserved, one scan
    charged) instead of growing memory without bound.
    """

    X_chunks: list[np.ndarray] = field(default_factory=list)
    y_chunks: list[np.ndarray] = field(default_factory=list)
    rid_chunks: list[np.ndarray] = field(default_factory=list)
    n_records: int = 0
    budget_bytes: int = 0
    overflowed: bool = False

    def append(self, X: np.ndarray, y: np.ndarray, rids: np.ndarray) -> None:
        """Stash a batch of records (dropped once over budget)."""
        if len(y) == 0:
            return
        self.n_records += len(y)
        if self.overflowed:
            return
        self.X_chunks.append(np.array(X, copy=True))
        self.y_chunks.append(np.array(y, copy=True))
        self.rid_chunks.append(np.array(rids, copy=True))
        if self.budget_bytes and self.nbytes() > self.budget_bytes:
            self.X_chunks.clear()
            self.y_chunks.clear()
            self.rid_chunks.clear()
            self.overflowed = True

    def extend_from(self, other: "RecordBuffer") -> None:
        """Append another buffer's batches (worker-delta merge).

        Worker deltas carry this buffer's own ``budget_bytes``, so the
        merged buffer overflows exactly when a serial pass would have:
        either some worker already crossed the budget on its own, or the
        concatenated total does here.
        """
        self.n_records += other.n_records
        if self.overflowed:
            return
        if other.overflowed:
            self.X_chunks.clear()
            self.y_chunks.clear()
            self.rid_chunks.clear()
            self.overflowed = True
            return
        self.X_chunks.extend(other.X_chunks)
        self.y_chunks.extend(other.y_chunks)
        self.rid_chunks.extend(other.rid_chunks)
        if self.budget_bytes and self.nbytes() > self.budget_bytes:
            self.X_chunks.clear()
            self.y_chunks.clear()
            self.rid_chunks.clear()
            self.overflowed = True

    def concatenated(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (X, y, rids) as single arrays (possibly empty)."""
        if not self.y_chunks:
            p = self.X_chunks[0].shape[1] if self.X_chunks else 0
            return (
                np.empty((0, p)),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        return (
            np.concatenate(self.X_chunks),
            np.concatenate(self.y_chunks),
            np.concatenate(self.rid_chunks),
        )

    def nbytes(self) -> int:
        """Approximate memory footprint of the buffered records."""
        return sum(c.nbytes for c in self.X_chunks) + sum(
            c.nbytes + 8 * len(c) for c in self.y_chunks
        )


def adaptive_intervals(configured: int, n_records: float) -> int:
    """Grid size for a child node: never more than one interval per ~20
    records, floored at 4.

    The paper uses a fixed 100-120 intervals, but its nodes hold hundreds
    of thousands of records; deep nodes in a scaled-down run would waste
    memory (and, for CMP-B, quadratically so) on mostly-empty grids.
    Shrinking the grid with the node keeps per-interval populations
    comparable to the paper's regime; exactness is unaffected because
    alive-interval buffering resolves thresholds from the records
    themselves.
    """
    return int(max(4, min(configured, n_records // 20 + 1)))


# ---------------------------------------------------------------------------
# Zone arithmetic
# ---------------------------------------------------------------------------


def zone_boundaries(alive_bounds: list[tuple[float, float]]) -> np.ndarray:
    """Flattened zone boundary values for a set of alive intervals.

    ``A`` disjoint alive intervals ``(lo_i, hi_i]`` cut the attribute axis
    into ``2A + 1`` zones: region 0, alive 0, region 1, alive 1, …,
    region ``A``.  ``classify_zones`` maps values to zone indices; even
    indices are regions (preliminary subnodes), odd indices alive intervals
    (buffered records).
    """
    flat: list[float] = []
    prev_hi = -np.inf
    for lo, hi in alive_bounds:
        if not lo < hi:
            raise ValueError(f"alive interval ({lo}, {hi}] is empty")
        if lo < prev_hi:
            raise ValueError("alive intervals must be disjoint and sorted")
        flat.extend((lo, hi))
        prev_hi = hi
    return np.asarray(flat, dtype=np.float64)


def classify_zones(values: np.ndarray, boundaries: np.ndarray) -> np.ndarray:
    """Zone index per value (see :func:`zone_boundaries`)."""
    return np.searchsorted(boundaries, values, side="left")


# ---------------------------------------------------------------------------
# Exact resolution of an estimated split
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResolvedThreshold:
    """Outcome of :func:`resolve_exact_threshold`."""

    threshold: float
    gini: float
    #: True when the winning point came from inside an alive interval.
    from_buffer: bool
    #: Candidate thresholds examined (best boundary + distinct buffered
    #: values); feeds the MDL split-encoding value term.
    n_candidates: int = 1


def resolve_exact_threshold(
    totals: np.ndarray,
    best_boundary_value: float | None,
    best_boundary_gini: float,
    alive_bounds: list[tuple[float, float]],
    alive_cum_below: list[np.ndarray],
    buf_values: np.ndarray,
    buf_labels: np.ndarray,
) -> ResolvedThreshold | None:
    """Find the exact best threshold for an estimated split (§2.1).

    Combines the node's best interval-boundary gini (already exact — and,
    by the alive-selection rule, always the edge of a preliminary region)
    with candidate points inside the alive intervals, reconstructed from
    the buffered records: for a sorted buffered prefix ending at value
    ``v``, the left side of the split ``a <= v`` is the cumulative class
    count below the interval plus the prefix's class counts.  Boundaries
    other than the best one can never win (their gini is >= the best
    boundary's by definition), so they need not be candidates — which also
    guarantees the resolved threshold never straddles a preliminary
    subnode.

    Parameters
    ----------
    totals:
        ``(c,)`` class counts of the node.
    best_boundary_value / best_boundary_gini:
        The node's best non-degenerate boundary (``None`` / ``inf`` when
        every boundary is degenerate).
    alive_bounds / alive_cum_below:
        Value bounds and below-interval cumulative class counts for each
        alive interval, in order.
    buf_values / buf_labels:
        Attribute values and labels of all buffered records of the node.

    Returns ``None`` when no valid split exists at all.
    """
    totals = np.asarray(totals, dtype=np.float64)
    n = totals.sum()
    best_gini = np.inf
    best_thr = np.nan
    best_from_buffer = False
    n_candidates = 0
    if best_boundary_value is not None and np.isfinite(best_boundary_gini):
        best_gini = float(best_boundary_gini)
        best_thr = float(best_boundary_value)
        n_candidates = 1

    n_classes = len(totals)
    for (lo, hi), cum_below in zip(alive_bounds, alive_cum_below):
        in_interval = (buf_values > lo) & (buf_values <= hi)
        v = buf_values[in_interval]
        if len(v) == 0:
            continue
        lab = buf_labels[in_interval]
        order = np.argsort(v, kind="stable")
        v = v[order]
        lab = lab[order]
        onehot = np.zeros((len(v), n_classes), dtype=np.float64)
        onehot[np.arange(len(v)), lab] = 1.0
        cum = np.cumsum(onehot, axis=0) + cum_below[None, :]
        # Candidates: after the last record of each distinct value.  The
        # final record's threshold equals the interval's upper-boundary
        # split, which the boundary ginis already cover (when valid).
        distinct = np.nonzero(v[:-1] < v[1:])[0]
        if len(distinct) == 0:
            continue
        n_candidates += len(distinct)
        left = cum[distinct]
        nl = left.sum(axis=1)
        valid = (nl > 0) & (nl < n)
        if not np.any(valid):
            continue
        right = totals[None, :] - left
        ginis = np.asarray(gini_partition(left, right), dtype=np.float64)
        ginis = np.where(valid, ginis, np.inf)
        t = int(np.argmin(ginis))
        if ginis[t] < best_gini - 1e-15:
            best_gini = float(ginis[t])
            best_thr = float(v[distinct[t]])
            best_from_buffer = True
    if not np.isfinite(best_gini):
        return None
    return ResolvedThreshold(best_thr, best_gini, best_from_buffer, n_candidates)


__all__ = [
    "BuildResult",
    "TreeBuilder",
    "PartState",
    "RecordBuffer",
    "ResolvedThreshold",
    "make_part_hists",
    "zone_boundaries",
    "classify_zones",
    "resolve_exact_threshold",
    "TreeAccount",
    "Node",
    "DecisionTree",
]
