"""Optional native routing kernel, built on demand with the system C compiler.

The numpy descent in :mod:`repro.core.compiled` streams whole columns
per tree node; a scalar C loop visits each *record's* row once and walks
it root-to-leaf while the row sits in cache, which is several times
faster again.  This module compiles that loop (~40 lines of C, no
dependencies) into a shared library at first use via whatever ``cc`` /
``gcc`` / ``clang`` the machine has, loads it through :mod:`ctypes`, and
hands back a kernel callable.  No compiler, a failed compile, an
unusual platform, or ``CMP_NO_NATIVE=1`` in the environment all degrade
to returning ``None`` — callers then use the pure-numpy path, which is
always available and bit-identical.

Bit-identity notes: the kernel is compiled with ``-ffp-contract=off``
so ``a*x + b*y`` rounds exactly like the two-instruction numpy
evaluation (no FMA contraction), and the categorical code conversion
uses the same float→int64 C cast semantics numpy's ``astype(intp)``
has on every platform where this kernel builds (the build is refused
on platforms where ``intp`` is not 64-bit).
"""

from __future__ import annotations

import ctypes
import os
import threading

import numpy as np

from repro.core import native_build

_SOURCE = r"""
#include <stdint.h>

/* Node tags match repro.core.compiled: LEAF=0 NUMERIC=1 CATEGORICAL=2
 * LINEAR=3.  Leaves self-loop through left/right, so the walk simply
 * stops when it sees a leaf tag. */
void cmp_route(int64_t n, int64_t ncols, const double *X,
               const int8_t *kind, const int32_t *attr, const int32_t *attr2,
               const double *coef_a, const double *coef_b,
               const double *threshold,
               const int64_t *left, const int64_t *right,
               const uint8_t *default_left,
               const int64_t *cat_offset, const int64_t *cat_len,
               const uint8_t *cat_mask,
               int64_t *out)
{
    for (int64_t r = 0; r < n; ++r) {
        const double *row = X + r * ncols;
        int64_t i = 0;
        for (;;) {
            int8_t k = kind[i];
            int go;
            if (k == 0)
                break;
            if (k == 1) {
                go = row[attr[i]] <= threshold[i];
            } else if (k == 3) {
                go = coef_a[i] * row[attr[i]] + coef_b[i] * row[attr2[i]]
                     <= threshold[i];
            } else {
                int64_t code = (int64_t)row[attr[i]];
                if (code >= 0 && code < cat_len[i])
                    go = cat_mask[cat_offset[i] + code];
                else
                    go = default_left[i];
            }
            i = go ? left[i] : right[i];
        }
        out[r] = i;
    }
}

/* Packed-forest scoring: one call routes every record through every
 * member tree and accumulates the leaf value rows.  Arrays are the
 * member trees' node arrays concatenated in member order with child
 * indices, cat_mask offsets and leaf_row already shifted to global
 * positions (repro.core.compiled.compile_forest); tree_offsets[t] is
 * member t's root index.  Per record the accumulator starts at base and
 * adds member leaf rows in member order — the exact element-wise fold
 * order of the numpy fallback, hence bit-identical results. */
void cmp_forest_score(int64_t n, int64_t ncols, const double *X,
                      int64_t n_trees, const int64_t *tree_offsets,
                      const int8_t *kind, const int32_t *attr,
                      const int32_t *attr2,
                      const double *coef_a, const double *coef_b,
                      const double *threshold,
                      const int64_t *left, const int64_t *right,
                      const uint8_t *default_left,
                      const int64_t *cat_offset, const int64_t *cat_len,
                      const uint8_t *cat_mask,
                      const int64_t *leaf_row, int64_t n_outputs,
                      const double *base, const double *values,
                      double *acc)
{
    for (int64_t r = 0; r < n; ++r) {
        const double *row = X + r * ncols;
        double *a = acc + r * n_outputs;
        for (int64_t k = 0; k < n_outputs; ++k)
            a[k] = base[k];
        for (int64_t t = 0; t < n_trees; ++t) {
            int64_t i = tree_offsets[t];
            for (;;) {
                int8_t k = kind[i];
                int go;
                if (k == 0)
                    break;
                if (k == 1) {
                    go = row[attr[i]] <= threshold[i];
                } else if (k == 3) {
                    go = coef_a[i] * row[attr[i]] + coef_b[i] * row[attr2[i]]
                         <= threshold[i];
                } else {
                    int64_t code = (int64_t)row[attr[i]];
                    if (code >= 0 && code < cat_len[i])
                        go = cat_mask[cat_offset[i] + code];
                    else
                        go = default_left[i];
                }
                i = go ? left[i] : right[i];
            }
            const double *v = values + leaf_row[i] * n_outputs;
            for (int64_t k = 0; k < n_outputs; ++k)
                a[k] += v[k];
        }
    }
}
"""

_lock = threading.Lock()
_kernel = None
_resolved = False


def _build():
    if np.intp(0).itemsize != 8 or np.dtype(np.int64).byteorder not in ("=", "<", ">"):
        return None
    # Shared content-addressed cache with atomic publication: concurrent
    # processes (routine with the process scan backend) race benignly.
    lib = native_build.load_library("route", _SOURCE)
    if lib is None:
        return None
    fn = lib.cmp_route
    fn.argtypes = [ctypes.c_int64, ctypes.c_int64] + [ctypes.c_void_p] * 14
    fn.restype = None
    ffn = lib.cmp_forest_score
    ffn.argtypes = (
        [ctypes.c_int64, ctypes.c_int64, ctypes.c_void_p, ctypes.c_int64]
        + [ctypes.c_void_p] * 14
        + [ctypes.c_int64, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p]
    )
    ffn.restype = None

    def kernel(ct, X: np.ndarray, out: np.ndarray) -> None:
        n, ncols = X.shape
        fn(
            n,
            ncols,
            X.ctypes.data,
            ct.kind.ctypes.data,
            ct.attr.ctypes.data,
            ct.attr2.ctypes.data,
            ct.coef_a.ctypes.data,
            ct.coef_b.ctypes.data,
            ct.threshold.ctypes.data,
            ct.left.ctypes.data,
            ct.right.ctypes.data,
            ct.default_left.ctypes.data,
            ct.cat_offset.ctypes.data,
            ct.cat_len.ctypes.data,
            ct.cat_mask.ctypes.data,
            out.ctypes.data,
        )

    def forest(cf, X: np.ndarray, acc: np.ndarray) -> None:
        n, ncols = X.shape
        ffn(
            n,
            ncols,
            X.ctypes.data,
            cf.n_trees,
            cf.tree_offsets.ctypes.data,
            cf.kind.ctypes.data,
            cf.attr.ctypes.data,
            cf.attr2.ctypes.data,
            cf.coef_a.ctypes.data,
            cf.coef_b.ctypes.data,
            cf.threshold.ctypes.data,
            cf.left.ctypes.data,
            cf.right.ctypes.data,
            cf.default_left.ctypes.data,
            cf.cat_offset.ctypes.data,
            cf.cat_len.ctypes.data,
            cf.cat_mask.ctypes.data,
            cf.leaf_row.ctypes.data,
            cf.n_outputs,
            cf.base.ctypes.data,
            cf.values.ctypes.data,
            acc.ctypes.data,
        )

    return {"route": kernel, "forest": forest}


def _resolve():
    global _kernel, _resolved
    if _resolved:
        return _kernel
    with _lock:
        if _resolved:
            return _kernel
        if os.environ.get("CMP_NO_NATIVE"):
            _kernel = None
        else:
            try:
                _kernel = _build()
            except Exception:
                _kernel = None
        _resolved = True
    return _kernel


def route_kernel():
    """The native single-tree routing kernel, or ``None`` when unavailable.

    Resolved once per process (build + load on first call); honours
    ``CMP_NO_NATIVE=1`` for forcing the numpy path, e.g. to compare the
    two implementations or on machines where the toolchain misbehaves.
    """
    kernels = _resolve()
    return None if kernels is None else kernels["route"]


def forest_kernel():
    """The native packed-forest scoring kernel, or ``None`` when unavailable.

    Same resolution and degradation contract as :func:`route_kernel`.
    """
    kernels = _resolve()
    return None if kernels is None else kernels["forest"]


def native_available() -> bool:
    """True when the C kernels built (or will build) on this machine."""
    return route_kernel() is not None


__all__ = ["route_kernel", "forest_kernel", "native_available"]
