"""CMP-B: bivariate CMP with split prediction (§2.2, Figure 10).

CMP-B replaces CMP-S's per-attribute histograms with the
:class:`~repro.core.matrix.MatrixSet` of bivariate histograms sharing a
predicted X axis.  The payoff (Figure 6): when a node's split lands on the
X axis **and** has at most one alive interval, the two subnodes' histograms
are sub-matrices of the parent's — so a *second* split can be chosen for
each subnode immediately, and the tree grows two levels in a single scan.
The paper measures CMP-B "almost 40% faster than CMP-S" from this.

Mechanics on top of CMP-S:

* **Prediction** (Figure 7, :mod:`repro.core.predict`): each subnode's
  matrix X axis is the attribute most likely to win its future split —
  exact marginal ginis from sub-matrices where available, parent-level
  ginis otherwise.  Success is tracked in ``BuildStats.predictions_*``
  (the paper reports ~80% on Function 2).
* **Two-level pendings**: a first (possibly estimated) split on the X axis
  with per-side second splits, each with its own alive interval, buffer
  and preliminary parts — the cross-shaped buffering of Figure 8.  Both
  levels resolve exactly from buffered records during the next scan.
* Second splits are chosen from the side sub-matrices only (categorical
  attributes have no per-side histograms, so they compete only for first
  splits), and their alive intervals are capped at one, which keeps every
  preliminary part attributable to a unique grandchild.
* When the first split lands on a Y axis, on a categorical attribute, or
  has two or more alive intervals, the pending degrades gracefully to the
  CMP-S single-level behaviour (with matrices instead of histograms).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.core.builder import (
    RecordBuffer,
    TreeBuilder,
    adaptive_intervals,
    classify_zones,
    resolve_exact_threshold,
    zone_boundaries,
)
from repro.core.gini import gini, gini_partition
from repro.core.histogram import ClassHistogram
from repro.core.intervals import (
    AttributeAnalysis,
    analyze_attribute,
    choose_split_attribute,
    select_alive_intervals,
)
from repro.core.checkpoint import SlotCounter, loop_state as _loop_state
from repro.core.matrix import MatrixSet
from repro.core.parallel import ScanEngine
from repro.core.predict import predict_split
from repro.core.splits import CategoricalSplit, LinearSplit, NumericSplit, Split
from repro.core.tree import DecisionTree, Node, TreeAccount
from repro.core.cmp_s import merge_contiguous
from repro.data.dataset import Dataset
from repro.data.discretize import ReservoirSampler, edges_from_histogram, equal_depth_edges
from repro.data.schema import Schema
from repro.io.metrics import BuildStats
from repro.io.pager import ScanChunk

_EPS = 1e-12


@dataclass
class BPart:
    """A preliminary subnode accumulating a MatrixSet during a scan."""

    slot: int
    mset: MatrixSet
    predicted: bool

    def clone_empty(self) -> "BPart":
        """Structural copy with zeroed matrices (a worker's scan delta)."""
        return BPart(self.slot, self.mset.clone_empty(), self.predicted)

    def merge_from(self, other: "BPart") -> None:
        """Fold another part's counts into this one (exact, associative)."""
        self.mset.merge_from(other.mset)


@dataclass
class SecondSplit:
    """Per-side second split of a two-level pending.

    Either ``exact_split`` is set (boundary split, no alive interval) or
    the split is estimated around a single alive run ``(alive_lo,
    alive_hi]`` of the side's grid along ``attr``; ``aux_hist`` (on the
    parent-grid edges of ``attr``) accumulates the side's non-buffered
    records so the exact threshold can be resolved without re-deriving the
    side's marginals.
    """

    attr: int
    parts: list[BPart]
    exact_split: NumericSplit | None = None
    alive_lo: float = np.nan
    alive_hi: float = np.nan
    run_i0: int = -1
    run_i1: int = -1
    aux_hist: ClassHistogram | None = None
    buffer: RecordBuffer = field(default_factory=RecordBuffer)

    def scan_delta(self) -> "SecondSplit":
        """Structural clone with empty accumulators (worker-private)."""
        return replace(
            self,
            parts=[part.clone_empty() for part in self.parts],
            aux_hist=(
                self.aux_hist.clone_empty() if self.aux_hist is not None else None
            ),
            buffer=RecordBuffer(budget_bytes=self.buffer.budget_bytes),
        )

    def merge_scan_delta(self, delta: "SecondSplit") -> None:
        """Fold one worker's delta in; callers merge in chunk order."""
        for part, dpart in zip(self.parts, delta.parts):
            part.merge_from(dpart)
        if self.aux_hist is not None:
            assert delta.aux_hist is not None
            self.aux_hist.merge_from(delta.aux_hist)
        self.buffer.extend_from(delta.buffer)


@dataclass
class Side:
    """One half of a two-level pending's first split."""

    second: SecondSplit | None
    part: BPart | None  # the side's single part when ``second`` is None

    def parts(self) -> list[BPart]:
        """All preliminary parts of this side."""
        if self.second is not None:
            return self.second.parts
        assert self.part is not None
        return [self.part]

    def scan_delta(self) -> "Side":
        """Structural clone with empty accumulators (worker-private)."""
        return Side(
            second=self.second.scan_delta() if self.second is not None else None,
            part=self.part.clone_empty() if self.part is not None else None,
        )

    def merge_scan_delta(self, delta: "Side") -> None:
        """Fold one worker's delta in; callers merge in chunk order."""
        if self.second is not None:
            assert delta.second is not None
            self.second.merge_scan_delta(delta.second)
        if self.part is not None:
            assert delta.part is not None
            self.part.merge_from(delta.part)


@dataclass
class BPending:
    """A CMP-B pending split (single- or two-level)."""

    node: Node
    parent_slot: int
    # --- single-level path (CMP-S semantics over MatrixSets) -------------
    exact_split: Split | None = None
    attr: int = -1
    zone_bounds: np.ndarray = field(default_factory=lambda: np.empty(0))
    alive_bounds: list[tuple[float, float]] = field(default_factory=list)
    alive_cum_below: list[np.ndarray] = field(default_factory=list)
    totals: np.ndarray = field(default_factory=lambda: np.empty(0))
    best_boundary_value: float | None = None
    best_boundary_gini: float = np.inf
    parts: list[BPart] = field(default_factory=list)
    buffer: RecordBuffer = field(default_factory=RecordBuffer)
    # --- two-level path ----------------------------------------------------
    two_level: bool = False
    first_exact_threshold: float | None = None
    #: Candidate-threshold count behind ``first_exact_threshold`` (the MDL
    #: split-encoding value term).
    first_exact_candidates: int = 1
    sides: list[Side] = field(default_factory=list)
    # --- linear path (full CMP): a projection band instead of an attribute --
    linear: "LinearSplit | None" = None

    def all_parts(self) -> list[BPart]:
        """Every preliminary part across both paths."""
        if self.two_level:
            return [p for s in self.sides for p in s.parts()]
        return self.parts

    def scan_delta(self) -> "BPending":
        """Structural clone with empty accumulators (one worker's delta).

        Decision-time fields (split, zones, the linear projection, part
        slots) are shared read-only; parts, sides and buffers are fresh
        so each worker thread accumulates privately.  Covers all four
        routing paths — exact, estimated, two-level and linear.
        """
        return replace(
            self,
            parts=[part.clone_empty() for part in self.parts],
            buffer=RecordBuffer(budget_bytes=self.buffer.budget_bytes),
            sides=[side.scan_delta() for side in self.sides],
        )

    def merge_scan_delta(self, delta: "BPending") -> None:
        """Fold one worker's delta in; callers merge in chunk order."""
        for part, dpart in zip(self.parts, delta.parts):
            part.merge_from(dpart)
        self.buffer.extend_from(delta.buffer)
        for side, dside in zip(self.sides, delta.sides):
            side.merge_scan_delta(dside)

    def delta_nbytes(self) -> int:
        """Bytes one fresh scan delta occupies (buffers start empty)."""
        total = sum(part.mset.nbytes() for part in self.all_parts())
        for side in self.sides:
            if side.second is not None and side.second.aux_hist is not None:
                total += side.second.aux_hist.nbytes()
        return total

    def region_bounds(self) -> list[tuple[float, float]]:
        """Value range per part (single-level estimated path only)."""
        bounds: list[tuple[float, float]] = []
        prev_hi = -np.inf
        for lo, hi in self.alive_bounds:
            bounds.append((prev_hi, lo))
            prev_hi = hi
        bounds.append((prev_hi, np.inf))
        return bounds


DecideItem = tuple[Node, int, MatrixSet, bool]


class CMPBBuilder(TreeBuilder):
    """The CMP-B classifier."""

    name = "CMP-B"
    supports_integrated_pruning = True

    #: Alive-interval cap for second-level splits (Figure 8 uses one).
    SECOND_MAX_ALIVE = 1

    def _build(self, dataset: Dataset, stats: BuildStats) -> DecisionTree:
        if self.config.criterion != "gini":
            raise ValueError(f"{self.name} supports only the gini criterion")
        if len(dataset.schema.continuous_indices()) < 2:
            raise ValueError("CMP-B needs at least two continuous attributes")
        engine = self._scan_engine()
        try:
            return self._build_loop(dataset, stats, engine)
        finally:
            stats.parallel_batches += engine.batches_dispatched
            engine.close()

    def _build_loop(
        self, dataset: Dataset, stats: BuildStats, engine: ScanEngine
    ) -> DecisionTree:
        cfg = self.config
        schema = dataset.schema
        n, c = dataset.n_records, dataset.n_classes
        cont = schema.continuous_indices()
        table = self._open_table(dataset, stats)
        ckpt = self._checkpointer(dataset)

        state = None
        if ckpt is not None and cfg.resume and ckpt.exists():
            level, state = ckpt.load(stats)
        if state is not None:
            account: TreeAccount = state["account"]
            root: Node = state["root"]
            nid: np.ndarray = state["nid"]
            pendings: dict[int, BPending] = state["pendings"]
            next_slot: SlotCounter = state["next_slot"]
        else:
            account = TreeAccount()
            rng = np.random.default_rng(cfg.seed)

            # --- Scan 1: quantiling pass (root grid + class totals). ------
            # Reservoir sampling consumes records in stream order, so this
            # scan stays serial under every worker count.
            reservoirs = {
                j: ReservoirSampler(cfg.reservoir_capacity, rng) for j in cont
            }
            totals = np.zeros(c, dtype=np.float64)
            with stats.phase("scan"):
                for chunk in table.scan():
                    totals += np.bincount(chunk.y, minlength=c)
                    for j in cont:
                        reservoirs[j].extend(chunk.X[:, j])
            root_edges = {
                j: equal_depth_edges(reservoirs[j].sample(), cfg.n_intervals)
                for j in cont
            }
            del reservoirs
            root = account.new_node(0, totals)
            # The root's X axis is selected randomly (§2.2).
            root_x = int(cont[rng.integers(0, len(cont))])

            nid = np.zeros(n, dtype=np.int64)
            next_slot = SlotCounter()

            # --- Scan 2: root matrices (Figure 10, line 03). ---------------
            root_mset = MatrixSet.create(schema, root_x, root_edges)
            stats.memory.allocate("mset/root", root_mset.nbytes())
            with stats.phase("scan"):
                engine.scan(
                    table,
                    route=lambda chunk, mset: mset.update(chunk.X, chunk.y),
                    live=root_mset,
                    make_delta=root_mset.clone_empty,
                    merge_delta=root_mset.merge_from,
                    memory=stats.memory,
                    delta_nbytes=root_mset.nbytes(),
                )
            self._charge_nid(stats, n)

            pendings = {}
            with stats.phase("resolve"):
                first = self._decide(root, 0, root_mset, False, next_slot, schema, stats)
            stats.memory.release("mset/root")
            if first is not None:
                pendings[0] = first
            level = 0
            if ckpt is not None:
                with stats.phase("checkpoint"):
                    ckpt.save(level, _loop_state(account, root, nid, pendings, next_slot), stats)

        # --- One scan per one-or-two levels (Figure 10). -------------------
        while pendings:
            with stats.tracer.span("level", level=level + 1, pendings=len(pendings)):
                live = pendings
                with stats.phase("scan"):
                    engine.scan(
                        table,
                        route=lambda chunk, tgt: self._route_chunk(chunk, nid, tgt),
                        live=live,
                        make_delta=lambda: {
                            slot: p.scan_delta() for slot, p in live.items()
                        },
                        merge_delta=lambda delta: [
                            live[slot].merge_scan_delta(d) for slot, d in delta.items()
                        ],
                        memory=stats.memory,
                        delta_nbytes=sum(p.delta_nbytes() for p in live.values()),
                        writeback=nid,
                    )
                self._charge_nid(stats, n)
                for p in pendings.values():
                    stats.memory.allocate(
                        f"buf/{p.node.node_id}",
                        p.buffer.nbytes()
                        + sum(
                            s.second.buffer.nbytes()
                            for s in p.sides
                            if s.second is not None
                        ),
                    )

                with stats.phase("resolve"):
                    new_pendings: dict[int, BPending] = {}
                    remap: dict[int, int] = {}
                    for p in pendings.values():
                        items = self._resolve(p, nid, remap, next_slot, account, schema, stats)
                        stats.memory.release(f"parts/{p.node.node_id}")
                        stats.memory.release(f"buf/{p.node.node_id}")
                        for child, slot, mset, predicted in items:
                            stats.memory.allocate(f"mset/{child.node_id}", mset.nbytes())
                            q = self._decide(child, slot, mset, predicted, next_slot, schema, stats)
                            stats.memory.release(f"mset/{child.node_id}")
                            if q is not None:
                                new_pendings[slot] = q
                    if remap:
                        self._apply_remap(nid, remap)
                pendings = new_pendings
                if cfg.prune == "public":
                    pendings = self._public_pass(root, pendings)
                level += 1
                if ckpt is not None:
                    with stats.phase("checkpoint"):
                        ckpt.save(level, _loop_state(account, root, nid, pendings, next_slot), stats)

        if ckpt is not None:
            ckpt.clear()
        return DecisionTree(root, schema)

    # ------------------------------------------------------------------ routing

    def _route_chunk(
        self, chunk: ScanChunk, nid: np.ndarray, pendings: dict[int, BPending]
    ) -> None:
        slots = nid[chunk.start : chunk.stop]
        for slot, p in pendings.items():
            mask = slots == slot
            if not mask.any():
                continue
            X = chunk.X[mask]
            y = chunk.y[mask]
            rids = chunk.rids[mask]
            if p.two_level:
                self._route_two_level(p, X, y, rids, nid)
            elif p.exact_split is not None:
                left = p.exact_split.goes_left(X)
                for part, m in zip(p.parts, (left, ~left)):
                    part.mset.update(X[m], y[m])
                    nid[rids[m]] = part.slot
            else:
                vals = (
                    p.linear.project(X) if p.linear is not None else X[:, p.attr]
                )
                zones = classify_zones(vals, p.zone_bounds)
                alive = (zones & 1) == 1
                if alive.any():
                    p.buffer.append(X[alive], y[alive], rids[alive])
                for r, part in enumerate(p.parts):
                    m = zones == 2 * r
                    if m.any():
                        part.mset.update(X[m], y[m])
                        nid[rids[m]] = part.slot

    def _route_two_level(
        self,
        p: BPending,
        X: np.ndarray,
        y: np.ndarray,
        rids: np.ndarray,
        nid: np.ndarray,
    ) -> None:
        xv = X[:, p.attr]
        if p.first_exact_threshold is not None:
            side_idx = (xv > p.first_exact_threshold).astype(np.intp)
            keep = np.ones(len(y), dtype=bool)
        else:
            zones = classify_zones(xv, p.zone_bounds)
            buffered = zones == 1
            if buffered.any():
                p.buffer.append(X[buffered], y[buffered], rids[buffered])
            keep = ~buffered
            side_idx = (zones == 2).astype(np.intp)
        for s, side in enumerate(p.sides):
            m = keep & (side_idx == s)
            if m.any():
                self._route_side(side, X[m], y[m], rids[m], nid)

    def _route_side(
        self,
        side: Side,
        X: np.ndarray,
        y: np.ndarray,
        rids: np.ndarray,
        nid: np.ndarray,
    ) -> None:
        if side.second is None:
            assert side.part is not None
            side.part.mset.update(X, y)
            nid[rids] = side.part.slot
            return
        sec = side.second
        if sec.exact_split is not None:
            left = sec.exact_split.goes_left(X)
            for part, m in zip(sec.parts, (left, ~left)):
                part.mset.update(X[m], y[m])
                nid[rids[m]] = part.slot
            return
        v = X[:, sec.attr]
        zones = classify_zones(v, np.array([sec.alive_lo, sec.alive_hi]))
        buffered = zones == 1
        if buffered.any():
            sec.buffer.append(X[buffered], y[buffered], rids[buffered])
        assert sec.aux_hist is not None
        sec.aux_hist.update(v[~buffered], y[~buffered])
        for r, part in enumerate(sec.parts):
            m = zones == 2 * r
            if m.any():
                part.mset.update(X[m], y[m])
                nid[rids[m]] = part.slot

    # ------------------------------------------------------------------ decide

    def _decide(
        self,
        node: Node,
        slot: int,
        mset: MatrixSet,
        predicted: bool,
        next_slot: Callable[[], int],
        schema: Schema,
        stats: BuildStats,
    ) -> BPending | None:
        cfg = self.config
        if (
            node.n_records < cfg.min_records
            or node.gini <= cfg.min_gini
            or node.depth >= cfg.max_depth
        ):
            return None
        x_analysis = analyze_attribute(mset.x_attr, mset.x_marginal())
        y_analyses = [analyze_attribute(j, mset.y_marginal(j)) for j in mset.matrices]
        analyses = [x_analysis] + y_analyses
        winner = choose_split_attribute(analyses, cfg.max_alive)
        if (
            winner is not None
            and winner.attr != mset.x_attr
            and x_analysis.splittable
            and x_analysis.score
            <= winner.score + cfg.x_tie_margin * max(node.gini, 0.0)
        ):
            # Near-tie: prefer the X axis — it is the split that lets both
            # subnodes split again without a scan (the whole point of the
            # prediction, "to maximize the probability that the next split
            # will occur on the X-axes").
            x_analysis.alive = select_alive_intervals(x_analysis, cfg.max_alive)
            winner = x_analysis
        cont_score = winner.score if winner is not None else np.inf

        best_cat_gini = np.inf
        best_cat: tuple[int, np.ndarray] | None = None
        for j, hist in mset.categorical.items():
            try:
                cmask, g = hist.best_subset_split()
            except ValueError:
                continue
            if g < best_cat_gini:
                best_cat_gini, best_cat = g, (j, cmask)

        # Prediction accounting: was the X axis the attribute that wins?
        if predicted:
            stats.predictions_made += 1
            chosen = (
                winner.attr
                if winner is not None and cont_score <= best_cat_gini
                else (best_cat[0] if best_cat is not None else -1)
            )
            if chosen == mset.x_attr:
                stats.predictions_correct += 1

        parent_scores = {a.attr: a.score for a in analyses if np.isfinite(a.score)}
        node_hists: dict[int, ClassHistogram] = {mset.x_attr: mset.x_marginal()}
        for j in mset.matrices:
            node_hists[j] = mset.y_marginal(j)

        # Full CMP hook: try a linear-combination split when univariate
        # splits look poor (overridden by CMPBuilder; returns None here).
        linear = self._maybe_linear(
            node, slot, mset, min(cont_score, best_cat_gini), node_hists,
            parent_scores, next_slot, schema, stats,
        )
        if linear is not None:
            return linear

        if min(cont_score, best_cat_gini) >= node.gini - cfg.min_gain:
            return None

        if best_cat is not None and best_cat_gini < cont_score:
            j, cmask = best_cat
            split: Split = CategoricalSplit(j, tuple(bool(b) for b in cmask))
            return self._single_level_pending(
                node, slot, split, None, node_hists, parent_scores,
                mset.x_attr, next_slot, schema, stats,
            )

        assert winner is not None
        runs = merge_contiguous(winner.alive)
        if len(runs) <= 1:
            # Sides are deterministic: plan each one individually.  A split
            # on the X axis gets exact sub-matrices of every attribute (and
            # may split again, Figure 10 line 18); a split on a Y axis b
            # still yields exact x/b marginals from the sliced (x, b)
            # matrix, used for prediction only (Figure 7, line 2).
            return self._sided_pending(
                node, slot, mset, winner, runs, parent_scores, node_hists,
                next_slot, schema, stats,
            )
        # Two or more alive runs: sides are ambiguous until resolution,
        # so fall back to single-level growth with a shared prediction.
        return self._single_level_pending(
            node, slot, None, winner, node_hists, parent_scores,
            mset.x_attr, next_slot, schema, stats,
        )

    # -- single-level pendings ----------------------------------------------------

    def _single_level_pending(
        self,
        node: Node,
        slot: int,
        exact_split: Split | None,
        winner: AttributeAnalysis | None,
        node_hists: dict[int, ClassHistogram],
        parent_scores: dict[int, float],
        current_x: int,
        next_slot: Callable[[], int],
        schema: Schema,
        stats: BuildStats,
    ) -> BPending | None:
        cfg = self.config
        try:
            predicted_x = predict_split({}, parent_scores)
        except ValueError:
            predicted_x = current_x
        child_edges = self._refined_edges(node_hists, node.n_records)
        p = BPending(node=node, parent_slot=slot)
        if exact_split is None:
            assert winner is not None
            hist = node_hists[winner.attr]
            if not winner.alive:
                exact_split = NumericSplit(
                    winner.attr,
                    float(winner.edges[winner.best_boundary]),
                    n_candidates=max(1, len(winner.edges)),
                )
            else:
                runs = merge_contiguous(winner.alive)
                q = hist.n_intervals
                for i0, i1 in runs:
                    lo = -np.inf if i0 == 0 else float(hist.edges[i0 - 1])
                    hi = np.inf if i1 == q - 1 else float(hist.edges[i1])
                    p.alive_bounds.append((lo, hi))
                    p.alive_cum_below.append(hist.cum_below(i0))
                p.attr = winner.attr
                p.zone_bounds = zone_boundaries(p.alive_bounds)
                p.totals = hist.totals()
                p.best_boundary_value = (
                    float(winner.edges[winner.best_boundary])
                    if winner.has_boundaries
                    else None
                )
                p.best_boundary_gini = winner.gini_min
        p.exact_split = exact_split
        n_parts = 2 if exact_split is not None else len(p.alive_bounds) + 1
        p.parts = [
            BPart(next_slot(), MatrixSet.create(schema, predicted_x, child_edges), True)
            for _ in range(n_parts)
        ]
        stats.memory.allocate(
            f"parts/{node.node_id}", sum(part.mset.nbytes() for part in p.parts)
        )
        return p

    # -- two-level pendings ----------------------------------------------------------

    def _sided_pending(
        self,
        node: Node,
        slot: int,
        mset: MatrixSet,
        winner: AttributeAnalysis,
        runs: list[tuple[int, int]],
        parent_scores: dict[int, float],
        node_hists: dict[int, ClassHistogram],
        next_slot: Callable[[], int],
        schema: Schema,
        stats: BuildStats,
    ) -> BPending:
        """A first split with deterministic sides (at most one alive run).

        Each side gets its own prediction, grids and — when the split fell
        on the X axis — its own second split.
        """
        first_hist = node_hists[winner.attr]
        q1 = first_hist.n_intervals
        allow_second = winner.attr == mset.x_attr
        p = BPending(node=node, parent_slot=slot, attr=winner.attr, two_level=True)
        if runs:
            i0, i1 = runs[0]
            lo = -np.inf if i0 == 0 else float(first_hist.edges[i0 - 1])
            hi = np.inf if i1 == q1 - 1 else float(first_hist.edges[i1])
            p.alive_bounds = [(lo, hi)]
            p.alive_cum_below = [first_hist.cum_below(i0)]
            p.zone_bounds = zone_boundaries(p.alive_bounds)
            p.totals = first_hist.totals()
            p.best_boundary_value = (
                float(winner.edges[winner.best_boundary])
                if winner.has_boundaries
                else None
            )
            p.best_boundary_gini = winner.gini_min
            ranges = [(0, i0), (i1 + 1, q1)]
        else:
            k = winner.best_boundary
            p.first_exact_threshold = float(first_hist.edges[k])
            p.first_exact_candidates = max(1, len(first_hist.edges))
            ranges = [(0, k + 1), (k + 1, q1)]

        for lo_i, hi_i in ranges:
            side_hists = self._side_hists(mset, winner.attr, lo_i, hi_i)
            p.sides.append(
                self._plan_side(
                    node, mset, side_hists, node_hists, allow_second,
                    parent_scores, next_slot, schema,
                )
            )
        stats.memory.allocate(
            f"parts/{node.node_id}",
            sum(part.mset.nbytes() for part in p.all_parts()),
        )
        return p

    def _side_hists(
        self, mset: MatrixSet, split_attr: int, lo: int, hi: int
    ) -> dict[int, ClassHistogram]:
        """Exact marginals available for one side of a split.

        An X-axis split slices every matrix (all attributes exact); a
        Y-axis split slices only the ``(x, b)`` matrix (x and b exact).
        """
        if split_attr == mset.x_attr:
            hists: dict[int, ClassHistogram] = {mset.x_attr: mset.x_marginal(lo, hi)}
            for j in mset.matrices:
                hists[j] = mset.y_marginal(j, lo, hi)
            return hists
        return {
            mset.x_attr: mset.x_marginal_given_y(split_attr, lo, hi),
            split_attr: mset.y_marginal_rows(split_attr, lo, hi),
        }

    def _plan_side(
        self,
        node: Node,
        mset: MatrixSet,
        side_hists: dict[int, ClassHistogram],
        node_hists: dict[int, ClassHistogram],
        allow_second: bool,
        parent_scores: dict[int, float],
        next_slot: Callable[[], int],
        schema: Schema,
    ) -> Side:
        """Choose a side's second split and preliminary parts (Figure 10, line 18)."""
        cfg = self.config
        side_counts = next(iter(side_hists.values())).totals()
        side_n = float(side_counts.sum())
        side_gini = float(gini(side_counts))

        second: SecondSplit | None = None
        exact_scores: dict[int, float] = {}
        if (
            side_n >= cfg.min_records
            and side_gini > cfg.min_gini
            and node.depth + 1 < cfg.max_depth
        ):
            analyses = [analyze_attribute(j, h) for j, h in side_hists.items()]
            exact_scores = {a.attr: a.score for a in analyses if np.isfinite(a.score)}
            if allow_second:
                side_winner = choose_split_attribute(analyses, self.SECOND_MAX_ALIVE)
                if (
                    side_winner is not None
                    and side_winner.score < side_gini - cfg.min_gain
                ):
                    second = self._plan_second_split(
                        side_winner, side_hists[side_winner.attr], schema
                    )

        try:
            predicted_x = predict_split(exact_scores, parent_scores)
        except ValueError:
            predicted_x = mset.x_attr
        q_child = self._grid_size(side_n)
        child_edges: dict[int, np.ndarray] = {}
        for j, h in node_hists.items():
            src = side_hists.get(j, h)
            child_edges[j] = edges_from_histogram(
                src.edges, src.counts.sum(axis=1), q_child, src.vmin, src.vmax
            )
        if second is None:
            part = BPart(
                next_slot(), MatrixSet.create(schema, predicted_x, child_edges), True
            )
            return Side(second=None, part=part)
        second.parts = [
            BPart(next_slot(), MatrixSet.create(schema, predicted_x, child_edges), True)
            for _ in range(2)
        ]
        return Side(second=second, part=None)

    def _plan_second_split(
        self,
        side_winner: AttributeAnalysis,
        hist: ClassHistogram,
        schema: Schema,
    ) -> SecondSplit:
        runs = merge_contiguous(side_winner.alive)
        if not runs:
            return SecondSplit(
                attr=side_winner.attr,
                parts=[],
                exact_split=NumericSplit(
                    side_winner.attr,
                    float(side_winner.edges[side_winner.best_boundary]),
                    n_candidates=max(1, len(side_winner.edges)),
                ),
            )
        i0, i1 = runs[0]
        q = hist.n_intervals
        lo = -np.inf if i0 == 0 else float(hist.edges[i0 - 1])
        hi = np.inf if i1 == q - 1 else float(hist.edges[i1])
        return SecondSplit(
            attr=side_winner.attr,
            parts=[],
            alive_lo=lo,
            alive_hi=hi,
            run_i0=i0,
            run_i1=i1,
            aux_hist=ClassHistogram(hist.edges, schema.n_classes),
        )

    def _grid_size(self, n_records: float) -> int:
        cfg = self.config
        q = adaptive_intervals(cfg.n_intervals, n_records)
        return min(q, max(4, int(cfg.matrix_max_cells**0.5)))

    def _refined_edges(
        self, hists: dict[int, ClassHistogram], n_records: float
    ) -> dict[int, np.ndarray]:
        q = self._grid_size(n_records)
        return {
            j: edges_from_histogram(
                h.edges, h.counts.sum(axis=1), q, h.vmin, h.vmax
            )
            for j, h in hists.items()
        }

    # ------------------------------------------------------------------ resolve

    def _maybe_linear(
        self,
        node: Node,
        slot: int,
        mset: MatrixSet,
        best_univariate: float,
        node_hists: dict[int, ClassHistogram],
        parent_scores: dict[int, float],
        next_slot: Callable[[], int],
        schema: Schema,
        stats: BuildStats,
    ) -> BPending | None:
        """Linear-combination split hook; CMP-B never takes one."""
        return None

    def _resolve(
        self,
        p: BPending,
        nid: np.ndarray,
        remap: dict[int, int],
        next_slot: Callable[[], int],
        account: TreeAccount,
        schema: Schema,
        stats: BuildStats,
    ) -> list[DecideItem]:
        if p.linear is not None:
            return self._resolve_linear(p, nid, remap, account, schema, stats)
        if p.two_level:
            return self._resolve_two_level(p, nid, remap, account, schema, stats)
        node = p.node
        if p.exact_split is not None:
            lpart, rpart = p.parts
            lc = lpart.mset.class_counts
            rc = rpart.mset.class_counts
            assert lc is not None and rc is not None
            if lc.sum() == 0 or rc.sum() == 0:
                for part in p.parts:
                    remap[part.slot] = p.parent_slot
                return []
            node.split = p.exact_split
            left = account.new_node(node.depth + 1, lc.copy())
            right = account.new_node(node.depth + 1, rc.copy())
            node.left, node.right = left, right
            return [
                (left, lpart.slot, lpart.mset, lpart.predicted),
                (right, rpart.slot, rpart.mset, rpart.predicted),
            ]

        Xb, yb, rids = p.buffer.concatenated()
        buf_vals = Xb[:, p.attr] if len(yb) else np.empty(0)
        res = resolve_exact_threshold(
            p.totals,
            p.best_boundary_value,
            p.best_boundary_gini,
            p.alive_bounds,
            p.alive_cum_below,
            buf_vals,
            yb,
        )
        if res is None:
            for part in p.parts:
                remap[part.slot] = p.parent_slot
            return []
        if res.from_buffer:
            stats.splits_resolved_exactly += 1
        threshold = res.threshold

        base = p.parts[0]
        left_mset = MatrixSet.create(
            schema, base.mset.x_attr, self._edges_of(base.mset, schema)
        )
        right_mset = MatrixSet.create(
            schema, base.mset.x_attr, self._edges_of(base.mset, schema)
        )
        lslot, rslot = next_slot(), next_slot()
        for part, (__, hi) in zip(p.parts, p.region_bounds()):
            target, slot = (
                (left_mset, lslot) if hi <= threshold else (right_mset, rslot)
            )
            target.merge_from(part.mset)
            remap[part.slot] = slot
        if len(yb):
            goes_left = buf_vals <= threshold
            left_mset.update(Xb[goes_left], yb[goes_left])
            right_mset.update(Xb[~goes_left], yb[~goes_left])
            nid[rids[goes_left]] = lslot
            nid[rids[~goes_left]] = rslot
        assert left_mset.class_counts is not None
        assert right_mset.class_counts is not None
        if left_mset.class_counts.sum() == 0 or right_mset.class_counts.sum() == 0:
            for part in p.parts:
                remap[part.slot] = p.parent_slot
            return []
        node.split = NumericSplit(p.attr, threshold, n_candidates=res.n_candidates)
        left = account.new_node(node.depth + 1, left_mset.class_counts.copy())
        right = account.new_node(node.depth + 1, right_mset.class_counts.copy())
        node.left, node.right = left, right
        return [
            (left, lslot, left_mset, base.predicted),
            (right, rslot, right_mset, p.parts[-1].predicted),
        ]

    def _resolve_linear(
        self,
        p: BPending,
        nid: np.ndarray,
        remap: dict[int, int],
        account: TreeAccount,
        schema: Schema,
        stats: BuildStats,
    ) -> list[DecideItem]:
        """Resolve a linear split's exact intercept from its band buffer.

        Candidates: the band's lower edge (everything buffered goes right)
        and every distinct buffered projection value.  The left side of a
        candidate is the under part's (exact) class counts plus the
        buffered prefix.
        """
        assert p.linear is not None
        node = p.node
        under, above = p.parts
        assert under.mset.class_counts is not None
        assert above.mset.class_counts is not None
        Xb, yb, rids = p.buffer.concatenated()
        w = p.linear.project(Xb) if len(yb) else np.empty(0)
        buf_counts = (
            np.bincount(yb, minlength=schema.n_classes).astype(np.float64)
            if len(yb)
            else np.zeros(schema.n_classes)
        )
        base = under.mset.class_counts
        totals = base + above.mset.class_counts + buf_counts
        n = totals.sum()

        cand_thr = [float(p.zone_bounds[0])]
        cand_left = [base]
        if len(yb):
            order = np.argsort(w, kind="stable")
            v = w[order]
            lab = yb[order]
            onehot = np.zeros((len(v), schema.n_classes), dtype=np.float64)
            onehot[np.arange(len(v)), lab] = 1.0
            cum = np.cumsum(onehot, axis=0) + base[None, :]
            boundaries = list(np.nonzero(v[:-1] < v[1:])[0]) + [len(v) - 1]
            for t in boundaries:
                cand_thr.append(float(v[t]))
                cand_left.append(cum[t])
        left = np.stack(cand_left)
        nl = left.sum(axis=1)
        valid = (nl > 0) & (nl < n)
        if not valid.any():
            for part in p.parts:
                remap[part.slot] = p.parent_slot
            return []
        ginis = np.where(
            valid,
            np.asarray(gini_partition(left, totals[None, :] - left)),
            np.inf,
        )
        k = int(np.argmin(ginis))
        threshold = cand_thr[k]
        split = LinearSplit(
            p.linear.attr_x, p.linear.attr_y, b=p.linear.b,
            c=threshold, a=p.linear.a,
        )
        if len(yb):
            goes_left = w <= threshold
            under.mset.update(Xb[goes_left], yb[goes_left])
            above.mset.update(Xb[~goes_left], yb[~goes_left])
            nid[rids[goes_left]] = under.slot
            nid[rids[~goes_left]] = above.slot
        if (
            under.mset.class_counts.sum() == 0
            or above.mset.class_counts.sum() == 0
        ):
            for part in p.parts:
                remap[part.slot] = p.parent_slot
            return []
        stats.linear_splits += 1
        stats.splits_resolved_exactly += 1
        node.split = split
        leftn = account.new_node(node.depth + 1, under.mset.class_counts.copy())
        rightn = account.new_node(node.depth + 1, above.mset.class_counts.copy())
        node.left, node.right = leftn, rightn
        return [
            (leftn, under.slot, under.mset, under.predicted),
            (rightn, above.slot, above.mset, above.predicted),
        ]

    def _resolve_two_level(
        self,
        p: BPending,
        nid: np.ndarray,
        remap: dict[int, int],
        account: TreeAccount,
        schema: Schema,
        stats: BuildStats,
    ) -> list[DecideItem]:
        node = p.node
        if p.first_exact_threshold is not None:
            threshold = p.first_exact_threshold
            first_candidates = p.first_exact_candidates
        else:
            Xb, yb, rids = p.buffer.concatenated()
            buf_vals = Xb[:, p.attr] if len(yb) else np.empty(0)
            res = resolve_exact_threshold(
                p.totals,
                p.best_boundary_value,
                p.best_boundary_gini,
                p.alive_bounds,
                p.alive_cum_below,
                buf_vals,
                yb,
            )
            if res is None:
                for part in p.all_parts():
                    remap[part.slot] = p.parent_slot
                return []
            if res.from_buffer:
                stats.splits_resolved_exactly += 1
            threshold = res.threshold
            first_candidates = res.n_candidates
            if len(yb):
                goes_left = buf_vals <= threshold
                for s, m in ((0, goes_left), (1, ~goes_left)):
                    if m.any():
                        self._route_side(p.sides[s], Xb[m], yb[m], rids[m], nid)

        items: list[DecideItem] = []
        children: list[Node] = []
        for side in p.sides:
            child, child_items = self._finish_side(
                side, node.depth, remap, nid, account, schema, stats
            )
            children.append(child)
            items.extend(child_items)
        lc = children[0].class_counts.sum()
        rc = children[1].class_counts.sum()
        if lc == 0 or rc == 0:
            # Defensive; resolve candidate validation should prevent this.
            for part in p.all_parts():
                remap[part.slot] = p.parent_slot
            return []
        node.split = NumericSplit(p.attr, threshold, n_candidates=first_candidates)
        node.left, node.right = children
        return items

    def _finish_side(
        self,
        side: Side,
        parent_depth: int,
        remap: dict[int, int],
        nid: np.ndarray,
        account: TreeAccount,
        schema: Schema,
        stats: BuildStats,
    ) -> tuple[Node, list[DecideItem]]:
        if side.second is None:
            assert side.part is not None
            part = side.part
            assert part.mset.class_counts is not None
            child = account.new_node(parent_depth + 1, part.mset.class_counts.copy())
            return child, [(child, part.slot, part.mset, part.predicted)]

        sec = side.second
        if sec.exact_split is not None:
            split: NumericSplit | None = sec.exact_split
            c2 = None
        else:
            split, c2 = self._resolve_second(sec, schema, stats)
        lpart, rpart = sec.parts
        if split is None:
            return self._merge_side(side, parent_depth, remap, nid, account)
        if c2 is not None:
            # Distribute the second-level buffer.
            Xb, yb, rids = sec.buffer.concatenated()
            if len(yb):
                goes_left = Xb[:, sec.attr] <= c2
                lpart.mset.update(Xb[goes_left], yb[goes_left])
                rpart.mset.update(Xb[~goes_left], yb[~goes_left])
                nid[rids[goes_left]] = lpart.slot
                nid[rids[~goes_left]] = rpart.slot
        assert lpart.mset.class_counts is not None
        assert rpart.mset.class_counts is not None
        if (
            lpart.mset.class_counts.sum() == 0
            or rpart.mset.class_counts.sum() == 0
        ):
            return self._merge_side(side, parent_depth, remap, nid, account)
        stats.two_level_splits += 1
        child = account.new_node(
            parent_depth + 1,
            lpart.mset.class_counts + rpart.mset.class_counts,
        )
        child.split = split
        stats.second_level_node_ids.append(child.node_id)
        gl = account.new_node(parent_depth + 2, lpart.mset.class_counts.copy())
        gr = account.new_node(parent_depth + 2, rpart.mset.class_counts.copy())
        child.left, child.right = gl, gr
        return child, [
            (gl, lpart.slot, lpart.mset, lpart.predicted),
            (gr, rpart.slot, rpart.mset, rpart.predicted),
        ]

    def _resolve_second(
        self, sec: SecondSplit, schema: Schema, stats: BuildStats
    ) -> tuple[NumericSplit | None, float | None]:
        """Exact threshold for an estimated second split.

        Candidates are the alive run's two edges (ginis recomputed on the
        side's final population) plus every distinct buffered value inside
        the run.  Returns ``(split, threshold)`` or ``(None, None)`` when
        no valid candidate exists.
        """
        assert sec.aux_hist is not None
        Xb, yb, __ = sec.buffer.concatenated()
        buf_vals = Xb[:, sec.attr] if len(yb) else np.empty(0)
        base = sec.aux_hist.cum_below(sec.run_i0)
        buf_counts = (
            np.bincount(yb, minlength=schema.n_classes).astype(np.float64)
            if len(yb)
            else np.zeros(schema.n_classes)
        )
        totals = sec.aux_hist.totals() + buf_counts
        n = totals.sum()

        cand_thr: list[float] = []
        cand_left: list[np.ndarray] = []
        if np.isfinite(sec.alive_lo):
            cand_thr.append(sec.alive_lo)
            cand_left.append(base)
        if len(yb):
            order = np.argsort(buf_vals, kind="stable")
            v = buf_vals[order]
            lab = yb[order]
            onehot = np.zeros((len(v), schema.n_classes), dtype=np.float64)
            onehot[np.arange(len(v)), lab] = 1.0
            cum = np.cumsum(onehot, axis=0) + base[None, :]
            for t in np.nonzero(v[:-1] < v[1:])[0]:
                cand_thr.append(float(v[t]))
                cand_left.append(cum[t])
        if np.isfinite(sec.alive_hi):
            cand_thr.append(sec.alive_hi)
            cand_left.append(base + buf_counts)
        if not cand_thr:
            return None, None
        left = np.stack(cand_left)
        nl = left.sum(axis=1)
        valid = (nl > 0) & (nl < n)
        if not valid.any():
            return None, None
        ginis = np.where(
            valid,
            np.asarray(gini_partition(left, totals[None, :] - left)),
            np.inf,
        )
        k = int(np.argmin(ginis))
        stats.splits_resolved_exactly += 1
        return (
            NumericSplit(sec.attr, float(cand_thr[k]), n_candidates=len(cand_thr)),
            float(cand_thr[k]),
        )

    def _merge_side(
        self,
        side: Side,
        parent_depth: int,
        remap: dict[int, int],
        nid: np.ndarray,
        account: TreeAccount,
    ) -> tuple[Node, list[DecideItem]]:
        """Collapse a side whose second split failed into one child."""
        sec = side.second
        assert sec is not None
        lpart, rpart = sec.parts
        lpart.mset.merge_from(rpart.mset)
        remap[rpart.slot] = lpart.slot
        Xb, yb, rids = sec.buffer.concatenated()
        if len(yb):
            lpart.mset.update(Xb, yb)
            nid[rids] = lpart.slot
        assert lpart.mset.class_counts is not None
        child = account.new_node(parent_depth + 1, lpart.mset.class_counts.copy())
        return child, [(child, lpart.slot, lpart.mset, lpart.predicted)]

    # ------------------------------------------------------------------ misc

    @staticmethod
    def _edges_of(mset: MatrixSet, schema: Schema) -> dict[int, np.ndarray]:
        edges = {mset.x_attr: mset.x_edges}
        for j, m in mset.matrices.items():
            edges[j] = m.y_edges
        return edges

    @staticmethod
    def _charge_nid(stats: BuildStats, n: int) -> None:
        stats.io.count_aux_read(n)
        stats.io.count_aux_write(n)

    @staticmethod
    def _apply_remap(nid: np.ndarray, remap: dict[int, int]) -> None:
        size = max(int(nid.max()), max(remap)) + 1
        lookup = np.arange(size, dtype=np.int64)
        for src, dst in remap.items():
            lookup[src] = dst
        nid[:] = lookup[nid]

    def _public_pass(
        self, root: Node, pendings: dict[int, BPending]
    ) -> dict[int, BPending]:
        from repro.pruning.public import public_prune_pass

        open_ids = {p.node.node_id for p in pendings.values()}
        removed = public_prune_pass(root, open_ids)
        if not removed:
            return pendings
        return {
            slot: p for slot, p in pendings.items() if p.node.node_id not in removed
        }
