"""Compiled batch inference: a trained tree flattened into numpy arrays.

The training side of this repository is scan-oriented, but the serving
side (ROADMAP: heavy prediction traffic) was still walking Python
``Node`` objects record-batch by record-batch.  This module flattens a
:class:`~repro.core.tree.DecisionTree` into contiguous arrays — one row
per node, in pre-order — and routes whole batches iteratively with
vectorized active-set masking, so ``predict``/``predict_proba`` never
touch a Python node object:

* ``kind`` tags each node (leaf / numeric / categorical / linear);
* ``attr``/``attr2``, ``coef_a``/``coef_b`` and ``threshold`` encode all
  three split forms of :mod:`repro.core.splits` (``a <= C``, subset
  splits, and ``a*x + b*y <= c`` linear-combination splits);
* ``left``/``right`` are child *indices* (``-1`` at leaves);
* categorical subset masks live in one flat boolean array addressed by
  per-node ``cat_offset``/``cat_len``, with ``default_left`` routing
  category codes unseen at training time toward the heavier child;
* per-leaf class-count rows feed a ``(n_leaves, n_classes)`` probability
  table for ``predict_proba``.

Every comparison uses the same float64 expression the object walker
evaluates, so the compiled engine is **bit-identical** to
``DecisionTree.walk_predict`` / ``walk_predict_proba`` on any input —
the property tests in ``tests/test_compiled.py`` assert exactly that on
randomized trees of all three split kinds.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.native import forest_kernel as native_forest_kernel
from repro.core.native import route_kernel as native_route_kernel
from repro.core.splits import CategoricalSplit, LinearSplit, NumericSplit
from repro.core.tree import DecisionTree, Node, _as_batch

#: Node tags in :attr:`CompiledTree.kind`.
LEAF, NUMERIC, CATEGORICAL, LINEAR = 0, 1, 2, 3


@dataclass(frozen=True)
class CompiledTree:
    """Array form of a decision tree; see the module docstring.

    Immutable once built: a pruned tree compiles to a *new*
    ``CompiledTree`` (the model registry keys serving state off
    :attr:`fingerprint` for the same reason).
    """

    kind: np.ndarray  #: (n_nodes,) int8 node tag
    attr: np.ndarray  #: (n_nodes,) int32 split attribute (x attribute for linear)
    attr2: np.ndarray  #: (n_nodes,) int32 linear y attribute, -1 elsewhere
    attr2c: np.ndarray  #: (n_nodes,) int32 gather-safe ``attr2`` (= ``attr`` off linear nodes)
    coef_a: np.ndarray  #: (n_nodes,) float64 linear ``a`` coefficient
    coef_b: np.ndarray  #: (n_nodes,) float64 linear ``b`` coefficient
    threshold: np.ndarray  #: (n_nodes,) float64 numeric threshold / linear ``c``
    left: np.ndarray  #: (n_nodes,) intp left-child index; leaves self-loop
    right: np.ndarray  #: (n_nodes,) intp right-child index; leaves self-loop
    default_left: np.ndarray  #: (n_nodes,) bool unseen-category routing
    cat_offset: np.ndarray  #: (n_nodes,) int64 offset into ``cat_mask``
    cat_len: np.ndarray  #: (n_nodes,) int64 categorical mask length
    cat_mask: np.ndarray  #: (sum cat_len,) bool flat subset masks
    node_id: np.ndarray  #: (n_nodes,) int64 original ``Node.node_id``
    leaf_class: np.ndarray  #: (n_nodes,) int64 majority class (valid at leaves)
    leaf_row: np.ndarray  #: (n_nodes,) intp row into ``proba`` (valid at leaves)
    proba: np.ndarray  #: (n_leaves, n_classes) float64 leaf class distributions
    counts: np.ndarray  #: (n_leaves, n_classes) float64 raw leaf class counts
    n_classes: int
    n_attributes: int  #: record width the tree was trained on
    depth: int  #: depth of the deepest leaf (root = 0)
    has_linear: bool  #: any linear split present
    has_categorical: bool  #: any categorical split present
    fingerprint: str  #: stable content hash (model-registry key)
    _scalars_cache: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n_nodes(self) -> int:
        """Total node count."""
        return len(self.kind)

    @property
    def n_leaves(self) -> int:
        """Leaf count."""
        return len(self.proba)

    def nbytes(self) -> int:
        """Total bytes held by the flattened arrays."""
        return sum(
            getattr(self, f).nbytes
            for f in (
                "kind", "attr", "attr2", "attr2c", "coef_a", "coef_b",
                "threshold", "left", "right", "default_left", "cat_offset",
                "cat_len", "cat_mask", "node_id", "leaf_class", "leaf_row",
                "proba", "counts",
            )
        )

    # -- batch routing -------------------------------------------------------

    def _node_scalars(self) -> tuple:
        """Per-node metadata as plain Python lists (cached).

        The numpy routing path visits one tree node per iteration of a
        Python loop; plain-list indexing there is several times cheaper
        than numpy scalar extraction.
        """
        cached = self._scalars_cache
        if cached is None:
            cached = (
                self.kind.tolist(),
                self.attr.tolist(),
                self.attr2.tolist(),
                self.coef_a.tolist(),
                self.coef_b.tolist(),
                self.threshold.tolist(),
                self.left.tolist(),
                self.right.tolist(),
                self.default_left.tolist(),
                self.cat_offset.tolist(),
                self.cat_len.tolist(),
            )
            object.__setattr__(self, "_scalars_cache", cached)
        return cached

    def route(self, X: np.ndarray) -> np.ndarray:
        """Node *index* of each record's leaf (the routing core).

        Dispatches to the native C kernel when one could be built
        (:mod:`repro.core.native`), otherwise to the vectorized numpy
        descent — both bit-identical to the object walker.
        """
        X = _as_batch(X)
        n = len(X)
        if n == 0 or self.kind[0] == LEAF:
            return np.zeros(n, dtype=np.intp)
        kernel = native_route_kernel()
        if kernel is not None:
            return self._route_native(kernel, X)
        return self._route_numpy(X)

    def _route_native(self, kernel, X: np.ndarray) -> np.ndarray:
        X = np.ascontiguousarray(X)
        out = np.empty(len(X), dtype=np.intp)
        kernel(self, X, out)
        return out

    def _route_numpy(self, X: np.ndarray) -> np.ndarray:
        """Vectorized fallback: grouped pre-order descent.

        Records are kept as per-node active index sets (the whole batch
        at the root) and partitioned down the tree with one single-column
        gather and one vectorized comparison per node — the per-node
        threshold, coefficients and children are Python scalars, so no
        per-record node-table gathers happen at all.  Columns are
        gathered from a Fortran-order copy so every ``take`` hits
        contiguous memory, and index sets stay sorted under boolean
        partitioning, keeping the gathers cache-friendly.
        """
        n = len(X)
        out = np.zeros(n, dtype=np.intp)
        XF = np.asfortranarray(X)
        cols = [XF[:, j] for j in range(XF.shape[1])]
        (kind, attr, attr2, coef_a, coef_b, threshold,
         left, right, default_left, cat_offset, cat_len) = self._node_scalars()
        stack: list[tuple[int, np.ndarray]] = [(0, np.arange(n, dtype=np.intp))]
        while stack:
            i, idx = stack.pop()
            k = kind[i]
            if k == LEAF:
                out[idx] = i
                continue
            if idx.size == 0:
                continue
            if k == NUMERIC:
                goes = cols[attr[i]].take(idx) <= threshold[i]
            elif k == LINEAR:
                goes = (
                    coef_a[i] * cols[attr[i]].take(idx)
                    + coef_b[i] * cols[attr2[i]].take(idx)
                ) <= threshold[i]
            else:
                codes = cols[attr[i]].take(idx).astype(np.intp)
                length = cat_len[i]
                seen = (codes >= 0) & (codes < length)
                mask = self.cat_mask[cat_offset[i] : cat_offset[i] + length]
                goes = np.where(
                    seen, mask[np.clip(codes, 0, length - 1)], default_left[i]
                )
            stack.append((right[i], idx[~goes]))
            stack.append((left[i], idx[goes]))
        return out

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf ``node_id`` per record (compiled ``DecisionTree.apply``)."""
        return self.node_id[self.route(X)]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-class label per record."""
        return self.leaf_class[self.route(X)]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Per-class probabilities, shape ``(n, n_classes)``."""
        return self.proba[self.leaf_row[self.route(X)]]


def tree_fingerprint(tree: DecisionTree) -> str:
    """Stable content hash of a tree (structure, splits, counts, schema).

    Reuses the tree's (lazily built) compiled form: hashing the flattened
    arrays is iterative, so trees deeper than Python's recursion limit
    fingerprint fine where a JSON-based hash would not.
    """
    return tree.compiled().fingerprint


def compile_tree(tree: DecisionTree) -> CompiledTree:
    """Flatten ``tree`` into a :class:`CompiledTree` (pre-order layout)."""
    nodes: list[Node] = list(tree.iter_nodes())
    index = {id(node): i for i, node in enumerate(nodes)}
    n = len(nodes)
    n_classes = tree.schema.n_classes

    kind = np.zeros(n, dtype=np.int8)
    attr = np.zeros(n, dtype=np.int32)
    attr2 = np.full(n, -1, dtype=np.int32)
    coef_a = np.ones(n, dtype=np.float64)
    coef_b = np.zeros(n, dtype=np.float64)
    threshold = np.zeros(n, dtype=np.float64)
    # Leaves self-loop: route() advances every record each level and a
    # finished record simply stays put.
    left = np.arange(n, dtype=np.intp)
    right = np.arange(n, dtype=np.intp)
    default_left = np.zeros(n, dtype=bool)
    cat_offset = np.zeros(n, dtype=np.int64)
    cat_len = np.zeros(n, dtype=np.int64)
    node_id = np.zeros(n, dtype=np.int64)
    leaf_class = np.zeros(n, dtype=np.int64)
    leaf_row = np.zeros(n, dtype=np.intp)

    masks: list[np.ndarray] = []
    mask_total = 0
    leaves: list[Node] = []

    for i, node in enumerate(nodes):
        node_id[i] = node.node_id
        if node.is_leaf:
            kind[i] = LEAF
            leaf_class[i] = node.majority_class
            leaf_row[i] = len(leaves)
            leaves.append(node)
            continue
        split = node.split
        left[i] = index[id(node.left)]
        right[i] = index[id(node.right)]
        if isinstance(split, NumericSplit):
            kind[i] = NUMERIC
            attr[i] = split.attr
            threshold[i] = split.threshold
        elif isinstance(split, CategoricalSplit):
            kind[i] = CATEGORICAL
            attr[i] = split.attr
            # Unseen category codes follow the heavier child (ties left) —
            # the same rule DecisionTree._route applies.
            default_left[i] = node.left.n_records >= node.right.n_records  # type: ignore[union-attr]
            m = np.asarray(split.left_mask, dtype=bool)
            cat_offset[i] = mask_total
            cat_len[i] = len(m)
            masks.append(m)
            mask_total += len(m)
        elif isinstance(split, LinearSplit):
            kind[i] = LINEAR
            attr[i] = split.attr_x
            attr2[i] = split.attr_y
            coef_a[i] = split.a
            coef_b[i] = split.b
            threshold[i] = split.c
        else:
            raise TypeError(f"unknown split type {type(split).__name__}")

    # Leaf probability table, row order == pre-order leaf order — the same
    # construction (and float64 arithmetic) as walk_predict_proba.  Empty
    # leaves predict from the nearest populated ancestor's distribution
    # (Node.effective_counts); ``counts`` keeps the raw per-leaf counts.
    proba = np.empty((len(leaves), n_classes), dtype=np.float64)
    counts = np.empty((len(leaves), n_classes), dtype=np.float64)
    for row, node in enumerate(leaves):
        counts[row] = node.class_counts
        effective = node.effective_counts
        total = effective.sum()
        proba[row] = (
            effective / total
            if total > 0
            else np.full_like(effective, 1.0 / len(effective))
        )

    cat_mask = np.concatenate(masks) if masks else np.zeros(0, dtype=bool)
    attr2c = np.where(kind == LINEAR, attr2, attr).astype(np.int32)
    depth = int(max(node.depth for node in nodes) - tree.root.depth)

    # Content hash over the flattened arrays plus the schema: iterative
    # (deep chain trees fingerprint fine) and covers structure, split
    # parameters and leaf distributions.
    digest = hashlib.sha256()
    for arr in (
        kind, attr, attr2, coef_a, coef_b, threshold, left, right,
        default_left, cat_offset, cat_len, cat_mask, node_id, counts,
    ):
        digest.update(np.ascontiguousarray(arr).tobytes())
    digest.update(repr(tree.schema).encode("utf-8"))

    return CompiledTree(
        kind=kind,
        attr=attr,
        attr2=attr2,
        attr2c=attr2c,
        coef_a=coef_a,
        coef_b=coef_b,
        threshold=threshold,
        left=left,
        right=right,
        default_left=default_left,
        cat_offset=cat_offset,
        cat_len=cat_len,
        cat_mask=cat_mask,
        node_id=node_id,
        leaf_class=leaf_class,
        leaf_row=leaf_row,
        proba=proba,
        counts=counts,
        n_classes=n_classes,
        n_attributes=tree.schema.n_attributes,
        depth=depth,
        has_linear=bool((kind == LINEAR).any()),
        has_categorical=bool((kind == CATEGORICAL).any()),
        fingerprint=digest.hexdigest(),
    )


@dataclass(frozen=True)
class CompiledForest:
    """An ensemble packed into one set of concatenated node arrays.

    The member trees' pre-order node arrays are laid back to back, with
    child indices, ``cat_mask`` offsets and leaf rows shifted to global
    positions: one native C call (:func:`repro.core.native.forest_kernel`)
    routes a whole batch through every member and accumulates the leaf
    ``values`` rows.  The numpy fallback routes each member with its own
    (already bit-identical) :meth:`CompiledTree.route` and adds the same
    value rows in the same member order — the element-wise fold order
    matches the C loop exactly, so the two paths are bit-identical.

    Aggregation ``mode``:

    * ``"average"`` (bagging) — ``values`` rows are member-leaf class
      distributions; ``predict_proba`` divides the accumulated sum by
      the member count (soft voting), ``predict`` is its argmax.
    * ``"sum_softmax"`` (boosting) — ``values`` rows are leaf score
      contributions added onto ``base``; ``predict_proba`` is the
      softmax of the accumulated raw scores, ``predict`` its argmax.

    ``counts`` feeds the serving engine's degraded majority-class
    fallback (summed over axis 0, like a tree's per-leaf counts).
    """

    members: tuple[CompiledTree, ...]
    tree_offsets: np.ndarray  #: (T + 1,) int64 member root node offsets
    kind: np.ndarray
    attr: np.ndarray
    attr2: np.ndarray
    coef_a: np.ndarray
    coef_b: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    default_left: np.ndarray
    cat_offset: np.ndarray
    cat_len: np.ndarray
    cat_mask: np.ndarray
    leaf_row: np.ndarray  #: (n_nodes,) int64 global row into ``values``
    values: np.ndarray  #: (total_leaves, n_outputs) float64 leaf value rows
    base: np.ndarray  #: (n_outputs,) float64 accumulator start
    mode: str  #: "average" | "sum_softmax"
    counts: np.ndarray  #: (rows, n_outputs) float64 prior-fallback counts
    n_classes: int
    n_attributes: int
    fingerprint: str

    @property
    def n_trees(self) -> int:
        """Member count."""
        return len(self.members)

    @property
    def n_outputs(self) -> int:
        """Width of the accumulator (equals ``n_classes``)."""
        return self.values.shape[1]

    @property
    def n_nodes(self) -> int:
        """Total packed node count across all members."""
        return len(self.kind)

    def nbytes(self) -> int:
        """Total bytes held by the packed arrays."""
        return sum(
            getattr(self, f).nbytes
            for f in (
                "tree_offsets", "kind", "attr", "attr2", "coef_a", "coef_b",
                "threshold", "left", "right", "default_left", "cat_offset",
                "cat_len", "cat_mask", "leaf_row", "values", "base", "counts",
            )
        )

    def decision_values(self, X: np.ndarray) -> np.ndarray:
        """``base`` plus the summed member leaf rows, shape ``(n, K)``."""
        X = _as_batch(X)
        n = len(X)
        if n == 0:
            return np.tile(self.base, (0, 1))
        kernel = native_forest_kernel()
        if kernel is not None:
            X = np.ascontiguousarray(X)
            acc = np.empty((n, self.n_outputs), dtype=np.float64)
            kernel(self, X, acc)
            return acc
        acc = np.tile(self.base, (n, 1))
        for t, member in enumerate(self.members):
            rows = self.tree_offsets[t] + member.route(X)
            acc += self.values[self.leaf_row[rows]]
        return acc

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Aggregated class label per record."""
        return np.argmax(self.decision_values(X), axis=1)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Aggregated per-class probabilities, shape ``(n, n_classes)``."""
        acc = self.decision_values(X)
        if self.mode == "average":
            return acc / self.n_trees
        # Numerically stable softmax over the raw boosted scores.
        shifted = acc - acc.max(axis=1, keepdims=True)
        np.exp(shifted, out=shifted)
        shifted /= shifted.sum(axis=1, keepdims=True)
        return shifted

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Member-leaf ``node_id`` per record, shape ``(n, n_trees)``."""
        X = _as_batch(X)
        out = np.empty((len(X), self.n_trees), dtype=np.int64)
        for t, member in enumerate(self.members):
            out[:, t] = member.apply(X)
        return out


def compile_forest(
    members: "list[CompiledTree | DecisionTree]",
    mode: str = "average",
    values: "list[np.ndarray] | None" = None,
    base: np.ndarray | None = None,
    counts: np.ndarray | None = None,
) -> CompiledForest:
    """Pack member trees into a :class:`CompiledForest`.

    ``values`` gives each member's ``(n_leaves, K)`` leaf value rows (in
    the member's pre-order leaf order); omitted, each member contributes
    its class-distribution ``proba`` table (bagging soft vote).  ``base``
    defaults to zeros; ``counts`` defaults to the stacked member root
    class counts (recovered as the column sums of each member's leaf
    ``counts`` table).
    """
    if not members:
        raise ValueError("need at least one member tree")
    if mode not in ("average", "sum_softmax"):
        raise ValueError(f"unknown aggregation mode {mode!r}")
    compiled = [
        compile_tree(m) if isinstance(m, DecisionTree) else m for m in members
    ]
    n_classes = compiled[0].n_classes
    n_attributes = compiled[0].n_attributes
    for m in compiled:
        if m.n_classes != n_classes or m.n_attributes != n_attributes:
            raise ValueError("member trees must share schema shape")
    if values is None:
        value_rows = [m.proba for m in compiled]
    else:
        if len(values) != len(compiled):
            raise ValueError("need one value table per member")
        value_rows = [np.asarray(v, dtype=np.float64) for v in values]
        for m, v in zip(compiled, value_rows):
            if v.shape != (m.n_leaves, n_classes):
                raise ValueError(
                    f"value table shape {v.shape} does not match "
                    f"({m.n_leaves}, {n_classes})"
                )
    if base is None:
        base = np.zeros(n_classes, dtype=np.float64)
    else:
        base = np.ascontiguousarray(base, dtype=np.float64)
        if base.shape != (n_classes,):
            raise ValueError("base must have one entry per class")
    if counts is None:
        counts = np.stack([m.counts.sum(axis=0) for m in compiled])
    else:
        counts = np.ascontiguousarray(np.atleast_2d(counts), dtype=np.float64)

    node_offsets = np.cumsum([0] + [m.n_nodes for m in compiled])
    mask_offsets = np.cumsum([0] + [len(m.cat_mask) for m in compiled])
    leaf_offsets = np.cumsum([0] + [m.n_leaves for m in compiled])

    def cat(arrays, dtype):
        return np.ascontiguousarray(np.concatenate(arrays), dtype=dtype)

    kind = cat([m.kind for m in compiled], np.int8)
    attr = cat([m.attr for m in compiled], np.int32)
    attr2 = cat([m.attr2 for m in compiled], np.int32)
    coef_a = cat([m.coef_a for m in compiled], np.float64)
    coef_b = cat([m.coef_b for m in compiled], np.float64)
    threshold = cat([m.threshold for m in compiled], np.float64)
    # Child indices shift by the member's node offset — leaf self-loops
    # stay self-loops at their global position.
    left = cat([m.left + off for m, off in zip(compiled, node_offsets)], np.int64)
    right = cat([m.right + off for m, off in zip(compiled, node_offsets)], np.int64)
    default_left = cat([m.default_left for m in compiled], bool)
    cat_offset = cat(
        [m.cat_offset + off for m, off in zip(compiled, mask_offsets)], np.int64
    )
    cat_len = cat([m.cat_len for m in compiled], np.int64)
    cat_mask = (
        cat([m.cat_mask for m in compiled], bool)
        if any(len(m.cat_mask) for m in compiled)
        else np.zeros(0, dtype=bool)
    )
    leaf_row = cat(
        [m.leaf_row + off for m, off in zip(compiled, leaf_offsets)], np.int64
    )
    packed_values = np.ascontiguousarray(np.concatenate(value_rows), dtype=np.float64)

    # Member fingerprints cover structure, splits and training counts;
    # the value rows and base are hashed separately because boosting leaf
    # scores are not part of any member's digest.
    digest = hashlib.sha256()
    digest.update(mode.encode("utf-8"))
    for m in compiled:
        digest.update(m.fingerprint.encode("utf-8"))
    digest.update(packed_values.tobytes())
    digest.update(base.tobytes())

    return CompiledForest(
        members=tuple(compiled),
        tree_offsets=np.ascontiguousarray(node_offsets, dtype=np.int64),
        kind=kind,
        attr=attr,
        attr2=attr2,
        coef_a=coef_a,
        coef_b=coef_b,
        threshold=threshold,
        left=left,
        right=right,
        default_left=default_left,
        cat_offset=cat_offset,
        cat_len=cat_len,
        cat_mask=cat_mask,
        leaf_row=leaf_row,
        values=packed_values,
        base=base,
        mode=mode,
        counts=counts,
        n_classes=n_classes,
        n_attributes=n_attributes,
        fingerprint=digest.hexdigest(),
    )


__all__ = [
    "CompiledTree",
    "CompiledForest",
    "compile_tree",
    "compile_forest",
    "tree_fingerprint",
    "LEAF",
    "NUMERIC",
    "CATEGORICAL",
    "LINEAR",
]
