"""Decision-tree persistence (JSON) and visualization (Graphviz DOT).

A trained :class:`~repro.core.tree.DecisionTree` round-trips through a
plain-dict representation: splits are tagged by kind, class counts are
lists, and the schema travels with the tree so a deserialized model can
classify and render without the original dataset.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.splits import CategoricalSplit, LinearSplit, NumericSplit, Split
from repro.core.tree import DecisionTree, Node
from repro.data.schema import Attribute, AttributeKind, Schema


def split_to_dict(split: Split) -> dict[str, object]:
    """Tagged plain-dict form of a split criterion."""
    if isinstance(split, NumericSplit):
        out: dict[str, object] = {
            "kind": "numeric",
            "attr": split.attr,
            "threshold": split.threshold,
        }
        if split.n_candidates is not None:
            out["n_candidates"] = split.n_candidates
        return out
    if isinstance(split, CategoricalSplit):
        return {
            "kind": "categorical",
            "attr": split.attr,
            "left_mask": list(split.left_mask),
        }
    if isinstance(split, LinearSplit):
        return {
            "kind": "linear",
            "attr_x": split.attr_x,
            "attr_y": split.attr_y,
            "a": split.a,
            "b": split.b,
            "c": split.c,
        }
    raise TypeError(f"unknown split type {type(split).__name__}")


def split_from_dict(data: dict[str, object]) -> Split:
    """Inverse of :func:`split_to_dict`."""
    kind = data.get("kind")
    if kind == "numeric":
        n_cand = data.get("n_candidates")
        return NumericSplit(
            int(data["attr"]),  # type: ignore[arg-type]
            float(data["threshold"]),  # type: ignore[arg-type]
            n_candidates=int(n_cand) if n_cand is not None else None,  # type: ignore[arg-type]
        )
    if kind == "categorical":
        return CategoricalSplit(
            int(data["attr"]), tuple(bool(b) for b in data["left_mask"])  # type: ignore[arg-type]
        )
    if kind == "linear":
        return LinearSplit(
            int(data["attr_x"]),  # type: ignore[arg-type]
            int(data["attr_y"]),  # type: ignore[arg-type]
            b=float(data["b"]),  # type: ignore[arg-type]
            c=float(data["c"]),  # type: ignore[arg-type]
            a=float(data["a"]),  # type: ignore[arg-type]
        )
    raise ValueError(f"unknown split kind {kind!r}")


def _schema_to_dict(schema: Schema) -> dict[str, object]:
    return {
        "attributes": [
            {
                "name": a.name,
                "kind": a.kind.value,
                "categories": list(a.categories),
            }
            for a in schema.attributes
        ],
        "class_labels": list(schema.class_labels),
    }


def _schema_from_dict(data: dict[str, object]) -> Schema:
    attrs = tuple(
        Attribute(
            a["name"],
            AttributeKind(a["kind"]),
            tuple(a.get("categories", ())),
        )
        for a in data["attributes"]  # type: ignore[union-attr]
    )
    return Schema(attrs, tuple(data["class_labels"]))  # type: ignore[arg-type]


def _node_to_dict(node: Node) -> dict[str, object]:
    out: dict[str, object] = {
        "id": node.node_id,
        "depth": node.depth,
        "class_counts": [float(v) for v in node.class_counts],
    }
    if not node.is_leaf:
        left, right = node.children()
        out["split"] = split_to_dict(node.split)  # type: ignore[arg-type]
        out["left"] = _node_to_dict(left)
        out["right"] = _node_to_dict(right)
    return out


def _node_from_dict(data: dict[str, object]) -> Node:
    node = Node(
        int(data["id"]),  # type: ignore[arg-type]
        int(data["depth"]),  # type: ignore[arg-type]
        np.asarray(data["class_counts"], dtype=np.float64),
    )
    if "split" in data:
        node.split = split_from_dict(data["split"])  # type: ignore[arg-type]
        node.left = _node_from_dict(data["left"])  # type: ignore[arg-type]
        node.right = _node_from_dict(data["right"])  # type: ignore[arg-type]
    return node


def tree_to_dict(tree: DecisionTree) -> dict[str, object]:
    """Plain-dict form of a trained tree (schema included)."""
    return {
        "format": "repro-cmp-tree",
        "version": 1,
        "schema": _schema_to_dict(tree.schema),
        "root": _node_to_dict(tree.root),
    }


def tree_from_dict(data: dict[str, object]) -> DecisionTree:
    """Inverse of :func:`tree_to_dict`."""
    if data.get("format") != "repro-cmp-tree":
        raise ValueError("not a serialized repro CMP tree")
    schema = _schema_from_dict(data["schema"])  # type: ignore[arg-type]
    root = _node_from_dict(data["root"])  # type: ignore[arg-type]
    return DecisionTree(root, schema)


def tree_to_json(tree: DecisionTree, indent: int | None = None) -> str:
    """Serialize a tree to a JSON string."""
    return json.dumps(tree_to_dict(tree), indent=indent)


def tree_from_json(text: str) -> DecisionTree:
    """Deserialize a tree from :func:`tree_to_json` output."""
    return tree_from_dict(json.loads(text))


def tree_to_dot(tree: DecisionTree, max_depth: int | None = None) -> str:
    """Graphviz DOT rendering of a tree (Figures 1, 9 and 13 style).

    ``max_depth`` truncates deep subtrees into ellipsis nodes so large
    univariate trees (the Figure 9 staircase) stay plottable.
    """
    lines = [
        "digraph cmp_tree {",
        '  node [shape=box, fontname="Helvetica"];',
    ]

    def quote(text: str) -> str:
        return text.replace("\\", "\\\\").replace('"', '\\"')

    def walk(node: Node) -> None:
        if max_depth is not None and node.depth > max_depth:
            return
        if node.is_leaf:
            label = tree.schema.class_labels[node.majority_class]
            lines.append(
                f'  n{node.node_id} [label="{quote(label)}\\n'
                f'n={node.n_records:g}", style=filled, fillcolor=lightgrey];'
            )
            return
        if max_depth is not None and node.depth == max_depth:
            lines.append(f'  n{node.node_id} [label="..."];')
            return
        desc = node.split.describe(tree.schema)  # type: ignore[union-attr]
        lines.append(f'  n{node.node_id} [label="{quote(desc)}"];')
        left, right = node.children()
        for child, tag in ((left, "yes"), (right, "no")):
            if max_depth is None or child.depth <= max_depth:
                lines.append(f'  n{node.node_id} -> n{child.node_id} [label="{tag}"];')
                walk(child)

    walk(tree.root)
    lines.append("}")
    return "\n".join(lines)
