"""The paper's contribution: gini machinery and the CMP family."""

from repro.core.builder import BuildResult, TreeBuilder
from repro.core.cmp_b import CMPBBuilder
from repro.core.cmp_full import CMPBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.core.estimation import gini_gradient, interval_estimate, interval_estimates
from repro.core.gini import (
    best_boundary,
    boundary_ginis,
    exact_best_threshold,
    exact_best_threshold_sorted,
    gini,
    gini_gain,
    gini_partition,
    gini_partition_many,
)
from repro.core.histogram import CategoryHistogram, ClassHistogram
from repro.core.intervals import (
    AttributeAnalysis,
    analyze_attribute,
    choose_split_attribute,
    select_alive_intervals,
)
from repro.core.linear import best_linear_candidate, gini_slope_walk
from repro.core.matrix import HistogramMatrix, MatrixSet
from repro.core.predict import predict_split
from repro.core.serialize import (
    tree_from_dict,
    tree_from_json,
    tree_to_dict,
    tree_to_dot,
    tree_to_json,
)
from repro.core.splits import CategoricalSplit, LinearSplit, NumericSplit, Split
from repro.core.tree import DecisionTree, Node

__all__ = [
    "BuildResult",
    "TreeBuilder",
    "CMPSBuilder",
    "CMPBBuilder",
    "CMPBuilder",
    "gini",
    "gini_partition",
    "gini_partition_many",
    "boundary_ginis",
    "best_boundary",
    "gini_gain",
    "exact_best_threshold",
    "exact_best_threshold_sorted",
    "gini_gradient",
    "interval_estimate",
    "interval_estimates",
    "ClassHistogram",
    "CategoryHistogram",
    "AttributeAnalysis",
    "analyze_attribute",
    "choose_split_attribute",
    "select_alive_intervals",
    "best_linear_candidate",
    "gini_slope_walk",
    "HistogramMatrix",
    "MatrixSet",
    "predict_split",
    "tree_to_dict",
    "tree_from_dict",
    "tree_to_json",
    "tree_from_json",
    "tree_to_dot",
    "Split",
    "NumericSplit",
    "CategoricalSplit",
    "LinearSplit",
    "DecisionTree",
    "Node",
]
