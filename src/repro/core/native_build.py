"""Race-safe, on-demand compilation shared by the native kernels.

Both kernel modules (:mod:`repro.core.native` for prediction,
:mod:`repro.core.native_scan` for training) compile a small dependency-free
C source with whatever ``cc`` / ``gcc`` / ``clang`` the machine has and load
the result through :mod:`ctypes`.  This module owns the build step so both
share one cache and one concurrency story:

* Libraries land in a **shared cache directory** (``CMP_NATIVE_CACHE`` in
  the environment, or ``<tmpdir>/cmp-repro-native``), keyed by a hash of
  the compiler, flags and source text — a process whose source matches an
  already-built library skips the compiler entirely.  That matters with the
  process scan backend, where forked workers and repeated CLI invocations
  would otherwise each pay a compile.
* Concurrent builders are safe: each process compiles into a **per-pid
  temp file** next to the target and publishes it with an atomic
  ``os.replace``.  Two processes racing on the same key both succeed; the
  loser's rename merely re-publishes identical bytes, and a reader never
  observes a half-written library because the cache path only ever comes
  into existence via the rename.

Compilation uses ``-ffp-contract=off`` so kernels round exactly like the
numpy expressions they replace (no FMA contraction) — the flag is part of
the cache key like everything else that affects the produced code.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

#: Flags every kernel is compiled with.  ``-ffp-contract=off`` is load-
#: bearing for bit-identity: contraction would fuse ``a*x + b*y`` into an
#: FMA, rounding once where the numpy evaluation rounds twice.
FLAGS = ("-O2", "-ffp-contract=off", "-fPIC", "-shared")


def compiler() -> str | None:
    """The C compiler to use, or ``None`` when the machine has none."""
    return (
        os.environ.get("CC")
        or shutil.which("cc")
        or shutil.which("gcc")
        or shutil.which("clang")
    )


def cache_dir() -> str:
    """Directory holding compiled kernels (``CMP_NATIVE_CACHE`` overrides)."""
    configured = os.environ.get("CMP_NATIVE_CACHE")
    if configured:
        return configured
    return os.path.join(tempfile.gettempdir(), "cmp-repro-native")


def library_path(stem: str, source: str, cc: str) -> str:
    """Cache path for ``source`` compiled by ``cc`` (content-addressed)."""
    key = hashlib.sha256("\x00".join((cc, *FLAGS, source)).encode()).hexdigest()[:16]
    return os.path.join(cache_dir(), f"{stem}-{key}.so")


def load_library(stem: str, source: str) -> ctypes.CDLL | None:
    """Compile ``source`` (or reuse the cached build) and load it.

    Returns ``None`` when no compiler is available; raises on a failed
    compile or load, which callers turn into the numpy fallback.
    """
    cc = compiler()
    if not cc:
        return None
    lib_path = library_path(stem, source, cc)
    if not os.path.exists(lib_path):
        os.makedirs(cache_dir(), exist_ok=True)
        # Build privately, publish atomically: the cache path either does
        # not exist or names a complete library, whatever other processes
        # are doing with the same key right now.
        tmp = f"{lib_path}.{os.getpid()}.tmp"
        src = f"{tmp}.c"
        with open(src, "w", encoding="utf-8") as f:
            f.write(source)
        try:
            subprocess.run(
                [cc, *FLAGS, src, "-o", tmp],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp, lib_path)
        finally:
            for leftover in (src, tmp):
                try:
                    os.unlink(leftover)
                except OSError:
                    pass
    return ctypes.CDLL(lib_path)


__all__ = ["FLAGS", "compiler", "cache_dir", "library_path", "load_library"]
