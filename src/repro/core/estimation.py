"""Gini lower-bound estimation inside intervals (Equations 4-5).

CLOUDS — and CMP after it — computes the gini index exactly only at
interval boundaries.  To decide whether an interval's *interior* might hold
a better split point, it estimates the minimum gini reachable inside the
interval with a gradient-guided hill climb:

* At a point with cumulative class counts ``x`` (records at or left of the
  point), the gradient of ``gini^D`` along class ``i`` is Equation 4.
* Starting from the interval's left boundary, pick the class with the
  steepest descending gradient and move *all* of that class's records in
  the interval across the point at once — [14] shows intermediate points
  need not be evaluated, so the climb takes at most ``c`` steps.
* Repeat from the right boundary moving leftward.
* The estimate is the minimum gini seen at any evaluated point, including
  both boundaries (Equation 5).

The estimate is a heuristic lower envelope: it assumes the interval's
records may be reordered class-by-class.  Two refinements keep it honest:

* **Atomic intervals** — an interval holding a single distinct value has
  no interior split point, so its estimate is just the better of its two
  boundary ginis (no climb).  Histograms track per-interval min/max values
  to detect this; without it, heavy atoms (e.g. the Agrawal generator's
  ``commission = 0`` spike) produce estimates no real split can attain and
  drag the split onto the wrong attribute.
* The climb is evaluated **in lockstep across all intervals** of a
  histogram (at most ``c`` vectorized steps per direction), making the
  cost independent of both the record count and the interval count.

:func:`interval_estimate` is the scalar reference implementation;
:func:`interval_estimates` is the vectorized version used by builders.
Property tests assert they agree.
"""

from __future__ import annotations

import numpy as np

from repro.core.gini import gini_partition


def sketch_count_slack(rank_error: float, n: float) -> float:
    """Gini slack from evaluating a candidate with ε-approximate counts.

    Moving one record across a partition changes ``gini^D`` by at most
    ``2 / N`` (the same Lipschitz fact behind the paper's footnote 1), so
    a cumulative class-count vector whose total L1 error is at most
    ``rank_error`` perturbs the partition gini by at most
    ``2 * rank_error / N``.  This is the term a quantile sketch's rank
    error ε contributes each time a candidate threshold is *scored*.
    """
    if n <= 0:
        return 0.0
    return 2.0 * float(rank_error) / float(n)


def sketch_split_slack(
    eps: float, q: int, n_classes: int = 2, safety: float = 1.0
) -> float:
    """Analytic bound on ``achieved - oracle`` for a sketch-chosen split.

    The chain (mirroring the differential harness's footnote-1 argument,
    with the sketch's rank error ε threaded through):

    * the winner's achieved gini differs from its sketch score by at
      most ``2 * c * eps`` (per-class rank errors sum over ``c``
      classes — :func:`sketch_count_slack` with ``rank_error =
      c * eps * N``);
    * the winner's score is minimal over every candidate of every
      attribute, including the candidates bracketing the oracle's true
      optimum;
    * the oracle's optimum sits inside one interval of its attribute's
      sketch-quantile grid; that interval holds at most
      ``(1/q + 2 * c * eps)`` of the records (equal-depth up to the
      sketch's rank error), so footnote 1 bounds the interior undershoot
      by twice that; scoring that boundary costs another
      ``2 * c * eps``.

    Total: ``2/q + 8 * c * eps``, scaled by ``safety``.  The
    verification harness replaces the analytic ``1/q + 2 c eps``
    interval population with the *measured* non-atomic population of the
    recorded candidate grid, which is both tighter and exact.
    """
    ce = float(n_classes) * float(eps)
    return float(safety) * (2.0 / float(q) + 8.0 * ce)


def gini_gradient(x: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Gradient of ``gini^D(S, a <= v)`` along every class (Equation 4).

    ``x`` is the cumulative class-count vector at the evaluation point and
    ``totals`` the class counts of the whole set.  Undefined (returns
    zeros) when the point is degenerate (``n_l`` is 0 or ``n``).
    """
    x = np.asarray(x, dtype=np.float64)
    totals = np.asarray(totals, dtype=np.float64)
    n = totals.sum()
    nl = x.sum()
    if nl <= 0 or nl >= n:
        return np.zeros_like(x)
    nr = n - nl
    first = 2.0 / (nl * nr) * (totals * nl / n - x)
    second = (1.0 / n) * (np.sum((totals - x) ** 2) / nr**2 - np.sum(x**2) / nl**2)
    return first - second


def _probe_ginis(x: np.ndarray, jump: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Partition gini after hypothetically applying each class's full jump.

    ``x`` is ``(q, c)`` current cumulative counts, ``jump`` the ``(q, c)``
    signed count deltas (one candidate class jump per column), ``totals``
    the ``(c,)`` class totals.  Returns ``(q, c)`` ginis; entries with a
    zero jump are ``+inf``.
    """
    n = totals.sum()
    sx = x.sum(axis=1, keepdims=True)
    sx2 = (x**2).sum(axis=1, keepdims=True)
    rtot = totals[None, :] - x
    sr2 = (rtot**2).sum(axis=1, keepdims=True)

    nl = sx + jump
    nr = n - nl
    left_sq = sx2 - x**2 + (x + jump) ** 2
    right_sq = sr2 - rtot**2 + (rtot - jump) ** 2
    with np.errstate(divide="ignore", invalid="ignore"):
        gl = np.where(nl > 0, 1.0 - left_sq / np.maximum(nl, 1.0) ** 2, 0.0)
        gr = np.where(nr > 0, 1.0 - right_sq / np.maximum(nr, 1.0) ** 2, 0.0)
    g = (np.maximum(nl, 0.0) * gl + np.maximum(nr, 0.0) * gr) / n
    return np.where(jump != 0.0, g, np.inf)


def _gradient_rows(x: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Equation 4 evaluated row-wise for ``(q, c)`` points at once."""
    n = totals.sum()
    nl = x.sum(axis=1, keepdims=True)
    nr = n - nl
    with np.errstate(divide="ignore", invalid="ignore"):
        first = 2.0 / np.maximum(nl * nr, 1.0) * (totals[None, :] * nl / n - x)
        second = (1.0 / n) * (
            ((totals[None, :] - x) ** 2).sum(axis=1, keepdims=True)
            / np.maximum(nr, 1.0) ** 2
            - (x**2).sum(axis=1, keepdims=True) / np.maximum(nl, 1.0) ** 2
        )
    grad = first - second
    degenerate = (nl <= 0) | (nl >= n)
    return np.where(degenerate, 0.0, grad)


def interval_estimate(
    cum_left: np.ndarray,
    interval_counts: np.ndarray,
    totals: np.ndarray,
    atomic: bool = False,
) -> float:
    """CLOUDS lower-bound estimate for one interval (scalar reference).

    Parameters
    ----------
    cum_left:
        Cumulative class counts strictly below the interval (its left
        boundary point).
    interval_counts:
        Class counts inside the interval.
    totals:
        Class counts of the whole set.
    atomic:
        True when the interval is known to hold a single distinct value
        (no interior split point exists).
    """
    cum_left = np.asarray(cum_left, dtype=np.float64)
    interval_counts = np.asarray(interval_counts, dtype=np.float64)
    totals = np.asarray(totals, dtype=np.float64)
    cum_right = cum_left + interval_counts
    g_left = float(gini_partition(cum_left, totals - cum_left))
    g_right = float(gini_partition(cum_right, totals - cum_right))
    best = min(g_left, g_right)
    if atomic or interval_counts.sum() == 0:
        return best
    n = totals.sum()
    for direction, start in ((+1, cum_left), (-1, cum_right)):
        x = start.copy()
        remaining = interval_counts.copy()
        while remaining.sum() > 0:
            nl = x.sum()
            jump = direction * remaining
            if 0 < nl < n:
                score = direction * gini_gradient(x, totals)
                score = np.where(remaining > 0, score, np.inf)
            else:
                score = _probe_ginis(x[None, :], jump[None, :], totals)[0]
            i = int(np.argmin(score))
            x[i] += direction * remaining[i]
            remaining[i] = 0.0
            best = min(best, float(gini_partition(x, totals - x)))
    return best


def interval_estimates(
    hist: np.ndarray, atomic: np.ndarray | None = None
) -> np.ndarray:
    """Estimates for every interval of a histogram, vectorized.

    ``hist`` is ``(q, c)`` class counts per interval; ``atomic`` an
    optional ``(q,)`` boolean mask of single-distinct-value intervals.
    Returns ``(q,)`` estimates.  All intervals climb in lockstep, so the
    cost is ``O(c)`` vectorized steps per direction regardless of ``q``.
    """
    hist = np.asarray(hist, dtype=np.float64)
    if hist.ndim != 2:
        raise ValueError("hist must be (intervals, classes)")
    q, c = hist.shape
    totals = hist.sum(axis=0)
    n = totals.sum()
    cum = np.cumsum(hist, axis=0)
    cum_left = np.vstack([np.zeros((1, c)), cum[:-1]])
    g_left = np.asarray(gini_partition(cum_left, totals[None, :] - cum_left))
    g_right = np.asarray(gini_partition(cum, totals[None, :] - cum))
    best = np.minimum(g_left, g_right)

    climbable = hist.sum(axis=1) > 0
    if atomic is not None:
        climbable &= ~np.asarray(atomic, dtype=bool)

    for direction, start in ((+1, cum_left), (-1, cum)):
        x = start.copy()
        remaining = np.where(climbable[:, None], hist, 0.0)
        for _ in range(c):
            active = remaining.sum(axis=1) > 0
            if not active.any():
                break
            nl = x.sum(axis=1)
            nondeg = (nl > 0) & (nl < n)
            grad_score = direction * _gradient_rows(x, totals)
            grad_score = np.where(remaining > 0, grad_score, np.inf)
            probe = _probe_ginis(x, direction * remaining, totals)
            choice = np.where(
                nondeg,
                np.argmin(grad_score, axis=1),
                np.argmin(probe, axis=1),
            )
            rows = np.nonzero(active)[0]
            cols = choice[rows]
            x[rows, cols] += direction * remaining[rows, cols]
            remaining[rows, cols] = 0.0
            g = np.asarray(gini_partition(x, totals[None, :] - x))
            best[rows] = np.minimum(best[rows], g[rows])
    return best
