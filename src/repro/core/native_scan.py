"""Optional native C kernels for the training-scan hot loops.

The builders' per-chunk work — class-histogram and matrix accumulation —
and the post-scan analysis sweeps — boundary ginis and the
``giniNegativeSlope`` intercept walk — are the training-side analog of the
prediction walker in :mod:`repro.core.native`: tight per-record loops that
numpy evaluates as a chain of whole-array temporaries.  This module
compiles them to C (via :mod:`repro.core.native_build`) under the same
contract as the predict kernel:

* **bit-identical to numpy** — compiled with ``-ffp-contract=off``, every
  floating-point operation mirrors the numpy expression's op-by-op
  rounding, and the single order-sensitive reduction (``p2.sum(axis=-1)``
  inside the gini) is only taken over class counts when ``n_classes < 8``,
  where numpy provably sums sequentially (its pairwise/SIMD machinery
  engages at 8 elements).  Histogram/matrix counts, extrema and the walk's
  partition sums are integer-valued, hence exact in any order.
* **always optional** — no compiler, a failed build, an unusual platform
  or ``CMP_NO_NATIVE=1`` resolve to "kernel unavailable" and every caller
  keeps its pure-numpy path, which remains the reference implementation.

Kernels bounds-check label/category indices (mirroring numpy's
``IndexError``, including negative-index wraparound) and replicate
``np.searchsorted``'s sort-order comparison, under which NaN is larger
than every number.

ABI (all pointers 8-byte aligned, sizes/strides int64, refused on
platforms where ``np.intp`` is not 64-bit):

====================  =====================================================
``cmp_hist_accum``    searchsorted + scatter-add into ``(q, c)`` float64
                      counts, per-bin value extrema (NaN-propagating).
``cmp_cat_accum``     float→int64 category cast + scatter-add into
                      ``(ncat, c)`` float64 counts.
``cmp_matrix_accum``  y-binning + scatter-add into a ``(qx, qy, c)``
                      int32 or int64 cube with y extrema (two variants).
``cmp_boundary_ginis``  partition gini at every interval boundary.
``cmp_slope_walk``    the full Figure-12 greedy intercept walk.
====================  =====================================================
"""

from __future__ import annotations

import ctypes
import os
import threading
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.core import native_build

_SOURCE = r"""
#include <stdint.h>

/* numpy's sort-order less-than for doubles (npy_sort.h): NaN compares
 * greater than every number, so searchsorted keeps NaN in the last bin. */
static int lt(double a, double b)
{
    return a < b || (b != b && a == a);
}

/* np.searchsorted(edges, v, side="left") on a sorted edges[0..m). */
static int64_t bin_of(double v, const double *edges, int64_t m)
{
    int64_t lo = 0, hi = m;
    while (lo < hi) {
        int64_t mid = lo + ((hi - lo) >> 1);
        if (lt(edges[mid], v))
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

/* np.minimum / np.maximum semantics: NaN propagates from either side. */
static void fold_min(double *slot, double v)
{
    double cur = *slot;
    if (cur == cur && (v != v || v < cur))
        *slot = v;
}

static void fold_max(double *slot, double v)
{
    double cur = *slot;
    if (cur == cur && (v != v || v > cur))
        *slot = v;
}

/* bins = searchsorted(edges, values); np.add.at(counts, (bins, labels), 1);
 * np.minimum.at(vmin, bins, values); np.maximum.at(vmax, bins, values).
 * Returns 1 on a label out of range (numpy raises IndexError). */
int cmp_hist_accum(int64_t n, int64_t vstride, const double *values,
                   const int64_t *labels, const double *edges, int64_t m,
                   int64_t c, double *counts, double *vmin, double *vmax)
{
    for (int64_t r = 0; r < n; ++r) {
        double v = values[r * vstride];
        int64_t lab = labels[r];
        if (lab < 0)
            lab += c;
        if (lab < 0 || lab >= c)
            return 1;
        int64_t b = bin_of(v, edges, m);
        counts[b * c + lab] += 1.0;
        fold_min(vmin + b, v);
        fold_max(vmax + b, v);
    }
    return 0;
}

/* Weighted variant: np.add.at(counts, (bins, labels), weights).  Counts
 * stay exact (integer-valued weights on integer-valued counts), so a
 * weight-w add is bit-identical to w unit adds in any order.  Extrema
 * fold every record, like the unweighted kernel — callers drop
 * zero-weight records beforehand so phantom values never pollute the
 * per-bin min/max. */
int cmp_hist_accum_w(int64_t n, int64_t vstride, const double *values,
                     const int64_t *labels, const double *weights,
                     const double *edges, int64_t m, int64_t c,
                     double *counts, double *vmin, double *vmax)
{
    for (int64_t r = 0; r < n; ++r) {
        double v = values[r * vstride];
        int64_t lab = labels[r];
        if (lab < 0)
            lab += c;
        if (lab < 0 || lab >= c)
            return 1;
        int64_t b = bin_of(v, edges, m);
        counts[b * c + lab] += weights[r];
        fold_min(vmin + b, v);
        fold_max(vmax + b, v);
    }
    return 0;
}

/* np.add.at(counts, (codes.astype(intp), labels), 1) — C-cast code
 * conversion, negative indices wrap, out of range returns 1. */
int cmp_cat_accum(int64_t n, int64_t vstride, const double *codes,
                  const int64_t *labels, int64_t ncat, int64_t c,
                  double *counts)
{
    for (int64_t r = 0; r < n; ++r) {
        double cv = codes[r * vstride];
        /* Guard the undefined float->int cast numpy performs on junk
         * input: any such code indexes out of range either way. */
        if (cv != cv || cv >= 9.2233720368547758e18 || cv < -9.2233720368547758e18)
            return 1;
        int64_t k = (int64_t)cv;
        int64_t lab = labels[r];
        if (k < 0)
            k += ncat;
        if (lab < 0)
            lab += c;
        if (k < 0 || k >= ncat || lab < 0 || lab >= c)
            return 1;
        counts[k * c + lab] += 1.0;
    }
    return 0;
}

/* Weighted variant: np.add.at(counts, (codes, labels), weights). */
int cmp_cat_accum_w(int64_t n, int64_t vstride, const double *codes,
                    const int64_t *labels, const double *weights,
                    int64_t ncat, int64_t c, double *counts)
{
    for (int64_t r = 0; r < n; ++r) {
        double cv = codes[r * vstride];
        if (cv != cv || cv >= 9.2233720368547758e18 || cv < -9.2233720368547758e18)
            return 1;
        int64_t k = (int64_t)cv;
        int64_t lab = labels[r];
        if (k < 0)
            k += ncat;
        if (lab < 0)
            lab += c;
        if (k < 0 || k >= ncat || lab < 0 || lab >= c)
            return 1;
        counts[k * c + lab] += weights[r];
    }
    return 0;
}

/* y_bins = searchsorted(y_edges, y); np.add.at(counts, (x_bins, y_bins,
 * labels), 1); y extrema.  Two count dtypes (the matrix cube widens from
 * int32 to int64 on demand). */
#define MATRIX_ACCUM(NAME, CTYPE)                                           \
int NAME(int64_t n, const int64_t *x_bins, int64_t ystride,                 \
         const double *y_values, const int64_t *labels,                     \
         const double *y_edges, int64_t m, int64_t qx, int64_t qy,          \
         int64_t c, CTYPE *counts, double *vmin, double *vmax)              \
{                                                                           \
    for (int64_t r = 0; r < n; ++r) {                                       \
        double yv = y_values[r * ystride];                                  \
        int64_t xb = x_bins[r];                                             \
        int64_t lab = labels[r];                                            \
        if (xb < 0)                                                         \
            xb += qx;                                                       \
        if (lab < 0)                                                        \
            lab += c;                                                       \
        if (xb < 0 || xb >= qx || lab < 0 || lab >= c)                      \
            return 1;                                                       \
        int64_t yb = bin_of(yv, y_edges, m);                                \
        counts[(xb * qy + yb) * c + lab] += 1;                              \
        fold_min(vmin + yb, yv);                                            \
        fold_max(vmax + yb, yv);                                            \
    }                                                                       \
    return 0;                                                               \
}

MATRIX_ACCUM(cmp_matrix_accum32, int32_t)
MATRIX_ACCUM(cmp_matrix_accum64, int64_t)

/* gini() of one class-count row whose (sequential) total is s, using a
 * c-element scratch for the squared proportions.  Mirrors, op for op:
 *   p2 = where(n > 0, counts / maximum(n, 1.0), 0.0) ** 2
 *   1.0 - p2.sum(axis=-1)
 * The p2 sum is the one order-sensitive reduction of the whole module;
 * callers guarantee c < 8 so numpy's sum is plain left-to-right too. */
static double gini_one(const double *cnt, int64_t c, double s, double *p2)
{
    if (!(s > 0.0))
        return 0.0;
    double den = s > 1.0 ? s : 1.0;
    for (int64_t j = 0; j < c; ++j) {
        double p = cnt[j] / den;
        p2[j] = p * p;
    }
    double total = 0.0;
    for (int64_t j = 0; j < c; ++j)
        total += p2[j];
    return 1.0 - total;
}

/* boundary_ginis(cum, totals): right = totals - cum per row, then
 * gini_partition(cum, right).  scratch holds 2*c doubles. */
void cmp_boundary_ginis(int64_t b, int64_t c, const double *cum,
                        const double *totals, double *out, double *scratch)
{
    double *right = scratch;
    double *p2 = scratch + c;
    for (int64_t k = 0; k < b; ++k) {
        const double *left = cum + k * c;
        double nl = 0.0, nr = 0.0;
        for (int64_t j = 0; j < c; ++j) {
            right[j] = totals[j] - left[j];
            nl += left[j];
            nr += right[j];
        }
        double n = nl + nr;
        if (n > 0.0) {
            double gl = gini_one(left, c, nl, p2);
            double gr = gini_one(right, c, nr, p2);
            double den = n > 1.0 ? n : 1.0;
            out[k] = (nl * gl + nr * gr) / den;
        } else {
            out[k] = 0.0;
        }
    }
}

/* One _WalkScratch.evaluate: three-way gini of a line plus whether any
 * cell lies above it.  The under/above partition counts are integer-
 * valued, so their accumulation order is exact; only the final
 * acc += s - dot/s chain is order-sensitive and replicates the Python
 * loop (cu, ca, co in that order, one rounding per op). */
static double walk_eval(const double *counts, const double *total,
                        int64_t qx, int64_t qy, int64_t c,
                        double lx, double ly, double n,
                        double *cu, double *ca, double *co, int *above_any)
{
    double rhs = lx * ly;
    for (int64_t k = 0; k < c; ++k) {
        cu[k] = 0.0;
        ca[k] = 0.0;
    }
    int any_above = 0;
    for (int64_t i = 0; i < qx; ++i) {
        for (int64_t j = 0; j < qy; ++j) {
            const double *cell = counts + (i * qy + j) * c;
            double under_lhs = (double)(i + 1) * ly + (double)(j + 1) * lx;
            double above_lhs = (double)i * ly + (double)j * lx;
            if (under_lhs <= rhs)
                for (int64_t k = 0; k < c; ++k)
                    cu[k] += cell[k];
            if (above_lhs >= rhs) {
                any_above = 1;
                for (int64_t k = 0; k < c; ++k)
                    ca[k] += cell[k];
            }
        }
    }
    for (int64_t k = 0; k < c; ++k)
        co[k] = total[k] - cu[k] - ca[k];
    double acc = 0.0;
    const double *parts[3];
    parts[0] = cu;
    parts[1] = ca;
    parts[2] = co;
    for (int p = 0; p < 3; ++p) {
        const double *v = parts[p];
        double s = 0.0, dot = 0.0;
        for (int64_t k = 0; k < c; ++k) {
            s += v[k];
            dot += v[k] * v[k];
        }
        if (s > 0.0)
            acc += s - dot / s;
    }
    *above_any = any_above;
    return n > 0.0 ? acc / n : 0.0;
}

/* gini_slope_walk (Figure 12): greedy intercept walk from (1, 1).
 * scratch holds 4*c doubles; out receives {best_gini, best_x, best_y}. */
void cmp_slope_walk(int64_t qx, int64_t qy, int64_t c, const double *counts,
                    int64_t max_steps, double *scratch, double *out)
{
    double *total = scratch;
    double *cu = scratch + c;
    double *ca = scratch + 2 * c;
    double *co = scratch + 3 * c;
    for (int64_t k = 0; k < c; ++k)
        total[k] = 0.0;
    int64_t cells = qx * qy;
    for (int64_t i = 0; i < cells; ++i)
        for (int64_t k = 0; k < c; ++k)
            total[k] += counts[i * c + k];
    double n = 0.0;
    for (int64_t k = 0; k < c; ++k)
        n += total[k];
    double x_cap = (double)(qx + qy), y_cap = x_cap;
    double x = 1.0, y = 1.0;
    int above_any;
    double best = walk_eval(counts, total, qx, qy, c, x, y, n,
                            cu, ca, co, &above_any);
    double bx = x, by = y;
    for (int64_t step = 0; step < max_steps; ++step) {
        if (!above_any || (x >= x_cap && y >= y_cap))
            break;
        double gx, gy, g;
        int ax = above_any, ay = above_any;
        if (x < x_cap)
            gx = walk_eval(counts, total, qx, qy, c, x + 1.0, y, n,
                           cu, ca, co, &ax);
        else
            gx = 1.0 / 0.0;
        if (y < y_cap)
            gy = walk_eval(counts, total, qx, qy, c, x, y + 1.0, n,
                           cu, ca, co, &ay);
        else
            gy = 1.0 / 0.0;
        if (gx <= gy) {
            x += 1.0;
            g = gx;
            above_any = ax;
        } else {
            y += 1.0;
            g = gy;
            above_any = ay;
        }
        if (g < best) {
            best = g;
            bx = x;
            by = y;
        }
    }
    out[0] = best;
    out[1] = bx;
    out[2] = by;
}
"""

#: Class-count width above which the sweep kernels decline: numpy's sum
#: switches from plain sequential to pairwise/SIMD accumulation at 8
#: elements, and only the sequential order is replicated in C.
_MAX_SEQUENTIAL_CLASSES = 8

_lock = threading.Lock()
_kernels: dict[str, object] | None = None
_resolved = False

#: Per-process tally of applied kernel calls, by kernel name.  Plain int
#: increments under the GIL; read via :func:`kernel_counts`.  With the
#: process scan backend, chunk-accumulation calls made inside forked
#: workers are counted in the worker and folded back into the parent's
#: tally via :func:`merge_counts` when the worker's delta is merged.
_COUNTS = {
    "hist_accum": 0,
    "cat_accum": 0,
    "matrix_accum": 0,
    "boundary_ginis": 0,
    "slope_walk": 0,
}

#: Per-thread tally mirroring :data:`_COUNTS`; lets a traced scan worker
#: thread attribute kernel calls to *its* chunk batch without cross-talk
#: from sibling workers.
_THREAD_COUNTS = threading.local()


def _count(name: str) -> None:
    """Record one applied kernel call (process-wide and per-thread)."""
    _COUNTS[name] += 1
    counts = getattr(_THREAD_COUNTS, "counts", None)
    if counts is None:
        counts = {}
        _THREAD_COUNTS.counts = counts
    counts[name] = counts.get(name, 0) + 1

_PTR = ctypes.c_void_p
_I64 = ctypes.c_int64


def _build() -> dict[str, object] | None:
    if np.intp(0).itemsize != 8 or np.dtype(np.int64).byteorder not in ("=", "<", ">"):
        return None
    lib = native_build.load_library("scan", _SOURCE)
    if lib is None:
        return None
    sig = {
        "hist_accum": (ctypes.c_int, [_I64, _I64, _PTR, _PTR, _PTR, _I64, _I64, _PTR, _PTR, _PTR]),
        "hist_accum_w": (ctypes.c_int, [_I64, _I64, _PTR, _PTR, _PTR, _PTR, _I64, _I64, _PTR, _PTR, _PTR]),
        "cat_accum": (ctypes.c_int, [_I64, _I64, _PTR, _PTR, _I64, _I64, _PTR]),
        "cat_accum_w": (ctypes.c_int, [_I64, _I64, _PTR, _PTR, _PTR, _I64, _I64, _PTR]),
        "matrix_accum32": (ctypes.c_int, [_I64, _PTR, _I64, _PTR, _PTR, _PTR, _I64, _I64, _I64, _I64, _PTR, _PTR, _PTR]),
        "matrix_accum64": (ctypes.c_int, [_I64, _PTR, _I64, _PTR, _PTR, _PTR, _I64, _I64, _I64, _I64, _PTR, _PTR, _PTR]),
        "boundary_ginis": (None, [_I64, _I64, _PTR, _PTR, _PTR, _PTR]),
        "slope_walk": (None, [_I64, _I64, _I64, _PTR, _I64, _PTR, _PTR]),
    }
    fns: dict[str, object] = {}
    for name, (restype, argtypes) in sig.items():
        fn = getattr(lib, f"cmp_{name}")
        fn.restype = restype
        fn.argtypes = argtypes
        fns[name] = fn
    return fns


def _resolve() -> dict[str, object] | None:
    """The kernel table, resolved once per process (``CMP_NO_NATIVE=1``
    and any build failure resolve to ``None``)."""
    global _kernels, _resolved
    if _resolved:
        return _kernels
    with _lock:
        if _resolved:
            return _kernels
        if os.environ.get("CMP_NO_NATIVE"):
            _kernels = None
        else:
            try:
                _kernels = _build()
            except Exception:
                _kernels = None
        _resolved = True
    return _kernels


def available() -> bool:
    """True when the training kernels built (or will build) here."""
    return _resolve() is not None


def warm_up() -> bool:
    """Resolve (and if needed compile) the kernels now.

    The process scan backend calls this before forking workers so every
    child inherits the already-loaded library instead of racing to build
    its own copy.
    """
    return available()


def kernel_counts() -> dict[str, int]:
    """Snapshot of per-kernel applied-call counts for this process."""
    return dict(_COUNTS)


def kernel_calls_total() -> int:
    """Total applied kernel calls in this process (all kernels)."""
    return sum(_COUNTS.values())


def thread_kernel_counts() -> dict[str, int]:
    """Snapshot of applied-call counts made by the *calling thread*.

    Diffing two snapshots around a chunk batch gives the exact kernel
    activity of one scan worker thread — the thread-backend analogue of
    the before/after :func:`kernel_counts` diff a forked worker ships
    home.
    """
    counts = getattr(_THREAD_COUNTS, "counts", None)
    return dict(counts) if counts else {k: 0 for k in _COUNTS}


def merge_counts(delta: dict[str, int]) -> None:
    """Fold a worker's per-kernel call delta into this process's tally.

    The process scan backend ships each forked worker's count delta back
    with its scan delta; merging here keeps :func:`kernel_calls_total`
    (and therefore ``BuildStats.native_kernel_calls``) accurate across
    backends.  Unknown keys are ignored rather than invented.
    """
    for name, calls in delta.items():
        if name in _COUNTS and calls:
            _COUNTS[name] += int(calls)


@contextmanager
def force_numpy() -> Iterator[None]:
    """Temporarily report the kernels as unavailable (tests/benchmarks).

    In-process counterpart of ``CMP_NO_NATIVE=1``: every dispatch inside
    the block takes the numpy path.  Under the process scan backend the
    forced state is inherited by workers forked inside the block.
    """
    global _kernels, _resolved
    with _lock:
        saved = (_kernels, _resolved)
        _kernels, _resolved = None, True
    try:
        yield
    finally:
        with _lock:
            _kernels, _resolved = saved


# ---------------------------------------------------------------------------
# Dispatch helpers
# ---------------------------------------------------------------------------


def _f64_stride(a: np.ndarray) -> int | None:
    """Element stride of a 1-D float64 view, or ``None`` if unsupported."""
    if a.dtype != np.float64 or a.ndim != 1:
        return None
    stride = a.strides[0]
    if stride % 8 != 0:
        return None
    return stride // 8


def _labels_i64(labels: object, n: int) -> np.ndarray | None:
    """Labels as a contiguous int64 array, or ``None`` if unsupported.

    Boolean arrays are refused — numpy fancy indexing treats them as
    masks, a different semantic the kernels do not replicate.
    """
    arr = np.asarray(labels)
    if arr.ndim != 1 or len(arr) != n:
        return None
    if arr.dtype == np.bool_ or not np.issubdtype(arr.dtype, np.integer):
        return None
    return np.ascontiguousarray(arr, dtype=np.int64)


def _contiguous_f64(a: np.ndarray) -> bool:
    return a.dtype == np.float64 and a.flags.c_contiguous


# ---------------------------------------------------------------------------
# Kernel entry points (each returns whether the native path was applied)
# ---------------------------------------------------------------------------


def _weights_f64(weights: object, n: int) -> np.ndarray | None:
    """Weights as a contiguous float64 array, or ``None`` if unsupported."""
    arr = np.asarray(weights)
    if arr.ndim != 1 or len(arr) != n:
        return None
    if arr.dtype == np.bool_ or not np.issubdtype(arr.dtype, np.number):
        return None
    return np.ascontiguousarray(arr, dtype=np.float64)


def hist_accum(
    values: np.ndarray,
    labels: object,
    edges: np.ndarray,
    counts: np.ndarray,
    vmin: np.ndarray,
    vmax: np.ndarray,
    weights: object | None = None,
) -> bool:
    """Native ``ClassHistogram.update`` body; False = use numpy.

    With ``weights`` (per-record multiplicities, e.g. bootstrap draw
    counts), each record adds its weight instead of 1.  Integer-valued
    float64 weights on integer-valued counts stay exact, so the result
    is bit-identical to repeating each record ``weight`` times.
    """
    fns = _resolve()
    if fns is None:
        return False
    vstride = _f64_stride(values)
    if vstride is None:
        return False
    lab = _labels_i64(labels, len(values))
    if lab is None:
        return False
    if not (
        _contiguous_f64(counts)
        and _contiguous_f64(edges)
        and _contiguous_f64(vmin)
        and _contiguous_f64(vmax)
    ):
        return False
    if weights is None:
        rc = fns["hist_accum"](
            len(values),
            vstride,
            values.ctypes.data,
            lab.ctypes.data,
            edges.ctypes.data,
            len(edges),
            counts.shape[1],
            counts.ctypes.data,
            vmin.ctypes.data,
            vmax.ctypes.data,
        )
    else:
        w = _weights_f64(weights, len(values))
        if w is None:
            return False
        rc = fns["hist_accum_w"](
            len(values),
            vstride,
            values.ctypes.data,
            lab.ctypes.data,
            w.ctypes.data,
            edges.ctypes.data,
            len(edges),
            counts.shape[1],
            counts.ctypes.data,
            vmin.ctypes.data,
            vmax.ctypes.data,
        )
    if rc:
        raise IndexError("class label out of bounds for histogram counts")
    _count("hist_accum")
    return True


def cat_accum(
    codes: np.ndarray,
    labels: object,
    counts: np.ndarray,
    weights: object | None = None,
) -> bool:
    """Native ``CategoryHistogram.update`` body; False = use numpy."""
    fns = _resolve()
    if fns is None:
        return False
    vstride = _f64_stride(codes)
    if vstride is None:
        return False
    lab = _labels_i64(labels, len(codes))
    if lab is None:
        return False
    if not _contiguous_f64(counts):
        return False
    if weights is None:
        rc = fns["cat_accum"](
            len(codes),
            vstride,
            codes.ctypes.data,
            lab.ctypes.data,
            counts.shape[0],
            counts.shape[1],
            counts.ctypes.data,
        )
    else:
        w = _weights_f64(weights, len(codes))
        if w is None:
            return False
        rc = fns["cat_accum_w"](
            len(codes),
            vstride,
            codes.ctypes.data,
            lab.ctypes.data,
            w.ctypes.data,
            counts.shape[0],
            counts.shape[1],
            counts.ctypes.data,
        )
    if rc:
        raise IndexError("category code or class label out of bounds")
    _count("cat_accum")
    return True


def matrix_accum(
    x_bins: np.ndarray,
    y_values: np.ndarray,
    labels: object,
    y_edges: np.ndarray,
    counts: np.ndarray,
    vmin: np.ndarray,
    vmax: np.ndarray,
) -> bool:
    """Native ``HistogramMatrix.update_binned`` body; False = use numpy."""
    fns = _resolve()
    if fns is None:
        return False
    if counts.dtype == np.int32:
        fn = fns["matrix_accum32"]
    elif counts.dtype == np.int64:
        fn = fns["matrix_accum64"]
    else:
        return False
    ystride = _f64_stride(y_values)
    if ystride is None:
        return False
    lab = _labels_i64(labels, len(y_values))
    if lab is None:
        return False
    if not (
        x_bins.dtype == np.intp
        and x_bins.ndim == 1
        and x_bins.flags.c_contiguous
        and len(x_bins) == len(y_values)
        and counts.flags.c_contiguous
        and _contiguous_f64(y_edges)
        and _contiguous_f64(vmin)
        and _contiguous_f64(vmax)
    ):
        return False
    qx, qy, c = counts.shape
    rc = fn(
        len(y_values),
        x_bins.ctypes.data,
        ystride,
        y_values.ctypes.data,
        lab.ctypes.data,
        y_edges.ctypes.data,
        len(y_edges),
        qx,
        qy,
        c,
        counts.ctypes.data,
        vmin.ctypes.data,
        vmax.ctypes.data,
    )
    if rc:
        raise IndexError("x bin or class label out of bounds for matrix counts")
    _count("matrix_accum")
    return True


def boundary_ginis(cum: np.ndarray, totals: np.ndarray) -> np.ndarray | None:
    """Native boundary-gini sweep, or ``None`` to use numpy.

    Declines when ``n_classes >= 8``: beyond that numpy's class-axis sum
    switches to pairwise (possibly SIMD-dispatched) accumulation whose
    rounding the sequential C loop does not reproduce.
    """
    fns = _resolve()
    if fns is None:
        return None
    b, c = cum.shape
    if c >= _MAX_SEQUENTIAL_CLASSES:
        return None
    if not (cum.flags.c_contiguous and totals.flags.c_contiguous):
        return None
    out = np.empty(b, dtype=np.float64)
    scratch = np.empty(2 * c, dtype=np.float64)
    fns["boundary_ginis"](
        b, c, cum.ctypes.data, totals.ctypes.data, out.ctypes.data, scratch.ctypes.data
    )
    _count("boundary_ginis")
    return out


def slope_walk(
    counts: np.ndarray, max_steps: int
) -> tuple[float, float, float] | None:
    """Native intercept walk: ``(best_gini, best_x, best_y)`` or ``None``.

    Requires finite, non-negative, integer-valued counts totalling below
    2**26 — the exactness precondition under which every partition sum
    *and* every sum of squared partition sizes (``v @ v``, bounded by the
    squared total) is exactly representable, making the C walk's
    accumulation order irrelevant and its result bit-identical to numpy's.
    (Builder matrices always qualify; arbitrary float counts fall back.)
    """
    fns = _resolve()
    if fns is None:
        return None
    if counts.ndim != 3:
        return None
    counts = np.ascontiguousarray(counts, dtype=np.float64)
    if not np.all(np.isfinite(counts)):
        return None
    if not np.array_equal(counts, np.trunc(counts)):
        return None
    if counts.size and (counts.min() < 0.0 or counts.sum() >= 2.0**26):
        return None
    qx, qy, c = counts.shape
    out = np.empty(3, dtype=np.float64)
    scratch = np.empty(4 * c, dtype=np.float64)
    fns["slope_walk"](
        qx, qy, c, counts.ctypes.data, max_steps, scratch.ctypes.data, out.ctypes.data
    )
    _count("slope_walk")
    return float(out[0]), float(out[1]), float(out[2])


__all__ = [
    "available",
    "warm_up",
    "force_numpy",
    "kernel_counts",
    "kernel_calls_total",
    "hist_accum",
    "cat_accum",
    "matrix_accum",
    "boundary_ginis",
    "slope_walk",
]
