"""One-pass, bounded-memory CMP-S tree growth from a record stream.

The batch CMP-S builder rescans the table once per tree level.  The
:class:`StreamingTrainer` sees every record **exactly once**: records
flow through the partially built tree to its open leaves, each open leaf
summarizes its arrivals with mergeable sketches
(:mod:`repro.stream.sketch`), and once a leaf has absorbed enough
records its split is chosen *from the sketches alone*:

* per continuous attribute, one :class:`~repro.stream.sketch.QuantileSketch`
  **per class**; merging them across classes yields the candidate grid
  (equal-depth quantiles of the leaf's records, every candidate an
  actual data value), and the per-class sketches' rank queries yield the
  approximate class histogram left of each candidate;
* per categorical attribute, one
  :class:`~repro.stream.sketch.HeavyHitterSketch` carrying per-class
  counts, fed to the same Breiman-ordering subset search every batch
  builder uses (exact whenever the sketch capacity covers the
  attribute's cardinality — the default for schema attributes);
* the winner is the minimum approximate gini over all candidates, with
  the builders' usual ``(score, attr)`` tie ordering.

Because the sketches carry explicit rank-error bounds, every chosen
split is within an ε-derived bound of the exact oracle *on the records
the leaf actually absorbed* — the invariant
:mod:`repro.verify.stream` checks split by split.  The trainer records
the full provenance (:class:`SplitMeta`: candidate grids, rank-error
bounds, member rows) needed to replay that check.

Memory is governed by the PR 1 ledger: every open leaf's sketch bytes
are charged to ``stats.memory`` under ``stream/sketch/<node>``, and a
configurable budget triggers *spills* (deepest open leaves drop their
sketches and freeze) and *declines* (splits commit but their children
open frozen, i.e. as pure accumulating leaves) — both accounted on the
result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.config import DEFAULT_CONFIG, BuilderConfig
from repro.core.builder import adaptive_intervals
from repro.core.gini import gini, gini_partition
from repro.core.histogram import CategoryHistogram
from repro.core.splits import CategoricalSplit, NumericSplit, Split
from repro.core.tree import DecisionTree, Node, TreeAccount
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.io.metrics import BuildStats
from repro.obs.metrics import MetricsRegistry
from repro.stream.sketch import HeavyHitterSketch, QuantileSketch

#: Ledger prefix for per-open-leaf sketch memory.
SKETCH_LEDGER_PREFIX = "stream/sketch/"


@dataclass(frozen=True)
class SplitMeta:
    """Provenance of one sketch-chosen split, for the verify harness.

    ``candidate_edges`` holds, for **every** continuous attribute the
    leaf scored (not just the winner), the exact candidate grid used —
    the verification bound measures the oracle attribute's interval
    populations on that grid instead of an analytic ``1/q`` term.
    ``rank_errors`` / ``hh_errors`` are the summed per-class (resp.
    total-count) error bounds of the sketches at decision time, in
    absolute records.
    """

    node_id: int
    split: Split
    n_records: int
    class_counts: tuple[float, ...]
    candidate_edges: dict[int, np.ndarray]
    rank_errors: dict[int, float]
    hh_errors: dict[int, float]
    eps: float
    q: int


@dataclass
class StreamingResult:
    """A finished streaming build: the tree plus its audit trail."""

    tree: DecisionTree
    stats: BuildStats
    #: Per-internal-node provenance, keyed by node id.
    split_meta: dict[int, SplitMeta]
    #: Stream row indices absorbed by each split node while it was an
    #: open leaf (present only when ``record_members=True``).
    members: dict[int, np.ndarray] | None
    #: Records consumed from the stream.
    n_records: int
    #: Open leaves that dropped their sketches under memory pressure.
    spilled_nodes: list[int]
    #: Splits whose children were opened frozen (no sketches) because
    #: the budget had no room for two more open leaves.
    declined_nodes: list[int]
    #: High-water mark of total sketch bytes.
    sketch_bytes_peak: int
    #: Configured rank-error target.
    eps: float


class _OpenLeaf:
    """Sketch state of one growing leaf."""

    __slots__ = (
        "node",
        "qsketches",
        "cats",
        "n_since",
        "next_attempt",
        "member_chunks",
        "frozen",
    )

    def __init__(
        self,
        node: Node,
        schema: Schema,
        eps: float,
        hh_capacity: int,
        next_attempt: int,
        record_members: bool,
    ) -> None:
        c = schema.n_classes
        self.node = node
        self.qsketches: dict[int, list[QuantileSketch]] = {
            j: [QuantileSketch(eps) for _ in range(c)]
            for j in schema.continuous_indices()
        }
        self.cats: dict[int, HeavyHitterSketch] = {
            j: HeavyHitterSketch(
                max(hh_capacity, schema.attributes[j].cardinality), c
            )
            for j in schema.categorical_indices()
        }
        self.n_since = 0
        self.next_attempt = next_attempt
        self.member_chunks: list[np.ndarray] | None = (
            [] if record_members else None
        )
        self.frozen = False

    def observe(self, X: np.ndarray, y: np.ndarray, rows: np.ndarray) -> None:
        if self.frozen:
            return
        self.n_since += len(y)
        for j, per_class in self.qsketches.items():
            col = X[:, j]
            for c, sk in enumerate(per_class):
                sel = y == c
                if sel.any():
                    sk.extend(col[sel])
        for j, hh in self.cats.items():
            hh.extend(X[:, j], y)
        if self.member_chunks is not None:
            self.member_chunks.append(rows.copy())

    def nbytes(self) -> int:
        total = 0
        for per_class in self.qsketches.values():
            total += sum(sk.nbytes() for sk in per_class)
        total += sum(hh.nbytes() for hh in self.cats.values())
        return total

    def freeze(self) -> None:
        """Drop the sketches; the leaf keeps accumulating counts only."""
        self.frozen = True
        self.qsketches = {}
        self.cats = {}
        self.member_chunks = None

    def members(self) -> np.ndarray:
        if self.member_chunks is None:
            return np.empty(0, dtype=np.int64)
        if not self.member_chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self.member_chunks)


class StreamingTrainer:
    """Grow a CMP-S-style tree from a one-pass record stream.

    Parameters
    ----------
    schema:
        Attribute schema of the stream's records.
    config:
        Shared builder knobs (``n_intervals`` sizes the candidate grid
        through the same :func:`~repro.core.builder.adaptive_intervals`
        rule as the batch builders; ``min_records`` / ``min_gini`` /
        ``min_gain`` / ``max_depth`` are the stopping rules).
    eps:
        Target quantile-sketch rank-error fraction per class sketch.
    grace_records:
        Records an open leaf absorbs before its first split attempt
        (the streaming analogue of a level scan).  After a failed
        attempt the trigger doubles, so attempts stay O(log n) per leaf.
    memory_budget_bytes:
        Ledger budget for all open-leaf sketches together (0 =
        unbounded).  Over budget, the deepest open leaves spill (freeze
        and drop sketches); splits decline to open sketched children
        when there is no room for two fresh leaves.
    record_members:
        Record the stream row indices each split node absorbed —
        required by :mod:`repro.verify.stream`, off by default (it holds
        references proportional to the stream length).
    metrics:
        Optional registry for sketch-size gauges and spill counters.
    """

    name = "CMP-STREAM"

    def __init__(
        self,
        schema: Schema,
        config: BuilderConfig | None = None,
        *,
        eps: float = 0.02,
        grace_records: int | None = None,
        memory_budget_bytes: int = 0,
        record_members: bool = False,
        hh_capacity: int = 64,
        metrics: MetricsRegistry | None = None,
        tracer=None,
    ) -> None:
        self.schema = schema
        self.config = config if config is not None else DEFAULT_CONFIG
        if not 0.0 < eps < 1.0:
            raise ValueError("eps must be in (0, 1)")
        if memory_budget_bytes < 0:
            raise ValueError("memory_budget_bytes must be non-negative")
        if grace_records is None:
            grace_records = max(4 * self.config.min_records, 200)
        if grace_records < max(2, self.config.min_records):
            raise ValueError("grace_records must cover min_records")
        self.eps = float(eps)
        self.grace_records = int(grace_records)
        self.memory_budget_bytes = int(memory_budget_bytes)
        self.record_members = bool(record_members)
        self.hh_capacity = int(hh_capacity)
        self.metrics = metrics
        self.tracer = tracer

    # -- public API ----------------------------------------------------------

    def fit(self, dataset: Dataset, chunk_size: int = 2048) -> StreamingResult:
        """One pass over ``dataset`` in row order (convenience wrapper)."""
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")

        def chunks() -> Iterator[tuple[np.ndarray, np.ndarray]]:
            for start in range(0, dataset.n_records, chunk_size):
                stop = min(start + chunk_size, dataset.n_records)
                yield dataset.X[start:stop], dataset.y[start:stop]

        return self.fit_stream(chunks())

    def fit_stream(
        self, chunks: Iterable[tuple[np.ndarray, np.ndarray]]
    ) -> StreamingResult:
        """Consume an iterable of ``(X, y)`` chunks exactly once."""
        schema = self.schema
        c = schema.n_classes
        stats = BuildStats()
        if self.tracer is not None:
            stats.tracer = self.tracer
        account = TreeAccount()
        root = account.new_node(0, np.zeros(c, dtype=np.float64))
        open_leaves: dict[int, _OpenLeaf] = {
            root.node_id: _OpenLeaf(
                root,
                schema,
                self.eps,
                self.hh_capacity,
                self.grace_records,
                self.record_members,
            )
        }
        split_meta: dict[int, SplitMeta] = {}
        members: dict[int, np.ndarray] = {}
        spilled: list[int] = []
        declined: list[int] = []
        sketch_peak = 0
        offset = 0
        start = time.perf_counter()

        # Split attempts happen *between* chunks, so re-chunk coarse input
        # to grace-record granularity — a caller handing the whole stream
        # as one array still gets a full-depth tree, and a leaf's first
        # attempt lands within a factor of two of its grace trigger.
        step = max(64, self.grace_records // 2)

        with stats.phase("stream"):
            for X_in, y_in in chunks:
                X_in = np.asarray(X_in, dtype=np.float64)
                y_in = np.asarray(y_in, dtype=np.int64)
                if len(X_in) != len(y_in):
                    raise ValueError("chunk X and y must align")
                for lo in range(0, len(y_in), step):
                    X = X_in[lo : lo + step]
                    y = y_in[lo : lo + step]
                    if len(X) == 0:
                        continue
                    rows = np.arange(offset, offset + len(y), dtype=np.int64)
                    offset += len(y)
                    for node_id, idx in self._route(root, X, y, c).items():
                        leaf = open_leaves.get(node_id)
                        if leaf is not None:
                            leaf.observe(X[idx], y[idx], rows[idx])
                    self._attempt_splits(
                        open_leaves, account, split_meta, members, declined, stats
                    )
                    sketch_peak = max(
                        sketch_peak,
                        self._enforce_budget(open_leaves, spilled, stats),
                    )

        # Post-stream: leaves stay leaves — there are no further records
        # to route to children a late split would create.
        for node_id, leaf in open_leaves.items():
            stats.memory.release(f"{SKETCH_LEDGER_PREFIX}{node_id}")

        tree = DecisionTree(root, schema)
        stats.wall_seconds = time.perf_counter() - start
        stats.nodes_created = account.created
        stats.leaves = tree.n_leaves
        stats.levels_built = tree.depth
        if self.metrics is not None:
            self.metrics.gauge(
                "cmp_stream_sketch_bytes_peak",
                "High-water mark of streaming sketch memory.",
            ).set(float(sketch_peak))
            self.metrics.counter(
                "cmp_stream_spills_total",
                "Open leaves that dropped sketches under memory pressure.",
            ).inc(float(len(spilled)))
            self.metrics.counter(
                "cmp_stream_declines_total",
                "Splits whose children opened without sketches (budget).",
            ).inc(float(len(declined)))
        return StreamingResult(
            tree=tree,
            stats=stats,
            split_meta=split_meta,
            members=members if self.record_members else None,
            n_records=offset,
            spilled_nodes=spilled,
            declined_nodes=declined,
            sketch_bytes_peak=sketch_peak,
            eps=self.eps,
        )

    # -- internals -----------------------------------------------------------

    def _route(
        self, root: Node, X: np.ndarray, y: np.ndarray, c: int
    ) -> dict[int, np.ndarray]:
        """Route a chunk to the current leaves, charging pass-through counts.

        Every node on a record's path — internal or leaf — accumulates
        the record into ``class_counts``, so a finished node's counts
        always equal "training records that reached the node", the
        :class:`~repro.core.tree.Node` contract.
        """
        out: dict[int, np.ndarray] = {}
        stack: list[tuple[Node, np.ndarray]] = [(root, np.arange(len(y)))]
        while stack:
            node, idx = stack.pop()
            if len(idx) == 0:
                continue
            node.class_counts += np.bincount(y[idx], minlength=c)
            if node.is_leaf:
                out[node.node_id] = idx
                continue
            split = node.split
            goes_left = split.goes_left(X[idx])
            stack.append((node.right, idx[~goes_left]))
            stack.append((node.left, idx[goes_left]))
        return out

    def _attempt_splits(
        self,
        open_leaves: dict[int, _OpenLeaf],
        account: TreeAccount,
        split_meta: dict[int, SplitMeta],
        members: dict[int, np.ndarray],
        declined: list[int],
        stats: BuildStats,
    ) -> None:
        cfg = self.config
        # Sorted for determinism: dict order is insertion order, but a
        # sorted walk makes the decision sequence independent of how
        # leaves were re-inserted on earlier splits.
        for node_id in sorted(open_leaves):
            leaf = open_leaves[node_id]
            if leaf.frozen or leaf.n_since < leaf.next_attempt:
                continue
            node = leaf.node
            counts = node.class_counts
            n = float(counts.sum())
            node_gini = float(gini(counts))
            if (
                n < cfg.min_records
                or node_gini <= cfg.min_gini
                or node.depth >= cfg.max_depth
            ):
                self._retire(open_leaves, node_id, stats)
                continue
            chosen = self._choose_split(leaf, counts, n)
            if chosen is None or node_gini - chosen[1] <= cfg.min_gain:
                # Not worth splitting yet; try again after twice the
                # absorbed mass (keeps attempts logarithmic per leaf).
                leaf.next_attempt = max(leaf.next_attempt * 2, leaf.n_since + 1)
                continue
            split, score, meta = chosen
            node.split = split
            c = len(counts)
            left = account.new_node(node.depth + 1, np.zeros(c))
            right = account.new_node(node.depth + 1, np.zeros(c))
            node.left, node.right = left, right
            left.parent = right.parent = node
            split_meta[node_id] = meta
            if leaf.member_chunks is not None:
                members[node_id] = leaf.members()
            self._retire(open_leaves, node_id, stats)
            open_children = True
            if self.memory_budget_bytes:
                current = sum(lf.nbytes() for lf in open_leaves.values())
                fresh = 2 * self._empty_leaf_nbytes()
                if current + fresh > self.memory_budget_bytes:
                    open_children = False
                    declined.append(node_id)
            for child in (left, right):
                child_leaf = _OpenLeaf(
                    child,
                    self.schema,
                    self.eps,
                    self.hh_capacity,
                    self.grace_records,
                    self.record_members,
                )
                if not open_children:
                    child_leaf.freeze()
                open_leaves[child.node_id] = child_leaf

    def _retire(
        self, open_leaves: dict[int, _OpenLeaf], node_id: int, stats: BuildStats
    ) -> None:
        open_leaves.pop(node_id, None)
        stats.memory.release(f"{SKETCH_LEDGER_PREFIX}{node_id}")

    def _empty_leaf_nbytes(self) -> int:
        schema = self.schema
        c = schema.n_classes
        from repro.stream.sketch import _FIXED_OVERHEAD

        return _FIXED_OVERHEAD * (
            len(schema.continuous_indices()) * c
            + len(schema.categorical_indices())
        )

    def _enforce_budget(
        self,
        open_leaves: dict[int, _OpenLeaf],
        spilled: list[int],
        stats: BuildStats,
    ) -> int:
        """Charge the ledger and spill deepest leaves while over budget."""
        total = 0
        for node_id, leaf in open_leaves.items():
            if leaf.frozen:
                continue
            nbytes = leaf.nbytes()
            stats.memory.allocate(f"{SKETCH_LEDGER_PREFIX}{node_id}", nbytes)
            total += nbytes
        if self.memory_budget_bytes and total > self.memory_budget_bytes:
            # Deepest (newest) leaves spill first: the shallow frontier
            # carries the most records and the most split value.
            order = sorted(
                (
                    (leaf.node.depth, node_id)
                    for node_id, leaf in open_leaves.items()
                    if not leaf.frozen
                ),
                reverse=True,
            )
            for _, node_id in order:
                if total <= self.memory_budget_bytes:
                    break
                active = sum(
                    1 for lf in open_leaves.values() if not lf.frozen
                )
                if active <= 1:
                    break
                leaf = open_leaves[node_id]
                total -= leaf.nbytes()
                leaf.freeze()
                spilled.append(node_id)
                stats.memory.release(f"{SKETCH_LEDGER_PREFIX}{node_id}")
        return total

    def _choose_split(
        self, leaf: _OpenLeaf, counts: np.ndarray, n: float
    ) -> tuple[Split, float, SplitMeta] | None:
        """Best approximate split over every attribute, or ``None``."""
        cfg = self.config
        q = adaptive_intervals(cfg.n_intervals, n)
        best: tuple[float, int] | None = None
        best_split: Split | None = None
        candidate_edges: dict[int, np.ndarray] = {}
        rank_errors: dict[int, float] = {}
        hh_errors: dict[int, float] = {}

        for j, per_class in leaf.qsketches.items():
            populated = [sk for sk in per_class if sk.n_seen > 0]
            if not populated:
                continue
            merged = populated[0]
            for sk in populated[1:]:
                merged = merged.merge(sk)
            edges = merged.edges(q)
            candidate_edges[j] = edges
            rank_errors[j] = float(
                sum(sk.rank_error_bound() for sk in per_class)
            )
            if len(edges) == 0:
                continue
            left = np.zeros((len(edges), len(counts)), dtype=np.float64)
            for c, sk in enumerate(per_class):
                if sk.n_seen == 0:
                    continue
                left[:, c] = np.clip(sk.rank(edges), 0.0, counts[c])
            ginis = np.asarray(
                gini_partition(left, counts[None, :] - left)
            ).ravel()
            i = int(np.argmin(ginis))
            score = float(ginis[i])
            if best is None or (score, j) < best:
                best = (score, j)
                best_split = NumericSplit(j, float(edges[i]))

        for j, hh in leaf.cats.items():
            hh_errors[j] = hh.error_bound()
            card = self.schema.attributes[j].cardinality
            hist = CategoryHistogram(card, len(counts))
            hist.counts[:] = hh.matrix(card)
            try:
                mask, score = hist.best_subset_split()
            except ValueError:
                continue
            score = float(score)
            if best is None or (score, j) < best:
                best = (score, j)
                best_split = CategoricalSplit(j, tuple(bool(b) for b in mask))

        if best is None or best_split is None:
            return None
        meta = SplitMeta(
            node_id=leaf.node.node_id,
            split=best_split,
            n_records=int(n),
            class_counts=tuple(float(v) for v in counts),
            candidate_edges=candidate_edges,
            rank_errors=rank_errors,
            hh_errors=hh_errors,
            eps=self.eps,
            q=q,
        )
        return best_split, best[0], meta


def stream_chunks(
    dataset: Dataset, chunk_size: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield a dataset's rows as a one-pass chunk stream (test helper)."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    for start in range(0, dataset.n_records, chunk_size):
        stop = min(start + chunk_size, dataset.n_records)
        yield dataset.X[start:stop], dataset.y[start:stop]


__all__ = [
    "SplitMeta",
    "StreamingResult",
    "StreamingTrainer",
    "stream_chunks",
    "SKETCH_LEDGER_PREFIX",
]
