"""Streaming split computation: one-pass sketches, bounded-memory training,
and sliding-window hot-swap refresh.

The streaming counterpart of the batch CMP-S builder (ROADMAP: online
learning pillar).  :mod:`repro.stream.sketch` provides mergeable
quantile and heavy-hitter summaries with explicit error bounds;
:mod:`repro.stream.trainer` grows trees from a single pass over the
record stream under a memory budget; :mod:`repro.stream.refresh` keeps a
served model fresh on non-stationary streams by re-fitting on a sliding
window and hot-swapping through the registry's rollout path.  Every
sketch-chosen split is verifiable against the exact oracle within an
ε-derived bound — see :mod:`repro.verify.stream`.
"""

from repro.stream.refresh import RefreshEvent, SlidingWindowRefresher
from repro.stream.sketch import HeavyHitterSketch, QuantileSketch
from repro.stream.trainer import (
    SKETCH_LEDGER_PREFIX,
    SplitMeta,
    StreamingResult,
    StreamingTrainer,
    stream_chunks,
)

__all__ = [
    "HeavyHitterSketch",
    "SKETCH_LEDGER_PREFIX",
    "QuantileSketch",
    "RefreshEvent",
    "SlidingWindowRefresher",
    "SplitMeta",
    "StreamingResult",
    "StreamingTrainer",
    "stream_chunks",
]
