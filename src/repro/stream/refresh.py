"""Sliding-window incremental refresh with zero-downtime hot swap.

Supersedes the ``baselines/windowing.py`` seed: instead of rebuilding a
tree in place and handing the caller a new object, the
:class:`SlidingWindowRefresher` keeps the last ``window_records``
records of a non-stationary stream, periodically re-fits a tree on the
window with the one-pass :class:`~repro.stream.trainer.StreamingTrainer`,
and **hot-swaps** the result into a live
:class:`~repro.serve.engine.ModelRegistry` endpoint through the rollout
path (register → canary → atomic promote → drain-aware retire of the
displaced version).  Serving traffic addressing the endpoint name never
observes a missing model, and the displaced tree is only dropped once
its in-flight requests drain.

Two driving modes share the same ingest/refresh core:

* **synchronous** — :meth:`observe` re-fits inline whenever
  ``refresh_every`` new records have arrived since the last fit
  (deterministic; what the drift regression tests use);
* **background** — :meth:`start` launches a trainer thread that wakes on
  arrivals and performs the same re-fit off the caller's thread (what a
  live serving deployment uses; the hot-swap test drives sustained
  traffic against it).

Observability: each refresh runs under a ``stream_refresh`` tracer span
and updates ``cmp_stream_window_records`` / ``cmp_stream_sketch_bytes``
gauges plus the ``cmp_stream_refreshes_total`` counter.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.config import BuilderConfig
from repro.data.schema import Schema
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.serve.engine import ModelRegistry
from repro.stream.trainer import StreamingTrainer


@dataclass(frozen=True)
class RefreshEvent:
    """One completed refresh: which model now serves the endpoint."""

    #: Refresh sequence number (1-based).
    seq: int
    #: Fingerprint hot-swapped into the endpoint.
    fingerprint: str
    #: Endpoint version counter after the swap.
    version: int
    #: Records in the training window at fit time.
    window_records: int
    #: Peak sketch bytes of the one-pass fit.
    sketch_bytes: int


class SlidingWindowRefresher:
    """Keep a bounded window of a stream; re-fit and hot-swap periodically.

    Parameters
    ----------
    registry:
        Live model registry to swap into.
    endpoint:
        Endpoint name served to clients (created on the first refresh).
    schema:
        Stream record schema.
    window_records:
        Sliding-window size; older records are evicted.
    refresh_every:
        New records between re-fits.
    config / eps / grace_records:
        Passed to the per-refresh :class:`StreamingTrainer`.
    metrics / tracer:
        Optional observability sinks (see module docstring).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        endpoint: str,
        schema: Schema,
        *,
        window_records: int,
        refresh_every: int,
        config: BuilderConfig | None = None,
        eps: float = 0.02,
        grace_records: int | None = None,
        metrics: MetricsRegistry | None = None,
        tracer=None,
    ) -> None:
        if window_records < 1:
            raise ValueError("window_records must be positive")
        if refresh_every < 1:
            raise ValueError("refresh_every must be positive")
        self.registry = registry
        self.endpoint = endpoint
        self.schema = schema
        self.window_records = int(window_records)
        self.refresh_every = int(refresh_every)
        self.config = config
        self.eps = float(eps)
        self.grace_records = grace_records
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._window: list[tuple[np.ndarray, np.ndarray]] = []
        self._window_n = 0
        self._since_refresh = 0
        self._history: list[RefreshEvent] = []
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- ingest --------------------------------------------------------------

    def observe(self, X: np.ndarray, y: np.ndarray) -> bool:
        """Absorb a chunk; re-fit when due.  Returns True if it refreshed.

        With a background thread running (:meth:`start`), a due refresh
        is signalled to the thread instead of running inline.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if len(X) != len(y):
            raise ValueError("chunk X and y must align")
        due = False
        with self._lock:
            if len(y):
                self._window.append((X, y))
                self._window_n += len(y)
                self._since_refresh += len(y)
                self._trim_locked()
            due = self._since_refresh >= self.refresh_every
            if due:
                self._since_refresh = 0
        if not due:
            return False
        if self._thread is not None:
            self._wake.set()
            return False
        self.refresh()
        return True

    def _trim_locked(self) -> None:
        while self._window_n > self.window_records and len(self._window) > 1:
            extra = self._window_n - self.window_records
            head_X, head_y = self._window[0]
            if len(head_y) <= extra:
                self._window.pop(0)
                self._window_n -= len(head_y)
            else:
                self._window[0] = (head_X[extra:], head_y[extra:])
                self._window_n -= extra

    # -- refresh -------------------------------------------------------------

    def refresh(self) -> RefreshEvent | None:
        """Re-fit on the current window and hot-swap the endpoint.

        Returns the :class:`RefreshEvent`, or ``None`` when the window
        is empty or degenerate (single class with no splits possible is
        still fine — a single-leaf tree serves the prior).
        """
        with self._lock:
            if not self._window:
                return None
            X = np.concatenate([c[0] for c in self._window])
            y = np.concatenate([c[1] for c in self._window])
        with self.tracer.span(
            "stream_refresh", endpoint=self.endpoint, window=len(y)
        ):
            trainer = StreamingTrainer(
                self.schema,
                self.config,
                eps=self.eps,
                grace_records=self.grace_records,
                metrics=self.metrics,
            )
            result = trainer.fit_stream(iter([(X, y)]))
            fingerprint = self.registry.hot_swap(self.endpoint, result.tree)
            version = self.registry.endpoint_version(self.endpoint)
        with self._lock:
            event = RefreshEvent(
                seq=len(self._history) + 1,
                fingerprint=fingerprint,
                version=version,
                window_records=len(y),
                sketch_bytes=result.sketch_bytes_peak,
            )
            self._history.append(event)
        if self.metrics is not None:
            self.metrics.gauge(
                "cmp_stream_window_records",
                "Records currently held in the sliding refresh window.",
            ).set(float(len(y)))
            self.metrics.gauge(
                "cmp_stream_sketch_bytes",
                "Peak sketch bytes of the most recent window re-fit.",
            ).set(float(result.sketch_bytes_peak))
            self.metrics.counter(
                "cmp_stream_refreshes_total",
                "Sliding-window re-fit + hot-swap cycles completed.",
            ).inc()
        return event

    # -- background driving --------------------------------------------------

    def start(self) -> None:
        """Launch the background refresh thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._worker, name=f"refresh:{self.endpoint}", daemon=True
        )
        self._thread.start()

    def stop(self, *, final_refresh: bool = False) -> None:
        """Stop the background thread; optionally run one last refresh."""
        thread = self._thread
        if thread is not None:
            self._stop.set()
            self._wake.set()
            thread.join(timeout=30.0)
            self._thread = None
        if final_refresh:
            self.refresh()

    def _worker(self) -> None:
        while True:
            self._wake.wait()
            self._wake.clear()
            if self._stop.is_set():
                return
            self.refresh()

    # -- introspection -------------------------------------------------------

    @property
    def history(self) -> list[RefreshEvent]:
        """Completed refreshes, oldest first (copy)."""
        with self._lock:
            return list(self._history)

    @property
    def window_size(self) -> int:
        """Records currently held in the window."""
        with self._lock:
            return self._window_n


__all__ = ["RefreshEvent", "SlidingWindowRefresher"]
