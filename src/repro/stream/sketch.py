"""Mergeable one-pass sketches for streaming split computation.

CMP's equal-depth discretizer needs a full pre-pass (or a reservoir
sample) over a node's records before it can lay an interval grid.  Ta &
Vu show that near-optimal decision-tree splits are computable from a
*single* pass with sublinear memory, by replacing the exact quantiling
pass with a mergeable quantile sketch whose rank error is explicitly
bounded.  This module provides the two sketch families the streaming
trainer builds on:

:class:`QuantileSketch`
    A deterministic KLL/MRL-style multi-level compactor for continuous
    values.  Items live in levels; an item at level ``l`` represents
    ``2**l`` original records.  When a level reaches ``capacity`` items
    it is sorted and every other item is promoted to the next level with
    doubled weight (alternating the kept parity between compactions).
    One compaction at level ``l`` shifts the weighted rank of *any*
    threshold by at most ``2**l``, so the sketch maintains an **exact,
    queryable error bound**: ``rank_error_bound() = sum over levels of
    compactions[l] * 2**l``.  The per-level capacity is sized from the
    target ``eps`` so that the bound stays below ``eps * n`` for any
    stream up to ``2**32`` records (see ``_LOG_CAP``).  Every retained
    item is an actual data value, so sketch quantiles are realizable
    split thresholds — the same property ``equal_depth_edges`` gives the
    batch builders.

:class:`HeavyHitterSketch`
    A Misra-Gries summary of one categorical attribute keeping
    *per-class* counts per category code.  With ``capacity`` at or above
    the attribute's cardinality it is exact (the common case for schema
    attributes, whose cardinality is known); below that it degrades
    gracefully with a queryable ``error_bound()`` on any code's total.

Both sketches merge associatively (error bounds add), serialize to
plain dicts, and report ``nbytes()`` for the memory ledger.  Determinism
matters: no randomness is used anywhere, so a sketch built from a given
stream order is exactly reproducible — the property the verification
harness relies on to replay sketch-chosen splits.
"""

from __future__ import annotations

import numpy as np

#: Capacity is sized as ``ceil(_LOG_CAP / eps)``: the deterministic
#: compactor's rank error after ``n`` items is at most
#: ``(levels + 1) * n / capacity`` with ``levels <= log2(n)``, so this
#: constant guarantees ``rank_error_bound() <= eps * n`` for any stream
#: of up to ``2**32`` records.
_LOG_CAP = 34.0

#: Fixed per-instance overhead charged by ``nbytes`` (object headers,
#: counters, bookkeeping floats).
_FIXED_OVERHEAD = 256


class QuantileSketch:
    """Deterministic mergeable quantile sketch with a queryable ε bound.

    Parameters
    ----------
    eps:
        Target rank-error fraction: after any prefix of the stream,
        ``rank_error_bound() <= eps * n_seen`` is guaranteed (for
        streams up to ``2**32`` records).
    capacity:
        Per-level item capacity; derived from ``eps`` when omitted.
        Merging requires equal capacities.
    """

    def __init__(self, eps: float = 0.02, capacity: int | None = None) -> None:
        if not 0.0 < eps < 1.0:
            raise ValueError("eps must be in (0, 1)")
        if capacity is None:
            capacity = max(16, int(np.ceil(_LOG_CAP / eps)))
        if capacity < 4:
            raise ValueError("capacity must be at least 4")
        # An odd capacity would strand the parity schedule; keep it even.
        capacity += capacity % 2
        self.eps = float(eps)
        self.capacity = int(capacity)
        self._levels: list[np.ndarray] = [np.empty(0, dtype=np.float64)]
        self._compactions: list[int] = [0]
        self._parity: list[int] = [0]
        self._n_seen = 0
        self._n_nan = 0
        self._min = np.inf
        self._max = -np.inf

    # -- ingestion -----------------------------------------------------------

    def update(self, value: float) -> None:
        """Offer one value (NaN is counted and ignored)."""
        self.extend(np.asarray([value], dtype=np.float64))

    def extend(self, values: np.ndarray) -> None:
        """Offer a batch of values (vectorized; NaNs counted and dropped)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if len(values) == 0:
            return
        finite = values[~np.isnan(values)]
        self._n_nan += len(values) - len(finite)
        if len(finite) == 0:
            return
        self._n_seen += len(finite)
        self._min = min(self._min, float(finite.min()))
        self._max = max(self._max, float(finite.max()))
        self._levels[0] = np.concatenate([self._levels[0], finite])
        self._cascade()

    def _cascade(self) -> None:
        level = 0
        while level < len(self._levels):
            if len(self._levels[level]) >= self.capacity:
                self._compact(level)
            level += 1

    def _compact(self, level: int) -> None:
        """Promote half of one level's items with doubled weight.

        The buffer is sorted; with an odd item count the smallest item
        stays behind at its original weight so total weight is exactly
        preserved.  The kept parity alternates between compactions,
        which keeps the worst-case shift of any threshold's weighted
        rank at exactly ``2**level`` per compaction (and lets errors of
        consecutive compactions partially cancel in practice).
        """
        buf = np.sort(self._levels[level])
        if len(buf) % 2:
            keep, buf = buf[:1], buf[1:]
        else:
            keep = buf[:0]
        promoted = buf[self._parity[level] :: 2]
        self._parity[level] ^= 1
        self._compactions[level] += 1
        self._levels[level] = keep
        if level + 1 == len(self._levels):
            self._levels.append(np.empty(0, dtype=np.float64))
            self._compactions.append(0)
            self._parity.append(0)
        self._levels[level + 1] = np.concatenate(
            [self._levels[level + 1], promoted]
        )

    # -- queries -------------------------------------------------------------

    @property
    def n_seen(self) -> int:
        """Finite values offered so far (NaNs excluded)."""
        return self._n_seen

    @property
    def n_nan(self) -> int:
        """NaN values offered (counted, never stored)."""
        return self._n_nan

    @property
    def vmin(self) -> float:
        """Exact minimum of the stream (``inf`` when empty)."""
        return self._min

    @property
    def vmax(self) -> float:
        """Exact maximum of the stream (``-inf`` when empty)."""
        return self._max

    def rank(self, thresholds: "np.ndarray | float") -> np.ndarray:
        """Estimated count of stream values ``<= t`` for each threshold.

        Matches the ``a <= C`` split convention.  The estimate is within
        :meth:`rank_error_bound` of the exact count, uniformly over
        thresholds.
        """
        t = np.atleast_1d(np.asarray(thresholds, dtype=np.float64))
        out = np.zeros(len(t), dtype=np.float64)
        for level, items in enumerate(self._levels):
            if len(items):
                out += (2**level) * np.searchsorted(
                    np.sort(items), t, side="right"
                )
        return out

    def rank_error_bound(self) -> float:
        """Exact deterministic bound on ``|rank(t) - true_rank(t)|``.

        One compaction at level ``l`` shifts any threshold's weighted
        rank by at most ``2**l``; errors add over compactions, and
        merge folds both operands' counters in, so the bound is valid
        after any interleaving of ``extend`` and ``merge``.
        """
        return float(
            sum(c * (2**level) for level, c in enumerate(self._compactions))
        )

    def _weighted_items(self) -> tuple[np.ndarray, np.ndarray]:
        """All retained items with weights, sorted by value."""
        vals: list[np.ndarray] = []
        weights: list[np.ndarray] = []
        for level, items in enumerate(self._levels):
            if len(items):
                vals.append(items)
                weights.append(np.full(len(items), float(2**level)))
        if not vals:
            return np.empty(0), np.empty(0)
        v = np.concatenate(vals)
        w = np.concatenate(weights)
        order = np.argsort(v, kind="stable")
        return v[order], w[order]

    def quantile(self, p: float) -> float:
        """Smallest retained value whose weighted CDF reaches ``p``."""
        return float(self.quantiles(np.asarray([p]))[0])

    def quantiles(self, probs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`quantile` (inverted-CDF convention)."""
        if self._n_seen == 0:
            raise ValueError("cannot query quantiles of an empty sketch")
        probs = np.asarray(probs, dtype=np.float64)
        v, w = self._weighted_items()
        cum = np.cumsum(w)
        total = cum[-1]
        targets = np.clip(probs * total, 0.0, total)
        idx = np.searchsorted(cum, targets, side="left")
        return v[np.minimum(idx, len(v) - 1)]

    def edges(self, q: int) -> np.ndarray:
        """Equal-depth inner edges estimated from the sketch.

        Same contract as :func:`repro.data.discretize.equal_depth_edges`:
        up to ``q - 1`` strictly increasing edges, every edge an actual
        data value strictly below the stream maximum (so each boundary
        is a realizable ``a <= edge`` split).
        """
        if q < 1:
            raise ValueError("q must be >= 1")
        if self._n_seen == 0:
            return np.empty(0, dtype=np.float64)
        if q == 1:
            return np.empty(0, dtype=np.float64)
        probs = np.arange(1, q) / q
        edges = np.unique(self.quantiles(probs))
        return edges[edges < self._max]

    # -- merge ---------------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Return a new sketch summarizing both streams.

        Error bounds add (then grow by whatever cascade compactions the
        merge itself triggers), so the merged ``rank_error_bound`` stays
        valid.  Merging is associative and commutative up to the ε
        guarantee — the property tests pin this down.
        """
        if self.capacity != other.capacity:
            raise ValueError(
                "cannot merge sketches of different capacities "
                f"({self.capacity} vs {other.capacity})"
            )
        out = QuantileSketch(eps=min(self.eps, other.eps), capacity=self.capacity)
        depth = max(len(self._levels), len(other._levels))
        out._levels = []
        out._compactions = []
        out._parity = []
        for level in range(depth):
            a = self._levels[level] if level < len(self._levels) else None
            b = other._levels[level] if level < len(other._levels) else None
            parts = [x for x in (a, b) if x is not None and len(x)]
            out._levels.append(
                np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)
            )
            out._compactions.append(
                (self._compactions[level] if level < len(self._compactions) else 0)
                + (other._compactions[level] if level < len(other._compactions) else 0)
            )
            out._parity.append(
                self._parity[level] if level < len(self._parity) else 0
            )
        out._n_seen = self._n_seen + other._n_seen
        out._n_nan = self._n_nan + other._n_nan
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        out._cascade()
        return out

    # -- accounting / serialization ------------------------------------------

    def nbytes(self) -> int:
        """Bytes retained by the sketch (for the memory ledger)."""
        return _FIXED_OVERHEAD + sum(level.nbytes for level in self._levels)

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot (exact round-trip)."""
        return {
            "kind": "quantile",
            "eps": self.eps,
            "capacity": self.capacity,
            "levels": [level.tolist() for level in self._levels],
            "compactions": list(self._compactions),
            "parity": list(self._parity),
            "n_seen": self._n_seen,
            "n_nan": self._n_nan,
            "min": None if not np.isfinite(self._min) else self._min,
            "max": None if not np.isfinite(self._max) else self._max,
        }

    @classmethod
    def from_dict(cls, obj: dict[str, object]) -> "QuantileSketch":
        if obj.get("kind") != "quantile":
            raise ValueError(f"not a quantile-sketch dict: {obj.get('kind')!r}")
        out = cls(eps=float(obj["eps"]), capacity=int(obj["capacity"]))  # type: ignore[arg-type]
        out._levels = [
            np.asarray(level, dtype=np.float64) for level in obj["levels"]  # type: ignore[union-attr]
        ]
        out._compactions = [int(c) for c in obj["compactions"]]  # type: ignore[union-attr]
        out._parity = [int(p) for p in obj["parity"]]  # type: ignore[union-attr]
        out._n_seen = int(obj["n_seen"])  # type: ignore[arg-type]
        out._n_nan = int(obj["n_nan"])  # type: ignore[arg-type]
        out._min = np.inf if obj["min"] is None else float(obj["min"])  # type: ignore[arg-type]
        out._max = -np.inf if obj["max"] is None else float(obj["max"])  # type: ignore[arg-type]
        return out


class HeavyHitterSketch:
    """Misra-Gries per-class category counts for one categorical attribute.

    Exact while the number of distinct codes stays within ``capacity``
    (``error_bound() == 0``); beyond that, the classic decrement step
    evicts the lightest entries and any reported total may undercount
    the true total by at most ``error_bound()`` (absent codes have true
    totals at most the same bound).  Per-class counts are scaled down
    proportionally on decrement, so the class *mix* of surviving heavy
    codes stays representative.
    """

    def __init__(self, capacity: int, n_classes: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if n_classes < 2:
            raise ValueError("n_classes must be at least 2")
        self.capacity = int(capacity)
        self.n_classes = int(n_classes)
        self._counts: dict[int, np.ndarray] = {}
        self._decrements = 0.0
        self._n_seen = 0

    def extend(self, codes: np.ndarray, labels: np.ndarray) -> None:
        """Offer a batch of (category code, class label) pairs."""
        codes = np.asarray(codes)
        labels = np.asarray(labels)
        if len(codes) != len(labels):
            raise ValueError("codes and labels must align")
        if len(codes) == 0:
            return
        int_codes = codes.astype(np.int64)
        self._n_seen += len(codes)
        uniq, inverse = np.unique(int_codes, return_inverse=True)
        for i, code in enumerate(uniq):
            mask = inverse == i
            delta = np.bincount(
                labels[mask], minlength=self.n_classes
            ).astype(np.float64)
            entry = self._counts.get(int(code))
            if entry is not None:
                entry += delta
            else:
                self._counts[int(code)] = delta
        self._shrink()

    def _shrink(self) -> None:
        """Misra-Gries decrement until at most ``capacity`` entries remain."""
        while len(self._counts) > self.capacity:
            totals = {code: v.sum() for code, v in self._counts.items()}
            m = min(totals.values())
            self._decrements += m
            survivors: dict[int, np.ndarray] = {}
            for code, v in self._counts.items():
                total = totals[code]
                if total > m:
                    survivors[code] = v * ((total - m) / total)
            self._counts = survivors

    # -- queries -------------------------------------------------------------

    @property
    def n_seen(self) -> int:
        """Pairs offered so far."""
        return self._n_seen

    def counts(self) -> dict[int, np.ndarray]:
        """Copy of the retained ``code -> per-class counts`` table."""
        return {code: v.copy() for code, v in self._counts.items()}

    def matrix(self, n_categories: int) -> np.ndarray:
        """Dense ``(n_categories, n_classes)`` count matrix."""
        out = np.zeros((n_categories, self.n_classes), dtype=np.float64)
        for code, v in self._counts.items():
            if 0 <= code < n_categories:
                out[code] = v
        return out

    def error_bound(self) -> float:
        """Max undercount of any code's total (0 while exact)."""
        return self._decrements

    def merge(self, other: "HeavyHitterSketch") -> "HeavyHitterSketch":
        """Return a new sketch summarizing both streams (bounds add)."""
        if self.n_classes != other.n_classes:
            raise ValueError("cannot merge sketches over different class counts")
        out = HeavyHitterSketch(
            min(self.capacity, other.capacity), self.n_classes
        )
        out._n_seen = self._n_seen + other._n_seen
        out._decrements = self._decrements + other._decrements
        merged: dict[int, np.ndarray] = {
            code: v.copy() for code, v in self._counts.items()
        }
        for code, v in other._counts.items():
            if code in merged:
                merged[code] = merged[code] + v
            else:
                merged[code] = v.copy()
        out._counts = merged
        out._shrink()
        return out

    # -- accounting / serialization ------------------------------------------

    def nbytes(self) -> int:
        """Bytes retained (for the memory ledger)."""
        return _FIXED_OVERHEAD + len(self._counts) * (8 + 8 * self.n_classes)

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot (exact round-trip)."""
        return {
            "kind": "heavy_hitter",
            "capacity": self.capacity,
            "n_classes": self.n_classes,
            "counts": {str(code): v.tolist() for code, v in self._counts.items()},
            "decrements": self._decrements,
            "n_seen": self._n_seen,
        }

    @classmethod
    def from_dict(cls, obj: dict[str, object]) -> "HeavyHitterSketch":
        if obj.get("kind") != "heavy_hitter":
            raise ValueError(f"not a heavy-hitter dict: {obj.get('kind')!r}")
        out = cls(int(obj["capacity"]), int(obj["n_classes"]))  # type: ignore[arg-type]
        out._counts = {
            int(code): np.asarray(v, dtype=np.float64)
            for code, v in obj["counts"].items()  # type: ignore[union-attr]
        }
        out._decrements = float(obj["decrements"])  # type: ignore[arg-type]
        out._n_seen = int(obj["n_seen"])  # type: ignore[arg-type]
        return out


__all__ = ["QuantileSketch", "HeavyHitterSketch"]
