"""Accounting primitives for the simulated disk-resident setting.

The paper's evaluation is dominated by passes over a disk-resident training
set (a 1999 Ultra SPARC 10 with 128 MB of memory).  To reproduce the *shape*
of its results on modern hardware, every algorithm in this repository reads
the training data through :class:`repro.io.pager.PagedTable` and reports its
behaviour through the counters defined here.

Three pieces:

* :class:`IOStats` — raw counters (scans, pages, records, auxiliary
  structure reads/writes such as SPRINT attribute lists).
* :class:`MemoryTracker` — named, explicit allocations with a running peak,
  used for the Figure 19 memory comparison.
* :class:`CostModel` — deterministic conversion of counters into a simulated
  time, so "who wins and by what factor" does not depend on the whims of a
  modern CPU cache.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.metrics import Histogram
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

#: The counter fields of :class:`IOStats`, in snapshot order.
_IO_COUNTERS = (
    "scans",
    "pages_read",
    "records_read",
    "aux_records_read",
    "aux_records_written",
    "random_seeks",
    "read_retries",
    "backoff_ms",
)


class IOStats:
    """Mutable counter block shared by a pager and the algorithm using it.

    All counts are cumulative over the lifetime of one tree build.
    ``aux_*`` counters cover algorithm-private disk structures (attribute
    lists, nid arrays swapped to disk, buffers) measured in *records*.

    Mutators are guarded by a lock: the parallel scan engine
    (:mod:`repro.core.parallel`) reads chunks from several worker threads
    through one shared counter block, and ``+=`` on an attribute is not
    atomic.
    """

    __slots__ = (*_IO_COUNTERS, "_lock")

    def __init__(self) -> None:
        self.scans = 0
        self.pages_read = 0
        self.records_read = 0
        self.aux_records_read = 0
        self.aux_records_written = 0
        self.random_seeks = 0
        self.read_retries = 0
        self.backoff_ms = 0.0
        self._lock = threading.Lock()

    def begin_scan(self) -> None:
        """Record the start of one sequential pass over the dataset."""
        with self._lock:
            self.scans += 1

    def count_pages(self, pages: int, records: int) -> None:
        """Record ``pages`` sequential page reads holding ``records`` rows."""
        if pages < 0 or records < 0:
            raise ValueError("page and record counts must be non-negative")
        with self._lock:
            self.pages_read += pages
            self.records_read += records

    def count_aux_read(self, records: int) -> None:
        """Record reads of ``records`` rows from an auxiliary structure."""
        with self._lock:
            self.aux_records_read += records

    def count_aux_write(self, records: int) -> None:
        """Record writes of ``records`` rows to an auxiliary structure."""
        with self._lock:
            self.aux_records_written += records

    def count_seek(self, n: int = 1) -> None:
        """Record ``n`` random seeks (e.g. hash-probe driven I/O)."""
        with self._lock:
            self.random_seeks += n

    def count_retry(self, backoff_ms: float = 0.0) -> None:
        """Record one retried chunk read and the backoff it waited.

        The re-read's pages are charged separately (every read attempt
        goes through :meth:`count_pages`); this counter tracks how often
        the retry path fired and how much simulated waiting it cost, so
        fault recovery shows up honestly in :class:`CostModel` output.
        """
        if backoff_ms < 0:
            raise ValueError("backoff must be non-negative")
        with self._lock:
            self.read_retries += 1
            self.backoff_ms += backoff_ms

    def snapshot(self) -> dict[str, int]:
        """Return a plain-dict copy of all counters."""
        return {name: getattr(self, name) for name in _IO_COUNTERS}

    def merge_counter_delta(self, delta: dict[str, int]) -> None:
        """Fold a worker's counter increments into this instance.

        Process scan workers charge their fork-inherited *copy* of the
        stats; the parent applies ``after - before`` snapshots so the
        shared accounting ends up identical to a serial or threaded
        pass.  Unknown keys are rejected rather than dropped.
        """
        with self._lock:
            for name, value in delta.items():
                if name not in _IO_COUNTERS:
                    raise ValueError(f"unknown IO counter {name!r}")
                setattr(self, name, getattr(self, name) + value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"IOStats({inner})"


class MemoryTracker:
    """Track named logical allocations and the peak of their total.

    Algorithms call :meth:`allocate`/:meth:`release` around the data
    structures the paper charges to memory (histogram matrices, alive
    buffers, AVC-groups, attribute lists, hash tables).  Sizes are in bytes.

    All mutators take an internal lock (the same contract as
    :class:`IOStats`): the parallel scan engine charges and releases its
    worker-delta allocation from whatever thread drives the scan while
    builders account structures concurrently, and the read-modify-write
    on the running total is not atomic.
    """

    def __init__(self) -> None:
        self._live: dict[str, int] = {}
        self._current = 0
        self._peak = 0
        self._lock = threading.Lock()

    def allocate(self, name: str, nbytes: int) -> None:
        """Register ``nbytes`` under ``name`` (replacing a previous size)."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        with self._lock:
            self._current -= self._live.get(name, 0)
            self._live[name] = nbytes
            self._current += nbytes
            if self._current > self._peak:
                self._peak = self._current

    def release(self, name: str) -> None:
        """Drop the allocation registered under ``name`` (idempotent)."""
        with self._lock:
            self._current -= self._live.pop(name, 0)

    def release_prefix(self, prefix: str) -> None:
        """Drop every allocation whose name starts with ``prefix``."""
        with self._lock:
            for name in [n for n in self._live if n.startswith(prefix)]:
                self._current -= self._live.pop(name)

    @property
    def peak(self) -> int:
        """High-water mark of the registered total."""
        with self._lock:
            return self._peak

    def restore_peak(self, peak: int) -> None:
        """Raise the high-water mark to at least ``peak`` (checkpoint resume)."""
        if peak < 0:
            raise ValueError("peak must be non-negative")
        with self._lock:
            if peak > self._peak:
                self._peak = peak

    @property
    def current(self) -> int:
        """Total bytes currently registered."""
        with self._lock:
            return self._current

    def live_allocations(self) -> dict[str, int]:
        """Return a copy of the live allocation table."""
        with self._lock:
            return dict(self._live)


@dataclass(frozen=True)
class CostModel:
    """Deterministic simulated-time model.

    The defaults approximate a late-1990s machine: sequential page reads at
    ~5 ms per 8 KB page, random seeks at ~10 ms, and a per-record CPU charge.
    Absolute values are irrelevant to the reproduction; only the ratios
    matter, and they are chosen so dataset scans dominate, as in the paper.
    """

    seq_page_ms: float = 5.0
    seek_ms: float = 10.0
    cpu_record_us: float = 15.0
    aux_record_us: float = 8.0

    def simulated_ms(self, stats: IOStats, scan_workers: int = 1) -> float:
        """Convert raw counters to simulated milliseconds.

        ``scan_workers`` is the chunk-parallel worker count of the build
        (see :mod:`repro.core.parallel`): the per-record CPU charge is
        divided across workers, while sequential page reads, seeks and
        auxiliary-structure traffic stay serial — one spindle, however
        many routing threads.
        """
        io = stats.pages_read * self.seq_page_ms + stats.random_seeks * self.seek_ms
        cpu = stats.records_read * self.cpu_record_us / 1000.0 / max(1, scan_workers)
        aux = (
            (stats.aux_records_read + stats.aux_records_written)
            * self.aux_record_us
            / 1000.0
        )
        return io + cpu + aux + stats.backoff_ms


@dataclass
class BuildStats:
    """Everything a tree build reports, for experiments and benchmarks."""

    io: IOStats = field(default_factory=IOStats)
    memory: MemoryTracker = field(default_factory=MemoryTracker)
    cost_model: CostModel = field(default_factory=CostModel)
    wall_seconds: float = 0.0
    levels_built: int = 0
    nodes_created: int = 0
    leaves: int = 0
    splits_resolved_exactly: int = 0
    linear_splits: int = 0
    two_level_splits: int = 0
    #: Node ids whose split was committed at the second level of a
    #: two-level pending (CMP-B/CMP).  Those splits compete among the
    #: side sub-matrices' continuous attributes only — categorical
    #: attributes have no per-side histograms — which the verification
    #: harness must know to hold them to the right oracle reference.
    second_level_node_ids: list[int] = field(default_factory=list)
    predictions_made: int = 0
    predictions_correct: int = 0
    buffer_overflow_rescans: int = 0
    resumed_from_level: int = -1
    #: Chunk-routing workers the build was configured with.
    scan_workers: int = 1
    #: Backend the scan engine actually used ("thread" or "process").
    scan_backend: str = "thread"
    #: Parallel chunk batches dispatched across all scans of the build.
    parallel_batches: int = 0
    #: Native training-kernel calls made during the build (histogram/
    #: matrix accumulation, gini sweeps, slope walks).  Zero when the
    #: kernels are unavailable or ``CMP_NO_NATIVE=1``.  With the process
    #: backend, calls made inside forked workers ship home as per-kernel
    #: deltas and are folded into the parent tally, so the count matches
    #: the thread backend's.
    native_kernel_calls: int = 0
    #: Member trees trained by an ensemble build (0 = single-tree build).
    ensemble_members: int = 0
    #: Level scans shared across all member trees of an ensemble build —
    #: the solo equivalent would have paid ``ensemble_members`` times as
    #: many table passes for the same levels.
    shared_level_scans: int = 0
    #: Wall-clock seconds per build phase ("scan", "resolve", "checkpoint").
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Span recorder threaded through the build (``NULL_TRACER`` = off).
    tracer: "Tracer | NullTracer" = field(default=NULL_TRACER, repr=False)
    _phase_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock time of one named build phase.

        Safe under concurrent use: each entry accumulates its elapsed
        time in a thread-local variable and folds it into
        ``phase_seconds`` under a lock on exit, so overlapping phases on
        worker threads never lose each other's read-modify-write.  Each
        entry also records a ``phase:<name>`` span on :attr:`tracer`.
        """
        start = time.perf_counter()
        with self.tracer.span(f"phase:{name}"):
            try:
                yield
            finally:
                elapsed = time.perf_counter() - start
                with self._phase_lock:
                    self.phase_seconds[name] = (
                        self.phase_seconds.get(name, 0.0) + elapsed
                    )

    @property
    def simulated_ms(self) -> float:
        """Simulated build time in milliseconds under :class:`CostModel`."""
        return self.cost_model.simulated_ms(self.io, self.scan_workers)

    @property
    def prediction_accuracy(self) -> float:
        """Fraction of predictSplit calls whose prediction was used."""
        if self.predictions_made == 0:
            return 0.0
        return self.predictions_correct / self.predictions_made

    def summary(self) -> dict[str, float]:
        """Flat dict used by experiment tables."""
        out = {
            "scans": self.io.scans,
            "pages_read": self.io.pages_read,
            "records_read": self.io.records_read,
            "aux_records_read": self.io.aux_records_read,
            "aux_records_written": self.io.aux_records_written,
            "simulated_ms": round(self.simulated_ms, 3),
            "wall_seconds": round(self.wall_seconds, 4),
            "peak_memory_bytes": self.memory.peak,
            "levels": self.levels_built,
            "nodes": self.nodes_created,
            "leaves": self.leaves,
            "linear_splits": self.linear_splits,
            "two_level_splits": self.two_level_splits,
            "read_retries": self.io.read_retries,
            "scan_workers": self.scan_workers,
            "scan_backend": self.scan_backend,
            "parallel_batches": self.parallel_batches,
            "native_kernel_calls": self.native_kernel_calls,
        }
        if self.ensemble_members:
            out["ensemble_members"] = self.ensemble_members
            out["shared_level_scans"] = self.shared_level_scans
        for name, seconds in sorted(self.phase_seconds.items()):
            out[f"phase_{name}_s"] = round(seconds, 4)
        return out


class ServingStats:
    """Thread-safe latency/throughput/batch-size stats for one served model.

    The serving engine (:mod:`repro.serve`) records one observation per
    executed batch; requests may be finer-grained than batches when the
    micro-batcher coalesces them.  All mutators take the internal lock —
    observations arrive from pool worker threads and the batcher's
    flush thread concurrently.

    Latencies feed a log-bucketed :class:`~repro.obs.metrics.Histogram`
    (100 µs … ~100 s, ×2 steps), so :meth:`snapshot` reports
    interpolated p50/p90/p99 alongside the legacy extrema, and worker-
    local blocks merge exactly (the histogram-delta idiom).  ``min_batch``
    tracks the smallest *observed* batch — a genuine zero-record batch
    reports 0, distinguished from "never observed" by an explicit flag
    rather than the old ``min_batch == 0`` sentinel.
    """

    def __init__(self) -> None:
        self.requests = 0
        self.batches = 0
        self.records = 0
        self.busy_seconds = 0.0
        self.max_latency_s = 0.0
        self.min_batch = 0
        self.max_batch = 0
        self.batch_observed = False
        self.shed = 0
        self.timeouts = 0
        self.breaker_rejections = 0
        self.fallbacks = 0
        self.shard_retries = 0
        self.latency = Histogram()
        self._lock = threading.Lock()

    def count_request(self, n: int = 1) -> None:
        """Record ``n`` incoming requests (before any batching)."""
        if n < 0:
            raise ValueError("request count must be non-negative")
        with self._lock:
            self.requests += n

    def count_shed(self, n: int = 1) -> None:
        """Record ``n`` requests rejected by admission control (Overloaded)."""
        with self._lock:
            self.shed += n

    def count_timeout(self, n: int = 1) -> None:
        """Record ``n`` requests whose deadline expired before delivery."""
        with self._lock:
            self.timeouts += n

    def count_breaker_rejection(self, n: int = 1) -> None:
        """Record ``n`` requests refused by an open circuit breaker."""
        with self._lock:
            self.breaker_rejections += n

    def count_fallback(self, n: int = 1) -> None:
        """Record ``n`` requests answered by the degraded fallback path."""
        with self._lock:
            self.fallbacks += n

    def count_shard_retry(self, n: int = 1) -> None:
        """Record ``n`` shard executions that were retried after a failure."""
        with self._lock:
            self.shard_retries += n

    def observe_batch(self, batch_size: int, latency_s: float) -> None:
        """Record one executed batch of ``batch_size`` records."""
        if batch_size < 0 or latency_s < 0:
            raise ValueError("batch size and latency must be non-negative")
        with self._lock:
            self.batches += 1
            self.records += batch_size
            self.busy_seconds += latency_s
            if latency_s > self.max_latency_s:
                self.max_latency_s = latency_s
            if not self.batch_observed or batch_size < self.min_batch:
                self.min_batch = batch_size
            if batch_size > self.max_batch:
                self.max_batch = batch_size
            self.batch_observed = True
            self.latency.observe(latency_s)

    def merge_from(self, other: "ServingStats") -> None:
        """Fold ``other``'s counters into this block (for worker-local stats)."""
        # Copy other's state first, then take our own lock: never holding
        # both at once makes concurrent a<->b merges deadlock-free.
        with other._lock:
            requests = other.requests
            batches = other.batches
            records = other.records
            busy = other.busy_seconds
            max_latency = other.max_latency_s
            min_batch = other.min_batch
            max_batch = other.max_batch
            observed = other.batch_observed
            shed = other.shed
            timeouts = other.timeouts
            breaker_rejections = other.breaker_rejections
            fallbacks = other.fallbacks
            shard_retries = other.shard_retries
        with self._lock:
            self.requests += requests
            self.batches += batches
            self.records += records
            self.busy_seconds += busy
            self.shed += shed
            self.timeouts += timeouts
            self.breaker_rejections += breaker_rejections
            self.fallbacks += fallbacks
            self.shard_retries += shard_retries
            self.max_latency_s = max(self.max_latency_s, max_latency)
            if observed:
                self.min_batch = (
                    min(self.min_batch, min_batch)
                    if self.batch_observed
                    else min_batch
                )
                self.batch_observed = True
            self.max_batch = max(self.max_batch, max_batch)
        self.latency.merge_from(other.latency)

    def snapshot(self) -> dict[str, float]:
        """Copy of the raw counters plus derived rates and quantiles.

        ``records_per_s`` is records over summed batch latency (device
        throughput while busy), ``mean_batch`` and ``mean_latency_ms``
        are per-batch averages, and ``p50/p90/p99_latency_ms`` are
        interpolated from the log-bucketed latency histogram (0.0 when
        no batch has been observed).
        """
        with self._lock:
            out: dict[str, float] = {
                "requests": self.requests,
                "batches": self.batches,
                "records": self.records,
                "busy_seconds": self.busy_seconds,
                "max_latency_s": self.max_latency_s,
                "min_batch": self.min_batch,
                "max_batch": self.max_batch,
                "shed": self.shed,
                "timeouts": self.timeouts,
                "breaker_rejections": self.breaker_rejections,
                "fallbacks": self.fallbacks,
                "shard_retries": self.shard_retries,
            }
        out["mean_batch"] = out["records"] / out["batches"] if out["batches"] else 0.0
        out["mean_latency_ms"] = (
            1000.0 * out["busy_seconds"] / out["batches"] if out["batches"] else 0.0
        )
        out["records_per_s"] = (
            out["records"] / out["busy_seconds"] if out["busy_seconds"] > 0 else 0.0
        )
        for p in (50, 90, 99):
            q = self.latency.quantile(p / 100.0) if out["batches"] else 0.0
            out[f"p{p}_latency_ms"] = 1000.0 * q
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snap = self.snapshot()
        return (
            f"ServingStats(requests={snap['requests']:.0f}, "
            f"batches={snap['batches']:.0f}, records={snap['records']:.0f})"
        )


class Stopwatch:
    """Tiny context manager feeding :attr:`BuildStats.wall_seconds`."""

    def __init__(self, stats: BuildStats) -> None:
        self._stats = stats
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._stats.wall_seconds += time.perf_counter() - self._start
