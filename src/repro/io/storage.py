"""File-backed training tables: the disk-resident setting, for real.

:class:`repro.io.pager.PagedTable` *simulates* a disk-resident training
set over in-memory arrays.  This module makes the setting literal: a
dataset is materialized into a single binary file (schema embedded), and
:class:`StoredDataset` exposes the same interface builders consume —
``n_records`` / ``schema`` / ``as_paged()`` — while each scan actually
reads pages from the file through a read-only memory map.  Every builder
in this repository touches training data only through scans, so any of
them can train directly off a file without the dataset ever being resident
in memory.

File layout (little-endian)::

    magic   8 bytes   b"CMPTBL01"
    n       uint64    record count
    p       uint32    attribute count
    slen    uint32    length of the schema JSON
    schema  slen bytes (UTF-8 JSON, same format as tree serialization)
    X       n*p float64, row-major
    y       n   int64
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.data.schema import Attribute, AttributeKind, Schema
from repro.io.metrics import IOStats
from repro.io.pager import DEFAULT_PAGE_RECORDS, ScanChunk

if False:  # pragma: no cover - import cycle guard; type checkers only
    from repro.data.dataset import Dataset

MAGIC = b"CMPTBL01"
_HEADER = struct.Struct("<8sQII")


def _schema_json(schema: Schema) -> bytes:
    payload = {
        "attributes": [
            {"name": a.name, "kind": a.kind.value, "categories": list(a.categories)}
            for a in schema.attributes
        ],
        "class_labels": list(schema.class_labels),
    }
    return json.dumps(payload).encode("utf-8")


def _schema_from_json(raw: bytes) -> Schema:
    payload = json.loads(raw.decode("utf-8"))
    attrs = tuple(
        Attribute(a["name"], AttributeKind(a["kind"]), tuple(a["categories"]))
        for a in payload["attributes"]
    )
    return Schema(attrs, tuple(payload["class_labels"]))


def write_table(dataset: "Dataset", path: str | Path) -> Path:
    """Materialize ``dataset`` into the binary table format."""
    path = Path(path)
    schema_bytes = _schema_json(dataset.schema)
    with path.open("wb") as fh:
        fh.write(
            _HEADER.pack(
                MAGIC, dataset.n_records, dataset.n_attributes, len(schema_bytes)
            )
        )
        fh.write(schema_bytes)
        np.ascontiguousarray(dataset.X, dtype="<f8").tofile(fh)
        np.ascontiguousarray(dataset.y, dtype="<i8").tofile(fh)
    return path


class FilePagedTable:
    """Sequential paged scans over a stored table file."""

    def __init__(
        self,
        path: str | Path,
        stats: IOStats | None = None,
        page_records: int = DEFAULT_PAGE_RECORDS,
        pages_per_chunk: int = 64,
    ) -> None:
        if page_records <= 0 or pages_per_chunk <= 0:
            raise ValueError("page_records and pages_per_chunk must be positive")
        self.path = Path(path)
        self.stats = stats if stats is not None else IOStats()
        self.page_records = page_records
        self.pages_per_chunk = pages_per_chunk

        with self.path.open("rb") as fh:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise ValueError(f"{self.path} is not a CMP table (truncated header)")
            magic, n, p, slen = _HEADER.unpack(header)
            if magic != MAGIC:
                raise ValueError(f"{self.path} is not a CMP table (bad magic)")
            schema_raw = fh.read(slen)
        self.n_records = int(n)
        self.n_attributes = int(p)
        self.schema = _schema_from_json(schema_raw)
        if self.schema.n_attributes != self.n_attributes:
            raise ValueError(f"{self.path}: header/schema attribute count mismatch")

        x_offset = _HEADER.size + slen
        y_offset = x_offset + self.n_records * self.n_attributes * 8
        self._X = np.memmap(
            self.path, mode="r", dtype="<f8",
            offset=x_offset, shape=(self.n_records, self.n_attributes),
        )
        self._y = np.memmap(
            self.path, mode="r", dtype="<i8", offset=y_offset, shape=(self.n_records,)
        )

    @property
    def n_pages(self) -> int:
        """Number of pages the table occupies."""
        return -(-self.n_records // self.page_records)

    def scan(self) -> Iterator[ScanChunk]:
        """Yield the whole table in order, charging one full scan."""
        self.stats.begin_scan()
        chunk_records = self.page_records * self.pages_per_chunk
        n = self.n_records
        for start in range(0, n, chunk_records):
            stop = min(start + chunk_records, n)
            pages = -(-(stop - start) // self.page_records)
            self.stats.count_pages(pages, stop - start)
            # Copy out of the memory map so callers never hold mmap views.
            yield ScanChunk(
                start,
                np.array(self._X[start:stop], dtype=np.float64),
                np.array(self._y[start:stop], dtype=np.int64),
            )


class StoredDataset:
    """A dataset living in a file; builders train from it without loading it.

    Implements the slice of the :class:`~repro.data.dataset.Dataset`
    interface that builders use: ``schema``, ``n_records``, ``n_classes``,
    ``n_attributes`` and ``as_paged()``.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        probe = FilePagedTable(self.path)
        self.schema = probe.schema
        self.n_records = probe.n_records
        self.n_attributes = probe.n_attributes

    @property
    def n_classes(self) -> int:
        """Number of classes declared by the stored schema."""
        return self.schema.n_classes

    def as_paged(
        self,
        stats: IOStats | None = None,
        page_records: int = DEFAULT_PAGE_RECORDS,
    ) -> FilePagedTable:
        """Open an accounted scan handle over the file."""
        return FilePagedTable(self.path, stats=stats, page_records=page_records)

    def load(self) -> "Dataset":
        """Materialize the whole table in memory (for evaluation)."""
        from repro.data.dataset import Dataset

        table = FilePagedTable(self.path)
        X_parts, y_parts = [], []
        for chunk in table.scan():
            X_parts.append(chunk.X)
            y_parts.append(chunk.y)
        return Dataset(np.concatenate(X_parts), np.concatenate(y_parts), self.schema)
