"""File-backed training tables: the disk-resident setting, for real.

:class:`repro.io.pager.PagedTable` *simulates* a disk-resident training
set over in-memory arrays.  This module makes the setting literal: a
dataset is materialized into a single binary file (schema embedded), and
:class:`StoredDataset` exposes the same interface builders consume —
``n_records`` / ``schema`` / ``as_paged()`` — while each scan actually
reads pages from the file through a read-only memory map.  Every builder
in this repository touches training data only through scans, so any of
them can train directly off a file without the dataset ever being resident
in memory.

Two on-disk versions exist.  ``CMPTBL01`` is the legacy layout
(little-endian)::

    magic   8 bytes   b"CMPTBL01"
    n       uint64    record count
    p       uint32    attribute count
    slen    uint32    length of the schema JSON
    schema  slen bytes (UTF-8 JSON, same format as tree serialization)
    X       n*p float64, row-major
    y       n   int64

``CMPTBL02`` — the default written format — keeps that layout bit-for-bit
and appends an integrity section::

    crcs    k uint32  CRC32 per checksum page (X rows + y rows of the page)
    cpr     uint32    records per checksum page
    k       uint32    checksum page count
    hcrc    uint32    CRC32 of header + schema bytes
    fmagic  8 bytes   b"CMPFTR02"

Pages are verified lazily as scans first touch them, so a flipped bit in
the data region raises :class:`~repro.io.errors.ChecksumError` instead of
becoming training data, while opening a huge table stays O(header).
Writers go through a temp file and ``os.replace``, so a crash mid-write
can never leave a half-written table that parses — the destination either
holds the old bytes or the complete new ones.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.data.schema import Attribute, AttributeKind, Schema
from repro.io.errors import ChecksumError
from repro.io.metrics import IOStats
from repro.io.pager import DEFAULT_PAGE_RECORDS, ScanChunk

if False:  # pragma: no cover - import cycle guard; type checkers only
    from repro.data.dataset import Dataset

MAGIC = b"CMPTBL01"
MAGIC_V2 = b"CMPTBL02"
FOOTER_MAGIC = b"CMPFTR02"
_HEADER = struct.Struct("<8sQII")
_FOOTER = struct.Struct("<III8s")


def _schema_json(schema: Schema) -> bytes:
    payload = {
        "attributes": [
            {"name": a.name, "kind": a.kind.value, "categories": list(a.categories)}
            for a in schema.attributes
        ],
        "class_labels": list(schema.class_labels),
    }
    return json.dumps(payload).encode("utf-8")


def _schema_from_json(raw: bytes) -> Schema:
    payload = json.loads(raw.decode("utf-8"))
    attrs = tuple(
        Attribute(a["name"], AttributeKind(a["kind"]), tuple(a["categories"]))
        for a in payload["attributes"]
    )
    return Schema(attrs, tuple(payload["class_labels"]))


def _page_crcs(
    X: np.ndarray, y: np.ndarray, page_records: int
) -> np.ndarray:
    """CRC32 per checksum page over the page's X rows then y rows."""
    n = len(y)
    crcs = []
    for a in range(0, n, page_records):
        b = min(a + page_records, n)
        crc = zlib.crc32(X[a:b].tobytes())
        crc = zlib.crc32(y[a:b].tobytes(), crc)
        crcs.append(crc)
    return np.asarray(crcs, dtype="<u4")


def write_table(
    dataset: "Dataset",
    path: str | Path,
    version: int = 2,
    checksum_page_records: int = DEFAULT_PAGE_RECORDS,
) -> Path:
    """Materialize ``dataset`` into the binary table format, atomically.

    The bytes are staged in a sibling temp file, flushed and fsynced,
    then renamed over ``path`` — readers never observe a torn table.
    ``version=1`` writes the legacy checksum-less ``CMPTBL01`` layout
    (kept for compatibility tests and old files).
    """
    if version not in (1, 2):
        raise ValueError(f"unknown table version {version}")
    if checksum_page_records <= 0:
        raise ValueError("checksum_page_records must be positive")
    path = Path(path)
    magic = MAGIC if version == 1 else MAGIC_V2
    schema_bytes = _schema_json(dataset.schema)
    header = _HEADER.pack(
        magic, dataset.n_records, dataset.n_attributes, len(schema_bytes)
    )
    X = np.ascontiguousarray(dataset.X, dtype="<f8")
    y = np.ascontiguousarray(dataset.y, dtype="<i8")

    tmp = path.parent / f"{path.name}.tmp.{os.getpid()}"
    try:
        with tmp.open("wb") as fh:
            fh.write(header)
            fh.write(schema_bytes)
            X.tofile(fh)
            y.tofile(fh)
            if version == 2:
                crcs = _page_crcs(X, y, checksum_page_records)
                crcs.tofile(fh)
                fh.write(
                    _FOOTER.pack(
                        checksum_page_records,
                        len(crcs),
                        zlib.crc32(header + schema_bytes),
                        FOOTER_MAGIC,
                    )
                )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


class FilePagedTable:
    """Sequential paged scans over a stored table file.

    Owns two read-only memory maps over the file; call :meth:`close` (or
    use the table as a context manager) to release them deterministically
    instead of waiting for garbage collection.  For ``CMPTBL02`` files,
    every checksum page is CRC-verified the first time a scan touches it.
    """

    def __init__(
        self,
        path: str | Path,
        stats: IOStats | None = None,
        page_records: int = DEFAULT_PAGE_RECORDS,
        pages_per_chunk: int = 64,
    ) -> None:
        if page_records <= 0 or pages_per_chunk <= 0:
            raise ValueError("page_records and pages_per_chunk must be positive")
        self.path = Path(path)
        self.stats = stats if stats is not None else IOStats()
        self.page_records = page_records
        self.pages_per_chunk = pages_per_chunk

        file_size = self.path.stat().st_size
        with self.path.open("rb") as fh:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise ValueError(f"{self.path} is not a CMP table (truncated header)")
            magic, n, p, slen = _HEADER.unpack(header)
            if magic not in (MAGIC, MAGIC_V2):
                raise ValueError(f"{self.path} is not a CMP table (bad magic)")
            schema_raw = fh.read(slen)
            if len(schema_raw) < slen:
                raise ValueError(f"{self.path} is truncated (schema)")
        self.version = 1 if magic == MAGIC else 2
        self.n_records = int(n)
        self.n_attributes = int(p)
        self.schema = _schema_from_json(schema_raw)
        if self.schema.n_attributes != self.n_attributes:
            raise ValueError(f"{self.path}: header/schema attribute count mismatch")

        x_offset = _HEADER.size + slen
        y_offset = x_offset + self.n_records * self.n_attributes * 8
        data_end = y_offset + self.n_records * 8

        self._cksum_page_records = 0
        self._crcs: np.ndarray | None = None
        self._verified: np.ndarray | None = None
        if self.version == 2:
            self._read_footer(file_size, header, schema_raw, data_end)
        elif file_size < data_end:
            raise ValueError(f"{self.path} is truncated (data)")

        self._X: np.ndarray | None = np.memmap(
            self.path, mode="r", dtype="<f8",
            offset=x_offset, shape=(self.n_records, self.n_attributes),
        )
        self._y: np.ndarray | None = np.memmap(
            self.path, mode="r", dtype="<i8", offset=y_offset, shape=(self.n_records,)
        )

    def _read_footer(
        self, file_size: int, header: bytes, schema_raw: bytes, data_end: int
    ) -> None:
        if file_size < data_end + _FOOTER.size:
            raise ValueError(f"{self.path} is truncated (missing footer)")
        with self.path.open("rb") as fh:
            fh.seek(file_size - _FOOTER.size)
            cpr, k, hcrc, fmagic = _FOOTER.unpack(fh.read(_FOOTER.size))
            if fmagic != FOOTER_MAGIC:
                raise ValueError(f"{self.path} is truncated or corrupt (bad footer)")
            if cpr <= 0 or k != -(-self.n_records // cpr):
                raise ValueError(f"{self.path}: inconsistent checksum geometry")
            if file_size != data_end + 4 * k + _FOOTER.size:
                raise ValueError(f"{self.path}: file size disagrees with footer")
            if hcrc != zlib.crc32(header + schema_raw):
                raise ChecksumError(f"{self.path}: header checksum mismatch")
            fh.seek(data_end)
            raw = fh.read(4 * k)
        self._cksum_page_records = int(cpr)
        self._crcs = np.frombuffer(raw, dtype="<u4")
        self._verified = np.zeros(int(k), dtype=bool)

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has released the memory maps."""
        return self._X is None

    def close(self) -> None:
        """Release the file's memory maps (idempotent).

        Chunks handed out by :meth:`read_chunk` are copies, so no view
        can dangle; further reads raise ``ValueError``.
        """
        for arr in (self._X, self._y):
            mm = getattr(arr, "_mmap", None)
            if mm is not None:
                mm.close()
        self._X = None
        self._y = None

    def __enter__(self) -> "FilePagedTable":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- scans -------------------------------------------------------------

    @property
    def n_pages(self) -> int:
        """Number of pages the table occupies."""
        return -(-self.n_records // self.page_records)

    def _verify_range(self, start: int, stop: int) -> None:
        """CRC-check every unverified checksum page overlapping [start, stop)."""
        if self._crcs is None or start >= stop:
            return
        assert self._verified is not None and self._X is not None and self._y is not None
        cpr = self._cksum_page_records
        for k in range(start // cpr, -(-stop // cpr)):
            if self._verified[k]:
                continue
            a, b = k * cpr, min((k + 1) * cpr, self.n_records)
            crc = zlib.crc32(self._X[a:b].tobytes())
            crc = zlib.crc32(self._y[a:b].tobytes(), crc)
            if crc != int(self._crcs[k]):
                raise ChecksumError(
                    f"{self.path}: checksum mismatch in page {k} "
                    f"(records {a}..{b - 1})"
                )
            self._verified[k] = True

    def chunk_starts(self) -> range:
        """Record indices at which scan chunks begin, in scan order."""
        return range(0, self.n_records, self.page_records * self.pages_per_chunk)

    def read_chunk(self, start: int) -> ScanChunk:
        """Read (and charge) the single chunk beginning at ``start``.

        Copies out of the memory map so callers never hold mmap views;
        verifies page checksums on first touch for ``CMPTBL02`` files.
        """
        if self._X is None or self._y is None:
            raise ValueError(f"{self.path}: table is closed")
        stop = min(start + self.page_records * self.pages_per_chunk, self.n_records)
        pages = -(-(stop - start) // self.page_records)
        self.stats.count_pages(pages, stop - start)
        self._verify_range(start, stop)
        return ScanChunk(
            start,
            np.array(self._X[start:stop], dtype=np.float64),
            np.array(self._y[start:stop], dtype=np.int64),
        )

    def scan(self) -> Iterator[ScanChunk]:
        """Yield the whole table in order, charging one full scan."""
        self.stats.begin_scan()
        for start in self.chunk_starts():
            yield self.read_chunk(start)


class StoredDataset:
    """A dataset living in a file; builders train from it without loading it.

    Implements the slice of the :class:`~repro.data.dataset.Dataset`
    interface that builders use: ``schema``, ``n_records``, ``n_classes``,
    ``n_attributes`` and ``as_paged()``.  The metadata probe used at
    construction is closed before ``__init__`` returns — no memory map
    outlives it.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        with FilePagedTable(self.path) as probe:
            self.schema = probe.schema
            self.n_records = probe.n_records
            self.n_attributes = probe.n_attributes
            self.version = probe.version

    @property
    def n_classes(self) -> int:
        """Number of classes declared by the stored schema."""
        return self.schema.n_classes

    def as_paged(
        self,
        stats: IOStats | None = None,
        page_records: int = DEFAULT_PAGE_RECORDS,
    ) -> FilePagedTable:
        """Open an accounted scan handle over the file."""
        return FilePagedTable(self.path, stats=stats, page_records=page_records)

    def load(self) -> "Dataset":
        """Materialize the whole table in memory (for evaluation)."""
        from repro.data.dataset import Dataset

        with FilePagedTable(self.path) as table:
            X_parts, y_parts = [], []
            for chunk in table.scan():
                X_parts.append(chunk.X)
                y_parts.append(chunk.y)
        return Dataset(np.concatenate(X_parts), np.concatenate(y_parts), self.schema)
