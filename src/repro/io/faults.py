"""Deterministic I/O fault injection for paged tables.

Every robustness claim in this repository is testable because faults are
*injected*, not hoped for: :class:`FaultyTable` wraps any chunked table
and makes its ``read_chunk`` fail according to a seeded
:class:`FaultInjector`.  Three recoverable fault families mirror what
spinning disks and flaky filesystems actually do to long scans:

* **transient read errors** (:class:`~repro.io.errors.TransientReadError`)
  — the read syscall fails; a re-read succeeds;
* **truncated chunks** (:class:`~repro.io.errors.TruncatedReadError`)
  — the read comes back short;
* **corrupt pages** (:class:`~repro.io.errors.CorruptPageError`)
  — the bytes arrive but fail validation.

Fault decisions are drawn from a seeded generator, so a given seed
produces the same fault sequence on every run — failures reproduce.  The
injector bounds *consecutive* failures per chunk (``max_consecutive``),
so any retry budget above that bound is guaranteed to finish the scan;
this keeps fault-injected builds deterministic end-to-end instead of
probabilistically flaky.

For crash testing, ``kill_at_scan=k`` raises :class:`InjectedCrash` when
the *k*-th scan (0-based) starts — the moral equivalent of ``kill -9``
between tree levels, used to exercise checkpoint/resume.

:class:`FaultyDataset` lifts the wrapper to the dataset interface
builders consume (``as_paged`` and metadata), so an entire build can run
under fault injection without the builder knowing.
"""

from __future__ import annotations

import threading
from typing import Iterator

import numpy as np

from repro.io.errors import (
    CorruptPageError,
    RecoverableReadError,
    TableIOError,
    TransientReadError,
    TruncatedReadError,
)
from repro.io.pager import ScanChunk


class InjectedCrash(TableIOError):
    """A simulated process kill.  Deliberately *not* recoverable."""


class FaultInjector:
    """Seeded source of fault decisions, shared across a build's scans.

    Parameters
    ----------
    transient_rate / truncate_rate / corrupt_rate:
        Per-chunk-read probability of each fault family.  Rates are
        evaluated in that order from a single uniform draw per read, so
        their sum must stay at or below 1.
    seed:
        Seeds the decision stream; identical seeds replay identical
        fault sequences for an identical sequence of reads.
    max_consecutive:
        Upper bound on back-to-back failures of one chunk; the next
        attempt is forced to succeed.  With the default of 2, any retry
        budget >= 2 completes every scan.
    kill_at_scan:
        When set, the injector raises :class:`InjectedCrash` as scan
        number ``kill_at_scan`` (0-based, counted across the injector's
        lifetime) begins.
    """

    def __init__(
        self,
        transient_rate: float = 0.0,
        truncate_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        seed: int = 0,
        max_consecutive: int = 2,
        kill_at_scan: int | None = None,
    ) -> None:
        total = transient_rate + truncate_rate + corrupt_rate
        if min(transient_rate, truncate_rate, corrupt_rate) < 0 or total > 1.0:
            raise ValueError("fault rates must be non-negative and sum to <= 1")
        if max_consecutive < 1:
            raise ValueError("max_consecutive must be at least 1")
        self.transient_rate = transient_rate
        self.truncate_rate = truncate_rate
        self.corrupt_rate = corrupt_rate
        self.max_consecutive = max_consecutive
        self.kill_at_scan = kill_at_scan
        self._rng = np.random.default_rng(seed)
        self._streak: dict[int, int] = {}
        # Parallel scans issue chunk reads from worker threads; the decision
        # stream (rng + streak table) must stay internally consistent.  The
        # *order* of draws then follows thread scheduling, so retry counts
        # may vary run-to-run under parallelism — trees never do (retries
        # re-read the same chunk).
        self._lock = threading.Lock()
        #: Scans started under this injector (across all wrapped tables).
        self.scans_started = 0
        #: Faults injected, by family — for test assertions.
        self.injected = {"transient": 0, "truncated": 0, "corrupt": 0}

    @property
    def total_injected(self) -> int:
        """Total faults raised so far."""
        return sum(self.injected.values())

    def on_scan_start(self) -> None:
        """Notify the injector that a new scan begins; maybe crash."""
        if self.kill_at_scan is not None and self.scans_started == self.kill_at_scan:
            raise InjectedCrash(f"injected crash at scan {self.scans_started}")
        self.scans_started += 1

    def roll(self, start: int) -> RecoverableReadError | None:
        """Fault decision for one read of the chunk at record ``start``."""
        with self._lock:
            if self._streak.get(start, 0) >= self.max_consecutive:
                self._streak[start] = 0
                return None
            u = float(self._rng.random())
            fault: RecoverableReadError | None = None
            if u < self.transient_rate:
                self.injected["transient"] += 1
                fault = TransientReadError(
                    f"injected transient fault at record {start}"
                )
            elif u < self.transient_rate + self.truncate_rate:
                self.injected["truncated"] += 1
                fault = TruncatedReadError(f"injected short read at record {start}")
            elif u < self.transient_rate + self.truncate_rate + self.corrupt_rate:
                self.injected["corrupt"] += 1
                fault = CorruptPageError(f"injected corrupt page at record {start}")
            if fault is None:
                self._streak[start] = 0
            else:
                self._streak[start] = self._streak.get(start, 0) + 1
            return fault


class FaultyTable:
    """A chunked table whose reads fail on the injector's schedule.

    The wrapped table's read is performed (and its pages charged) *before*
    the fault fires — a failed read still cost real I/O, exactly as the
    retry accounting assumes.
    """

    def __init__(self, table, injector: FaultInjector) -> None:
        self._table = table
        self.injector = injector

    def __getattr__(self, name: str):
        return getattr(self._table, name)

    def chunk_starts(self):
        """Scan-order chunk starts; notifies the injector of scan start."""
        self.injector.on_scan_start()
        return self._table.chunk_starts()

    def read_chunk(self, start: int) -> ScanChunk:
        """Read one chunk, then fail if the injector says so."""
        chunk = self._table.read_chunk(start)
        fault = self.injector.roll(start)
        if fault is not None:
            raise fault
        return chunk

    def scan(self) -> Iterator[ScanChunk]:
        """Unprotected scan (raises on the first injected fault)."""
        self._table.stats.begin_scan()
        for start in self.chunk_starts():
            yield self.read_chunk(start)


class FaultyDataset:
    """Dataset proxy whose paged tables inject faults.

    Wraps anything exposing the builder-facing dataset interface
    (``schema`` / ``n_records`` / ``n_classes`` / ``n_attributes`` /
    ``as_paged``), including :class:`~repro.io.storage.StoredDataset`.
    The injector is shared across ``as_paged`` calls, so scan counting
    and the fault stream span the whole build.
    """

    def __init__(self, dataset, injector: FaultInjector) -> None:
        self._dataset = dataset
        self.injector = injector

    def __getattr__(self, name: str):
        return getattr(self._dataset, name)

    def as_paged(self, stats=None, page_records: int | None = None):
        """Open an accounted, fault-injecting scan handle."""
        if page_records is None:
            table = self._dataset.as_paged(stats)
        else:
            table = self._dataset.as_paged(stats, page_records)
        return FaultyTable(table, self.injector)
