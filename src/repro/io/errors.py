"""Exception hierarchy for the disk-resident I/O layer.

The fault model distinguishes *recoverable* read faults — the kind a
bounded retry loop is allowed to absorb — from failures that must
propagate.  :class:`RecoverableReadError` is the retry boundary: the
:class:`repro.io.retry.RetryingTable` wrapper catches exactly this type
(and its subclasses), re-reads the chunk up to the configured retry
budget, and converts exhaustion into a :class:`ScanFailedError` carrying
the last fault as its ``__cause__``.
"""

from __future__ import annotations


class TableIOError(Exception):
    """Base class for all errors raised by the paged-table I/O layer."""


class RecoverableReadError(TableIOError):
    """A chunk read failed in a way a re-read may fix.

    Subclasses model the three fault families the injection harness can
    produce; real storage raises :class:`ChecksumError` when a stored
    page fails CRC verification.
    """


class TransientReadError(RecoverableReadError):
    """The read itself failed (simulated EIO / device hiccup)."""


class TruncatedReadError(RecoverableReadError):
    """The read returned fewer bytes/records than requested."""


class CorruptPageError(RecoverableReadError):
    """A page was read but its content is damaged."""


class ChecksumError(CorruptPageError):
    """A stored page's CRC32 does not match its content.

    Unlike an injected corrupt-page fault, a checksum mismatch on a real
    file is persistent: every retry re-verifies and fails again, so the
    retry wrapper surfaces it as a :class:`ScanFailedError` whose cause
    chain ends here — the table is rejected, never silently trained on.
    """


class ScanFailedError(TableIOError):
    """A chunk read kept failing after exhausting the retry budget."""
