"""Retrying scans: bounded re-reads with exponential backoff.

Production-scale builds scan a disk-resident file once per tree level for
many levels; a single transient read fault must not discard hours of
work.  :class:`RetryingTable` wraps any chunked table (anything with
``chunk_starts()`` / ``read_chunk()``, i.e. :class:`~repro.io.pager.PagedTable`,
:class:`~repro.io.storage.FilePagedTable` or a fault-injecting wrapper
from :mod:`repro.io.faults`) and re-issues failed chunk reads up to a
configured budget, backing off exponentially between attempts.

Accounting stays honest: every read *attempt* charges its pages through
the wrapped table, each retry bumps ``IOStats.read_retries``, and the
backoff waits are charged to ``IOStats.backoff_ms`` — simulated time,
consistent with the repository's deterministic cost model (DESIGN.md §3);
the wrapper never sleeps for real.  When the budget is exhausted the last
fault is wrapped in :class:`~repro.io.errors.ScanFailedError` and
propagates — a persistently corrupt page stops the build rather than
training on damage.

Builders obtain their table through
:meth:`repro.core.builder.TreeBuilder._open_table`, which applies this
wrapper unconditionally, so every classifier in the repository gets the
same recovery semantics.
"""

from __future__ import annotations

from typing import Iterator

from repro.io.errors import RecoverableReadError, ScanFailedError
from repro.io.metrics import IOStats
from repro.io.pager import ScanChunk
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer


class RetryingTable:
    """Chunk-level retry wrapper around a paged table.

    Parameters
    ----------
    table:
        The table to protect.  Attribute access (``n_records``,
        ``schema``, ``stats``…) is delegated, so the wrapper is a drop-in
        replacement wherever a table is consumed.
    retries:
        Re-read attempts allowed per chunk beyond the first (0 disables
        recovery: the first fault propagates as ``ScanFailedError``).
    backoff_ms:
        Simulated wait before the first retry; doubles on each further
        attempt for the same chunk.
    tracer:
        Optional span recorder: each serial :meth:`scan` records one
        ``scan`` span, each fired retry a ``retry`` span carrying the
        chunk, attempt and simulated backoff.  Purely observational.
    """

    def __init__(
        self,
        table,
        retries: int = 3,
        backoff_ms: float = 1.0,
        tracer: "Tracer | NullTracer | None" = None,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff_ms < 0:
            raise ValueError("backoff_ms must be non-negative")
        self._table = table
        self.retries = retries
        self.backoff_ms = backoff_ms
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def __getattr__(self, name: str):
        return getattr(self._table, name)

    @property
    def stats(self) -> IOStats:
        """The wrapped table's counter block."""
        return self._table.stats

    def read_chunk(self, start: int) -> ScanChunk:
        """Read one chunk, retrying recoverable faults with backoff."""
        delay = self.backoff_ms
        last: RecoverableReadError | None = None
        for attempt in range(self.retries + 1):
            try:
                return self._table.read_chunk(start)
            except RecoverableReadError as exc:
                last = exc
                if attempt < self.retries:
                    with self.tracer.span(
                        "retry",
                        chunk=int(start),
                        attempt=attempt + 1,
                        backoff_ms=delay,
                        error=type(exc).__name__,
                    ):
                        self.stats.count_retry(delay)
                    delay *= 2.0
        raise ScanFailedError(
            f"chunk at record {start} failed after {self.retries + 1} attempts"
        ) from last

    def scan(self) -> Iterator[ScanChunk]:
        """Yield the whole table in order, charging one full scan.

        The ``scan`` span covers the full consumption of the generator
        (reading *and* the caller's routing between chunks), which is
        the per-pass wall clock the paper's accounting cares about.
        """
        self.stats.begin_scan()
        with self.tracer.span("scan", parallel=False):
            for start in self._table.chunk_starts():
                yield self.read_chunk(start)
