"""Simulated disk-resident table.

A :class:`PagedTable` wraps an in-memory :class:`repro.data.dataset.Dataset`
but forces algorithms to consume it the way SPRINT, CLOUDS and CMP consume a
training file: as sequential scans of fixed-size pages.  Each scan yields
:class:`ScanChunk` objects (contiguous record ranges as numpy views) and
charges the shared :class:`repro.io.metrics.IOStats`.

Keeping the data in memory while *accounting* it as disk pages is the
substitution that makes the paper's 1999 disk-bound evaluation reproducible
on a laptop: scan counts and page counts are exact, and the deterministic
cost model turns them into the simulated times reported by the experiment
drivers (see DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.io.metrics import IOStats

#: Default page capacity, in records.  The paper's records are nine 4-byte
#: attributes plus a label (~40 bytes), so an 8 KB page holds ~200 records.
DEFAULT_PAGE_RECORDS = 200


@dataclass(frozen=True)
class ScanChunk:
    """One batch of records produced by a scan.

    Attributes
    ----------
    start:
        Index of the first record of the chunk within the table.
    X:
        ``(k, p)`` float array view of attribute values.
    y:
        ``(k,)`` int array view of class labels.
    """

    start: int
    X: np.ndarray
    y: np.ndarray

    @property
    def stop(self) -> int:
        """Index one past the last record of the chunk."""
        return self.start + len(self.y)

    @property
    def rids(self) -> np.ndarray:
        """Record ids covered by this chunk."""
        return np.arange(self.start, self.stop)


class PagedTable:
    """A dataset readable only through accounted sequential scans."""

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        stats: IOStats | None = None,
        page_records: int = DEFAULT_PAGE_RECORDS,
        pages_per_chunk: int = 64,
    ) -> None:
        if X.ndim != 2:
            raise ValueError("X must be a 2-D array of shape (n, p)")
        if len(X) != len(y):
            raise ValueError("X and y must have the same number of records")
        if page_records <= 0 or pages_per_chunk <= 0:
            raise ValueError("page_records and pages_per_chunk must be positive")
        self._X = X
        self._y = y
        self.stats = stats if stats is not None else IOStats()
        self.page_records = page_records
        self.pages_per_chunk = pages_per_chunk

    @property
    def n_records(self) -> int:
        """Number of records in the table."""
        return len(self._y)

    @property
    def n_attributes(self) -> int:
        """Number of attributes (class label excluded)."""
        return self._X.shape[1]

    @property
    def n_pages(self) -> int:
        """Number of simulated pages the table occupies."""
        return -(-self.n_records // self.page_records)

    def chunk_starts(self) -> range:
        """Record indices at which scan chunks begin, in scan order."""
        return range(0, self.n_records, self.page_records * self.pages_per_chunk)

    def read_chunk(self, start: int) -> ScanChunk:
        """Read (and charge) the single chunk beginning at ``start``.

        The unit of retry: a failed read can be re-issued for just this
        chunk without restarting the scan.  Each call charges its pages,
        so retried reads show up in the I/O counters like the re-reads
        they model.
        """
        stop = min(start + self.page_records * self.pages_per_chunk, self.n_records)
        pages = -(-(stop - start) // self.page_records)
        self.stats.count_pages(pages, stop - start)
        return ScanChunk(start, self._X[start:stop], self._y[start:stop])

    def scan(self) -> Iterator[ScanChunk]:
        """Yield the whole table in order, charging one full scan."""
        self.stats.begin_scan()
        for start in self.chunk_starts():
            yield self.read_chunk(start)

    def column_unaccounted(self, j: int) -> np.ndarray:
        """Direct view of column ``j`` for test/verification code only.

        Production algorithms must use :meth:`scan`; this accessor exists so
        tests can check results against ground truth without perturbing the
        I/O counters.
        """
        return self._X[:, j]

    def labels_unaccounted(self) -> np.ndarray:
        """Direct view of the labels, for test/verification code only."""
        return self._y
