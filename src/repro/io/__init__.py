"""Simulated disk I/O, file-backed tables, fault injection and accounting."""

from repro.io.errors import (
    ChecksumError,
    CorruptPageError,
    RecoverableReadError,
    ScanFailedError,
    TableIOError,
    TransientReadError,
    TruncatedReadError,
)
from repro.io.faults import FaultInjector, FaultyDataset, FaultyTable, InjectedCrash
from repro.io.metrics import (
    BuildStats,
    CostModel,
    IOStats,
    MemoryTracker,
    ServingStats,
    Stopwatch,
)
from repro.io.pager import DEFAULT_PAGE_RECORDS, PagedTable, ScanChunk
from repro.io.retry import RetryingTable
from repro.io.storage import FilePagedTable, StoredDataset, write_table

__all__ = [
    "BuildStats",
    "CostModel",
    "IOStats",
    "MemoryTracker",
    "ServingStats",
    "Stopwatch",
    "PagedTable",
    "ScanChunk",
    "DEFAULT_PAGE_RECORDS",
    "FilePagedTable",
    "StoredDataset",
    "write_table",
    "TableIOError",
    "RecoverableReadError",
    "TransientReadError",
    "TruncatedReadError",
    "CorruptPageError",
    "ChecksumError",
    "ScanFailedError",
    "FaultInjector",
    "FaultyTable",
    "FaultyDataset",
    "InjectedCrash",
    "RetryingTable",
]
