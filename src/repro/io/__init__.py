"""Simulated disk I/O, file-backed tables and resource accounting."""

from repro.io.metrics import BuildStats, CostModel, IOStats, MemoryTracker, Stopwatch
from repro.io.pager import DEFAULT_PAGE_RECORDS, PagedTable, ScanChunk
from repro.io.storage import FilePagedTable, StoredDataset, write_table

__all__ = [
    "BuildStats",
    "CostModel",
    "IOStats",
    "MemoryTracker",
    "Stopwatch",
    "PagedTable",
    "ScanChunk",
    "DEFAULT_PAGE_RECORDS",
    "FilePagedTable",
    "StoredDataset",
    "write_table",
]
