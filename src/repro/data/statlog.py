"""Synthetic stand-ins for the STATLOG datasets used in Table 1.

The paper's Table 1 uses four STATLOG datasets (Letter, Satimage, Segment,
Shuttle) from [6] plus two large Agrawal functions.  UCI downloads are not
available offline, so we generate stand-ins that preserve what Table 1
actually exercises:

* the same record counts, attribute counts and class counts as the
  originals;
* class-conditional structure (Gaussian mixtures per class) so that a best
  univariate split exists and is non-trivial to locate;
* controllable difficulty: a few attributes are made discriminative with
  class-dependent means, the rest are noise, so discretization with too few
  intervals can miss the best attribute — the failure mode Table 1 reports
  for q = 10 on Letter and Segment.

This is a documented substitution (DESIGN.md §5): the experiment compares an
exact algorithm's root split against CMP's discretized root split on the
*same* data, so any dataset with the right shape exercises the identical
code path.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import Schema, continuous


@dataclass(frozen=True)
class StatlogSpec:
    """Shape of one STATLOG stand-in."""

    name: str
    n_records: int
    n_attributes: int
    n_classes: int
    #: number of genuinely discriminative attributes
    n_informative: int
    #: class-mean separation in units of the within-class std deviation
    separation: float


#: Record/attribute/class counts follow the paper's Table 1 and the STATLOG
#: project descriptions.
STATLOG_SPECS: dict[str, StatlogSpec] = {
    "letter": StatlogSpec("letter", 15_000, 16, 26, n_informative=6, separation=1.1),
    "satimage": StatlogSpec("satimage", 4_435, 36, 6, n_informative=8, separation=1.6),
    "segment": StatlogSpec("segment", 2_310, 19, 7, n_informative=5, separation=1.2),
    "shuttle": StatlogSpec("shuttle", 43_500, 9, 7, n_informative=3, separation=3.0),
}


def _schema_for(spec: StatlogSpec) -> Schema:
    return Schema(
        attributes=tuple(continuous(f"a{i}") for i in range(spec.n_attributes)),
        class_labels=tuple(f"c{i}" for i in range(spec.n_classes)),
    )


def generate_statlog(name: str, seed: int = 0) -> Dataset:
    """Generate the stand-in dataset called ``name``.

    Classes are drawn with mildly unbalanced priors (Dirichlet), informative
    attributes get class-dependent means with per-class scales, and the
    remaining attributes are pure noise shared across classes.
    """
    try:
        spec = STATLOG_SPECS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown STATLOG stand-in {name!r}; expected one of "
            f"{sorted(STATLOG_SPECS)}"
        ) from None
    name_hash = zlib.crc32(spec.name.encode("utf-8"))
    rng = np.random.default_rng(seed ^ name_hash)
    priors = rng.dirichlet(np.full(spec.n_classes, 8.0))
    y = rng.choice(spec.n_classes, size=spec.n_records, p=priors).astype(np.int64)

    X = rng.normal(0.0, 1.0, size=(spec.n_records, spec.n_attributes))
    # Class-dependent means on the informative attributes only.  Each
    # informative attribute separates a different grouping of the classes so
    # no two attributes are interchangeable and one of them is clearly best.
    for j in range(spec.n_informative):
        class_means = rng.normal(0.0, spec.separation * (1.0 + 0.25 * j), spec.n_classes)
        class_scales = rng.uniform(0.8, 1.3, spec.n_classes)
        X[:, j] = X[:, j] * class_scales[y] + class_means[y]
    # Give every attribute a distinct affine range so discretization edges
    # differ per attribute, as they would on the real data.
    offsets = rng.uniform(-5.0, 5.0, spec.n_attributes)
    scales = rng.uniform(0.5, 20.0, spec.n_attributes)
    X = X * scales + offsets
    return Dataset(X, y, _schema_for(spec))


def all_statlog(seed: int = 0) -> dict[str, Dataset]:
    """Generate every stand-in, keyed by dataset name."""
    return {name: generate_statlog(name, seed=seed) for name in STATLOG_SPECS}
