"""Datasets, schemas, synthetic generators and discretization."""

from repro.data.csv_io import infer_schema, load_csv, save_csv
from repro.data.dataset import Dataset
from repro.data.discretize import (
    Discretizer,
    ReservoirSampler,
    bin_index,
    equal_depth_edges,
    equal_width_edges,
)
from repro.data.schema import Attribute, AttributeKind, Schema, categorical, continuous
from repro.data.statlog import STATLOG_SPECS, all_statlog, generate_statlog
from repro.data.synthetic import (
    AGRAWAL_SCHEMA,
    ATTRIBUTE_NAMES,
    FUNCTIONS,
    generate_agrawal,
    generate_function_f,
)

__all__ = [
    "Dataset",
    "infer_schema",
    "load_csv",
    "save_csv",
    "Discretizer",
    "ReservoirSampler",
    "bin_index",
    "equal_depth_edges",
    "equal_width_edges",
    "Attribute",
    "AttributeKind",
    "Schema",
    "categorical",
    "continuous",
    "STATLOG_SPECS",
    "all_statlog",
    "generate_statlog",
    "AGRAWAL_SCHEMA",
    "ATTRIBUTE_NAMES",
    "FUNCTIONS",
    "generate_agrawal",
    "generate_function_f",
]
