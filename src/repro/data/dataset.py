"""Columnar training-set container."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import Schema
from repro.io.metrics import IOStats
from repro.io.pager import DEFAULT_PAGE_RECORDS, PagedTable


@dataclass(frozen=True)
class Dataset:
    """A training set: attribute matrix ``X``, labels ``y``, and a schema.

    ``X`` is ``(n, p)`` float64; categorical columns hold integer codes.
    ``y`` is ``(n,)`` int64 with values in ``range(schema.n_classes)``.
    """

    X: np.ndarray
    y: np.ndarray
    schema: Schema

    def __post_init__(self) -> None:
        if self.X.ndim != 2:
            raise ValueError("X must be 2-D")
        if self.y.ndim != 1 or len(self.y) != len(self.X):
            raise ValueError("y must be 1-D and aligned with X")
        if self.X.shape[1] != self.schema.n_attributes:
            raise ValueError(
                f"X has {self.X.shape[1]} columns but schema declares "
                f"{self.schema.n_attributes} attributes"
            )
        if len(self.y) and (self.y.min() < 0 or self.y.max() >= self.schema.n_classes):
            raise ValueError("labels out of range for schema")

    @property
    def n_records(self) -> int:
        """Number of records."""
        return len(self.y)

    @property
    def n_attributes(self) -> int:
        """Number of input attributes."""
        return self.schema.n_attributes

    @property
    def n_classes(self) -> int:
        """Number of classes."""
        return self.schema.n_classes

    def column(self, ref: int | str) -> np.ndarray:
        """Return the attribute column referenced by index or name."""
        if isinstance(ref, str):
            ref = self.schema.index_of(ref)
        return self.X[:, ref]

    def class_counts(self) -> np.ndarray:
        """Per-class record counts, shape ``(n_classes,)``."""
        return np.bincount(self.y, minlength=self.n_classes)

    def take(self, idx: np.ndarray) -> "Dataset":
        """Return a new dataset of the selected record indices."""
        return Dataset(self.X[idx], self.y[idx], self.schema)

    def split_holdout(
        self, test_fraction: float, rng: np.random.Generator
    ) -> tuple["Dataset", "Dataset"]:
        """Random (train, test) split with ``test_fraction`` held out."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        perm = rng.permutation(self.n_records)
        n_test = max(1, int(round(self.n_records * test_fraction)))
        return self.take(perm[n_test:]), self.take(perm[:n_test])

    def as_paged(
        self,
        stats: IOStats | None = None,
        page_records: int = DEFAULT_PAGE_RECORDS,
    ) -> PagedTable:
        """Wrap this dataset as a simulated disk-resident table."""
        return PagedTable(self.X, self.y, stats=stats, page_records=page_records)
