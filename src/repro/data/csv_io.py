"""CSV import/export for datasets.

The export writes one header row with attribute names (class label last)
and decodes categorical codes back to their category names; the import
infers a schema — columns whose every value parses as a number become
continuous, everything else categorical — or accepts an explicit schema
for full control.  Round-trips are exact for category codes and labels and
exact-to-repr for continuous values.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import Attribute, AttributeKind, Schema

#: Column name used for the class label on export.
LABEL_COLUMN = "class"


def save_csv(dataset: Dataset, path: str | Path) -> None:
    """Write a dataset as CSV (attributes..., class), decoding categories."""
    path = Path(path)
    schema = dataset.schema
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([a.name for a in schema.attributes] + [LABEL_COLUMN])
        for i in range(dataset.n_records):
            row: list[str] = []
            for j, attr in enumerate(schema.attributes):
                v = dataset.X[i, j]
                if attr.is_continuous:
                    row.append(repr(float(v)))
                else:
                    row.append(attr.categories[int(v)])
            row.append(schema.class_labels[int(dataset.y[i])])
            writer.writerow(row)


def _parses_as_float(value: str) -> bool:
    try:
        float(value)
    except ValueError:
        return False
    return True


def infer_schema(
    header: list[str], rows: list[list[str]]
) -> Schema:
    """Infer a schema from raw CSV rows (last column is the class label)."""
    if len(header) < 2:
        raise ValueError("need at least one attribute column plus the label")
    n_attrs = len(header) - 1
    attributes: list[Attribute] = []
    for j in range(n_attrs):
        values = [row[j] for row in rows]
        if all(_parses_as_float(v) for v in values):
            attributes.append(Attribute(header[j], AttributeKind.CONTINUOUS))
        else:
            cats = tuple(sorted(set(values)))
            attributes.append(Attribute(header[j], AttributeKind.CATEGORICAL, cats))
    labels = tuple(sorted(set(row[-1] for row in rows)))
    return Schema(tuple(attributes), labels)


def load_csv(path: str | Path, schema: Schema | None = None) -> Dataset:
    """Load a CSV written by :func:`save_csv` (or compatible).

    The last column is the class label.  When ``schema`` is omitted it is
    inferred; when given, categorical values and labels must belong to its
    vocabularies.  Every rejected input — a ragged row, a continuous value
    that is not a finite number (``nan``/``inf`` included), an unknown
    category or class label — raises ``ValueError`` naming the file line
    that caused it.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        rows: list[list[str]] = []
        lines: list[int] = []
        for row in reader:
            if row:
                rows.append(row)
                lines.append(reader.line_num)
    if not rows:
        raise ValueError(f"{path} has no data rows")
    for line, row in zip(lines, rows):
        if len(row) != len(header):
            raise ValueError(
                f"{path}, line {line}: ragged row — expected "
                f"{len(header)} columns, got {len(row)}"
            )

    if schema is None:
        schema = infer_schema(header, rows)
    elif len(header) != schema.n_attributes + 1:
        raise ValueError(
            f"{path} has {len(header) - 1} attribute columns but the schema "
            f"declares {schema.n_attributes}"
        )

    n = len(rows)
    X = np.empty((n, schema.n_attributes), dtype=np.float64)
    y = np.empty(n, dtype=np.int64)
    cat_codes = {
        j: {c: k for k, c in enumerate(schema.attributes[j].categories)}
        for j in schema.categorical_indices()
    }
    label_codes = {c: k for k, c in enumerate(schema.class_labels)}
    for i, row in enumerate(rows):
        line = lines[i]
        for j, attr in enumerate(schema.attributes):
            raw = row[j]
            if attr.is_continuous:
                try:
                    value = float(raw)
                except ValueError:
                    raise ValueError(
                        f"{path}, line {line}: {raw!r} is not a number "
                        f"for continuous attribute {attr.name!r}"
                    ) from None
                if not np.isfinite(value):
                    raise ValueError(
                        f"{path}, line {line}: non-finite value {raw!r} "
                        f"for continuous attribute {attr.name!r}"
                    )
                X[i, j] = value
            else:
                try:
                    X[i, j] = cat_codes[j][raw]
                except KeyError:
                    raise ValueError(
                        f"{path}, line {line}: unknown category {raw!r} "
                        f"for attribute {attr.name!r}"
                    ) from None
        try:
            y[i] = label_codes[row[-1]]
        except KeyError:
            raise ValueError(
                f"{path}, line {line}: unknown class label {row[-1]!r}"
            ) from None
    return Dataset(X, y, schema)
