"""Attribute schemas for training sets.

The paper's terminology (§1): attributes with a totally ordered domain are
*ordered* (here: continuous), the rest are *categorical*, and one
distinguished categorical attribute is the *class label*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class AttributeKind(Enum):
    """Whether an attribute's domain is ordered or not."""

    CONTINUOUS = "continuous"
    CATEGORICAL = "categorical"


@dataclass(frozen=True)
class Attribute:
    """One input attribute of a training set.

    Categorical attributes carry the tuple of category names; their column
    in the dataset stores integer codes indexing into ``categories``.
    """

    name: str
    kind: AttributeKind
    categories: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind is AttributeKind.CATEGORICAL and not self.categories:
            raise ValueError(f"categorical attribute {self.name!r} needs categories")
        if self.kind is AttributeKind.CONTINUOUS and self.categories:
            raise ValueError(f"continuous attribute {self.name!r} cannot have categories")

    @property
    def is_continuous(self) -> bool:
        """True for ordered (continuous) attributes."""
        return self.kind is AttributeKind.CONTINUOUS

    @property
    def cardinality(self) -> int:
        """Number of categories (0 for continuous attributes)."""
        return len(self.categories)


def continuous(name: str) -> Attribute:
    """Shorthand constructor for a continuous attribute."""
    return Attribute(name, AttributeKind.CONTINUOUS)


def categorical(name: str, categories: tuple[str, ...] | list[str]) -> Attribute:
    """Shorthand constructor for a categorical attribute."""
    return Attribute(name, AttributeKind.CATEGORICAL, tuple(categories))


@dataclass(frozen=True)
class Schema:
    """Ordered attribute list plus the class-label vocabulary."""

    attributes: tuple[Attribute, ...]
    class_labels: tuple[str, ...]
    _index: dict[str, int] = field(init=False, repr=False, compare=False, hash=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if len(self.class_labels) < 2:
            raise ValueError("a classification schema needs at least two classes")
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ValueError("attribute names must be unique")
        object.__setattr__(self, "_index", {n: i for i, n in enumerate(names)})

    @property
    def n_attributes(self) -> int:
        """Number of input attributes (class label excluded)."""
        return len(self.attributes)

    @property
    def n_classes(self) -> int:
        """Number of class labels."""
        return len(self.class_labels)

    def index_of(self, name: str) -> int:
        """Return the column index of the attribute called ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no attribute named {name!r}") from None

    def attribute(self, ref: int | str) -> Attribute:
        """Look an attribute up by index or name."""
        if isinstance(ref, str):
            ref = self.index_of(ref)
        return self.attributes[ref]

    def continuous_indices(self) -> list[int]:
        """Column indices of all continuous attributes."""
        return [i for i, a in enumerate(self.attributes) if a.is_continuous]

    def categorical_indices(self) -> list[int]:
        """Column indices of all categorical attributes."""
        return [i for i, a in enumerate(self.attributes) if not a.is_continuous]
