"""Discretization of continuous attributes (§1.1 "Sampling and discretization").

Two histogram styles from the paper:

* *equal-width* — the value range is cut into ``q`` equally wide intervals;
* *equal-depth* (quantiling) — each interval holds approximately the same
  number of records.  CLOUDS and the whole CMP family use this style.

An interval structure is represented by its inner *edges*: an array of
``q - 1`` increasing cut points.  Interval ``i`` covers ``(edges[i-1],
edges[i]]``; values ``<= edges[0]`` fall in interval 0 and values
``> edges[-1]`` in interval ``q - 1``.  ``bin_index`` uses the same
convention as the split criterion ``a <= C``, so an interval boundary *is* a
candidate threshold.
"""

from __future__ import annotations

import numpy as np


def equal_width_edges(values: np.ndarray, q: int) -> np.ndarray:
    """Inner edges of ``q`` equal-width intervals covering ``values``."""
    if q < 1:
        raise ValueError("q must be >= 1")
    if len(values) == 0:
        raise ValueError("cannot discretize an empty column")
    lo = float(np.min(values))
    hi = float(np.max(values))
    if q == 1 or lo == hi:
        return np.empty(0, dtype=np.float64)
    return np.linspace(lo, hi, q + 1)[1:-1].astype(np.float64)


def equal_depth_edges(values: np.ndarray, q: int) -> np.ndarray:
    """Inner edges of (up to) ``q`` equal-depth intervals.

    Duplicated quantiles (heavily repeated values) are collapsed, so the
    result may have fewer than ``q - 1`` edges; every returned edge is an
    actual data value, which guarantees each boundary is a realizable split
    point ``a <= edge``.
    """
    if q < 1:
        raise ValueError("q must be >= 1")
    if len(values) == 0:
        raise ValueError("cannot discretize an empty column")
    if q == 1:
        return np.empty(0, dtype=np.float64)
    probs = np.arange(1, q) / q
    edges = np.quantile(values, probs, method="inverted_cdf").astype(np.float64)
    edges = np.unique(edges)
    # An edge equal to the max value would make the last interval empty.
    hi = float(np.max(values))
    return edges[edges < hi]


def bin_index(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Map values to interval indices in ``[0, len(edges)]``.

    Interval ``i`` holds values ``v`` with ``edges[i-1] < v <= edges[i]``
    (open below, closed above), matching the ``a <= C`` split convention.
    """
    return np.searchsorted(edges, values, side="left").astype(np.intp)


def edges_from_histogram(
    edges: np.ndarray,
    interval_counts: np.ndarray,
    q: int,
    vmin: np.ndarray | None = None,
    vmax: np.ndarray | None = None,
) -> np.ndarray:
    """Approximate equal-depth edges derived from an existing histogram.

    CMP rebuilds each frontier node's histograms from scratch on every scan,
    so a child node's interval grid can be re-quantiled *before* its records
    are ever seen by interpolating the parent's just-completed histogram
    (records assumed uniform within each parent interval).  This gives
    per-node adaptive discretization with no extra scan and no sampling
    (DESIGN.md §3).

    Parameters
    ----------
    edges:
        Parent grid's inner edges (``len(edges) + 1`` intervals).
    interval_counts:
        Total record count per parent interval, shape ``(len(edges)+1,)``.
    q:
        Desired number of child intervals.
    vmin / vmax:
        Optional per-interval value extrema (as tracked by
        :class:`repro.core.histogram.ClassHistogram`).  When given, each
        interval's mass is spread over ``[vmin_i, vmax_i]`` instead of the
        whole interval — crucially, an interval holding a single heavy
        *atom* (``vmin_i == vmax_i``) becomes a CDF jump, so a child edge
        can land exactly on the atom value and the atom stays isolated in
        its own child interval (preserving atomic-interval detection down
        the tree).  An atom *sharing* its interval with other values gets
        no such jump: the interval's mass is spread uniformly over
        ``[vmin_i, vmax_i]``, so child edges can miss the atom entirely
        (the footnote-1 estimator slack, resolved exactly from buffered
        alive-interval records).

    Returns
    -------
    Strictly increasing inner edges (possibly fewer than ``q - 1`` when the
    distribution is too concentrated to support ``q`` distinct cuts).
    """
    edges = np.asarray(edges, dtype=np.float64)
    counts = np.asarray(interval_counts, dtype=np.float64)
    if len(counts) != len(edges) + 1:
        raise ValueError("interval_counts must have len(edges) + 1 entries")
    if q < 1:
        raise ValueError("q must be >= 1")
    total = counts.sum()
    if q == 1 or total <= 0:
        return np.empty(0, dtype=np.float64)
    probs = np.arange(1, q) / q

    if vmin is not None and vmax is not None:
        vmin = np.asarray(vmin, dtype=np.float64)
        vmax = np.asarray(vmax, dtype=np.float64)
        populated = counts > 0
        if not populated.any():
            return np.empty(0, dtype=np.float64)
        points: list[float] = []
        cdf: list[float] = []
        cum = 0.0
        for i in np.nonzero(populated)[0]:
            points.extend((float(vmin[i]), float(vmax[i])))
            cdf.extend((cum, cum + float(counts[i])))
            cum += float(counts[i])
        cdf_arr = np.asarray(cdf) / total
        new_edges = np.interp(probs, cdf_arr, np.asarray(points))
        hi = float(np.max(vmax[populated]))
        lo = float(np.min(vmin[populated]))
        new_edges = np.unique(new_edges)
        return new_edges[(new_edges >= lo) & (new_edges < hi)]

    if len(edges) == 0:
        return np.empty(0, dtype=np.float64)
    # Give the two unbounded outer intervals a finite extent comparable to
    # their neighbours so the piecewise-linear CDF has a support.
    widths = np.diff(edges)
    typical = float(np.median(widths)) if len(widths) else 1.0
    typical = typical if typical > 0 else 1.0
    support = np.concatenate(([edges[0] - typical], edges, [edges[-1] + typical]))
    cdf = np.concatenate(([0.0], np.cumsum(counts))) / total
    new_edges = np.interp(probs, cdf, support)
    new_edges = np.unique(new_edges)
    return new_edges[(new_edges > support[0]) & (new_edges < support[-1])]


class Discretizer:
    """Interval structure for one continuous attribute."""

    def __init__(self, edges: np.ndarray) -> None:
        edges = np.asarray(edges, dtype=np.float64)
        if edges.ndim != 1:
            raise ValueError("edges must be 1-D")
        if len(edges) > 1 and not np.all(np.diff(edges) > 0):
            raise ValueError("edges must be strictly increasing")
        self.edges = edges

    @classmethod
    def equal_depth(cls, values: np.ndarray, q: int) -> "Discretizer":
        """Build an equal-depth discretizer with (up to) ``q`` intervals."""
        return cls(equal_depth_edges(values, q))

    @classmethod
    def equal_width(cls, values: np.ndarray, q: int) -> "Discretizer":
        """Build an equal-width discretizer with ``q`` intervals."""
        return cls(equal_width_edges(values, q))

    @classmethod
    def from_sketch(cls, sketch, q: int) -> "Discretizer":
        """Interval structure from a one-pass mergeable quantile sketch.

        The streaming alternative to :meth:`equal_depth`: the edges are
        the sketch's equal-depth quantiles (every one an actual data
        value, so each boundary remains a realizable ``a <= edge``
        split), and the grid's deviation from true equal depth is
        bounded by the sketch's explicit rank error — see
        :meth:`repro.stream.sketch.QuantileSketch.rank_error_bound` and
        :func:`repro.core.estimation.sketch_split_slack` for how that ε
        feeds the estimator-bound chain.
        """
        return cls(sketch.edges(q))

    @property
    def n_intervals(self) -> int:
        """Number of intervals (``len(edges) + 1``)."""
        return len(self.edges) + 1

    def bin(self, values: np.ndarray) -> np.ndarray:
        """Vectorized interval lookup."""
        return bin_index(np.asarray(values), self.edges)

    def interval_bounds(self, i: int) -> tuple[float, float]:
        """Value-space ``(lower, upper]`` bounds of interval ``i``.

        The first interval's lower bound is ``-inf`` and the last interval's
        upper bound is ``+inf``.
        """
        if not 0 <= i < self.n_intervals:
            raise IndexError(f"interval {i} out of range")
        lo = -np.inf if i == 0 else float(self.edges[i - 1])
        hi = np.inf if i == self.n_intervals - 1 else float(self.edges[i])
        return lo, hi


class ReservoirSampler:
    """Bounded uniform sample of a stream, for per-node re-quantiling.

    CMP must know child-node interval edges before the scan that builds the
    child histograms, without buffering the child's records.  A classic
    reservoir sample collected while routing records at the parent level is
    memory-bounded and unbiased; its quantiles define the child's edges
    (DESIGN.md §3).
    """

    def __init__(self, capacity: int, rng: np.random.Generator) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._rng = rng
        self._buffer: np.ndarray = np.empty(capacity, dtype=np.float64)
        self._fill = 0
        self._seen = 0

    def extend(self, values: np.ndarray) -> None:
        """Offer a batch of values to the reservoir (vectorized)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if len(values) == 0:
            return
        # Fill the reservoir directly while it has room.
        if self._fill < self.capacity:
            take = min(self.capacity - self._fill, len(values))
            self._buffer[self._fill : self._fill + take] = values[:take]
            self._fill += take
            self._seen += take
            values = values[take:]
            if len(values) == 0:
                return
        # Streaming replacement: item k of the remainder is the
        # (seen + k + 1)-th value overall; it replaces a uniformly random
        # slot with probability capacity / (seen + k + 1).
        highs = self._seen + 1 + np.arange(len(values), dtype=np.int64)
        slots = self._rng.integers(0, highs)
        accept = slots < self.capacity
        # Later draws must win over earlier draws for the same slot, which
        # positional assignment already guarantees (last write wins).
        self._buffer[slots[accept]] = values[accept]
        self._seen += len(values)

    @property
    def n_seen(self) -> int:
        """How many values have been offered."""
        return self._seen

    def sample(self) -> np.ndarray:
        """Copy of the current reservoir contents."""
        return self._buffer[: self._fill].copy()

    def edges(self, q: int) -> np.ndarray:
        """Equal-depth edges estimated from the reservoir."""
        if self._fill == 0:
            return np.empty(0, dtype=np.float64)
        return equal_depth_edges(self._buffer[: self._fill], q)
