"""Synthetic workload generator of Agrawal, Imielinski & Swami [5].

The paper evaluates on "Function 2" and "Function 7" of the classic IBM
Quest classification benchmark, plus its own linearly-correlated
"Function f" (§2.3).  We reimplement the full generator — all ten
functions — from the published definitions, since several examples and
extension benches use the other functions as well.

Each record has nine attributes:

======== =========== ==========================================================
name     kind        distribution
======== =========== ==========================================================
salary   continuous  uniform [20 000, 150 000]
commission continuous 0 if salary >= 75 000 else uniform [10 000, 75 000]
age      continuous  uniform [20, 80]
elevel   categorical uniform {0 .. 4}
car      categorical uniform {1 .. 20}
zipcode  categorical uniform {z0 .. z8}
hvalue   continuous  uniform [0.5 k, 1.5 k] x 100 000, k = zipcode rank + 1
hyears   continuous  uniform [1, 30]
loan     continuous  uniform [0, 500 000]
======== =========== ==========================================================

Class labels are "Group A" / "Group B".  A perturbation factor ``p``
(default 5 %) optionally perturbs each continuous attribute by a uniform
offset of up to ``p`` times its range, as in the original generator, which
is what keeps the learning problems from being trivially separable.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import Schema, categorical, continuous

#: Column order of the generated attribute matrix.
ATTRIBUTE_NAMES = (
    "salary",
    "commission",
    "age",
    "elevel",
    "car",
    "zipcode",
    "hvalue",
    "hyears",
    "loan",
)

GROUP_A = 0
GROUP_B = 1

AGRAWAL_SCHEMA = Schema(
    attributes=(
        continuous("salary"),
        continuous("commission"),
        continuous("age"),
        categorical("elevel", tuple(f"level{i}" for i in range(5))),
        categorical("car", tuple(f"make{i}" for i in range(1, 21))),
        categorical("zipcode", tuple(f"zip{i}" for i in range(9))),
        continuous("hvalue"),
        continuous("hyears"),
        continuous("loan"),
    ),
    class_labels=("Group A", "Group B"),
)

_COL = {name: i for i, name in enumerate(ATTRIBUTE_NAMES)}

#: Value ranges used for perturbation of continuous attributes.
_RANGES = {
    "salary": (20_000.0, 150_000.0),
    "commission": (0.0, 75_000.0),
    "age": (20.0, 80.0),
    "hvalue": (50_000.0, 1_350_000.0),
    "hyears": (1.0, 30.0),
    "loan": (0.0, 500_000.0),
}


def _raw_attributes(n: int, rng: np.random.Generator) -> np.ndarray:
    """Draw the attribute matrix before any label assignment."""
    X = np.empty((n, len(ATTRIBUTE_NAMES)), dtype=np.float64)
    salary = rng.uniform(20_000, 150_000, n)
    commission = np.where(
        salary >= 75_000, 0.0, rng.uniform(10_000, 75_000, n)
    )
    zipcode = rng.integers(0, 9, n)
    k = zipcode + 1
    hvalue = rng.uniform(0.5, 1.5, n) * k * 100_000
    X[:, _COL["salary"]] = salary
    X[:, _COL["commission"]] = commission
    X[:, _COL["age"]] = rng.uniform(20, 80, n)
    X[:, _COL["elevel"]] = rng.integers(0, 5, n)
    X[:, _COL["car"]] = rng.integers(0, 20, n)
    X[:, _COL["zipcode"]] = zipcode
    X[:, _COL["hvalue"]] = hvalue
    X[:, _COL["hyears"]] = rng.uniform(1, 30, n)
    X[:, _COL["loan"]] = rng.uniform(0, 500_000, n)
    return X


def _perturb(X: np.ndarray, factor: float, rng: np.random.Generator) -> np.ndarray:
    """Perturb continuous columns by up to ``factor`` of their range."""
    if factor <= 0:
        return X
    X = X.copy()
    for name, (lo, hi) in _RANGES.items():
        j = _COL[name]
        span = (hi - lo) * factor
        X[:, j] = np.clip(X[:, j] + rng.uniform(-span, span, len(X)), lo, hi)
    return X


def _between(v: np.ndarray, lo: float, hi: float) -> np.ndarray:
    return (v >= lo) & (v <= hi)


def _disposable_base(X: np.ndarray) -> np.ndarray:
    salary = X[:, _COL["salary"]]
    commission = X[:, _COL["commission"]]
    return 2.0 * (salary + commission) / 3.0


def _f1(X: np.ndarray) -> np.ndarray:
    age = X[:, _COL["age"]]
    return (age < 40) | (age >= 60)


def _f2(X: np.ndarray) -> np.ndarray:
    age = X[:, _COL["age"]]
    salary = X[:, _COL["salary"]]
    return (
        ((age < 40) & _between(salary, 50_000, 100_000))
        | ((age >= 40) & (age < 60) & _between(salary, 75_000, 125_000))
        | ((age >= 60) & _between(salary, 25_000, 75_000))
    )


def _f3(X: np.ndarray) -> np.ndarray:
    age = X[:, _COL["age"]]
    elevel = X[:, _COL["elevel"]]
    return (
        ((age < 40) & (elevel <= 1))
        | ((age >= 40) & (age < 60) & (elevel >= 1) & (elevel <= 3))
        | ((age >= 60) & (elevel >= 2) & (elevel <= 4))
    )


def _f4(X: np.ndarray) -> np.ndarray:
    age = X[:, _COL["age"]]
    elevel = X[:, _COL["elevel"]]
    salary = X[:, _COL["salary"]]
    young = np.where(
        elevel <= 1,
        _between(salary, 25_000, 75_000),
        _between(salary, 50_000, 100_000),
    )
    middle = np.where(
        (elevel >= 1) & (elevel <= 3),
        _between(salary, 50_000, 100_000),
        _between(salary, 75_000, 125_000),
    )
    old = np.where(
        (elevel >= 2) & (elevel <= 4),
        _between(salary, 50_000, 100_000),
        _between(salary, 25_000, 75_000),
    )
    return ((age < 40) & young) | ((age >= 40) & (age < 60) & middle) | ((age >= 60) & old)


def _f5(X: np.ndarray) -> np.ndarray:
    age = X[:, _COL["age"]]
    salary = X[:, _COL["salary"]]
    loan = X[:, _COL["loan"]]
    young = np.where(
        _between(salary, 50_000, 100_000),
        _between(loan, 100_000, 300_000),
        _between(loan, 200_000, 400_000),
    )
    middle = np.where(
        _between(salary, 75_000, 125_000),
        _between(loan, 200_000, 400_000),
        _between(loan, 300_000, 500_000),
    )
    old = np.where(
        _between(salary, 25_000, 75_000),
        _between(loan, 300_000, 500_000),
        _between(loan, 100_000, 300_000),
    )
    return ((age < 40) & young) | ((age >= 40) & (age < 60) & middle) | ((age >= 60) & old)


def _f6(X: np.ndarray) -> np.ndarray:
    age = X[:, _COL["age"]]
    total = X[:, _COL["salary"]] + X[:, _COL["commission"]]
    return (
        ((age < 40) & _between(total, 50_000, 100_000))
        | ((age >= 40) & (age < 60) & _between(total, 75_000, 125_000))
        | ((age >= 60) & _between(total, 25_000, 75_000))
    )


def _f7(X: np.ndarray) -> np.ndarray:
    loan = X[:, _COL["loan"]]
    return (_disposable_base(X) - loan / 5.0 - 20_000) > 0


def _f8(X: np.ndarray) -> np.ndarray:
    elevel = X[:, _COL["elevel"]]
    return (_disposable_base(X) - 5_000 * elevel - 20_000) > 0


def _f9(X: np.ndarray) -> np.ndarray:
    elevel = X[:, _COL["elevel"]]
    loan = X[:, _COL["loan"]]
    return (_disposable_base(X) - 5_000 * elevel - loan / 5.0 - 10_000) > 0


def _f10(X: np.ndarray) -> np.ndarray:
    elevel = X[:, _COL["elevel"]]
    hvalue = X[:, _COL["hvalue"]]
    hyears = X[:, _COL["hyears"]]
    equity = 0.1 * hvalue * np.maximum(hyears - 20, 0)
    return (_disposable_base(X) - 5_000 * elevel + 0.2 * equity - 10_000) > 0


def function_f(X: np.ndarray) -> np.ndarray:
    """The paper's linearly-correlated predicate of §2.3.

    ``(age >= 40) and (salary + commission >= 100 000)`` — the workload
    where univariate trees replicate subtrees (Figure 9) while CMP finds a
    two-level tree with one linear split (Figure 13).
    """
    age = X[:, _COL["age"]]
    total = X[:, _COL["salary"]] + X[:, _COL["commission"]]
    return (age >= 40) & (total >= 100_000)


FUNCTIONS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "F1": _f1,
    "F2": _f2,
    "F3": _f3,
    "F4": _f4,
    "F5": _f5,
    "F6": _f6,
    "F7": _f7,
    "F8": _f8,
    "F9": _f9,
    "F10": _f10,
    "Ff": function_f,
}


def generate_agrawal(
    function: str,
    n_records: int,
    seed: int = 0,
    perturbation: float = 0.05,
) -> Dataset:
    """Generate ``n_records`` labelled records for one Agrawal function.

    Parameters
    ----------
    function:
        One of ``"F1"`` .. ``"F10"`` or ``"Ff"`` (the paper's Function f).
    n_records:
        Number of records to generate.
    seed:
        Seed for the deterministic generator.
    perturbation:
        Perturbation factor applied to continuous attributes *after* label
        assignment (the original generator's noise model); 0 disables it.
    """
    if function not in FUNCTIONS:
        raise ValueError(
            f"unknown function {function!r}; expected one of {sorted(FUNCTIONS)}"
        )
    if n_records <= 0:
        raise ValueError("n_records must be positive")
    rng = np.random.default_rng(seed)
    X = _raw_attributes(n_records, rng)
    in_group_a = FUNCTIONS[function](X)
    y = np.where(in_group_a, GROUP_A, GROUP_B).astype(np.int64)
    X = _perturb(X, perturbation, rng)
    return Dataset(X, y, AGRAWAL_SCHEMA)


def generate_function_f(
    n_records: int, seed: int = 0, perturbation: float = 0.0
) -> Dataset:
    """Shorthand for the paper's Function f workload (§2.3, Figure 18)."""
    return generate_agrawal("Ff", n_records, seed=seed, perturbation=perturbation)


def generate_drift(
    segments: tuple[tuple[str, int], ...],
    seed: int = 0,
    perturbation: float = 0.05,
) -> Dataset:
    """Time-varying Agrawal stream: the labelling concept flips per segment.

    ``segments`` is a sequence of ``(function, n_records)`` pairs; all
    covariates are drawn upfront from one generator stream, so for a
    fixed seed the attribute rows are *identical* regardless of how the
    stream is cut into segments — only the labelling concept drifts.
    Each segment's records are labelled by its own function.  Row order
    is time order — segment ``i`` occupies rows
    ``[sum(n_0..n_{i-1}), sum(n_0..n_i))`` — which is what the
    sliding-window refresh tests replay as a stream.
    """
    if not segments:
        raise ValueError("segments must be non-empty")
    for function, n_records in segments:
        if function not in FUNCTIONS:
            raise ValueError(
                f"unknown function {function!r}; expected one of "
                f"{sorted(FUNCTIONS)}"
            )
        if n_records <= 0:
            raise ValueError("every segment needs a positive record count")
    rng = np.random.default_rng(seed)
    total = sum(n for _, n in segments)
    X = _raw_attributes(total, rng)
    y = np.empty(total, dtype=np.int64)
    start = 0
    for function, n_records in segments:
        stop = start + n_records
        in_group_a = FUNCTIONS[function](X[start:stop])
        y[start:stop] = np.where(in_group_a, GROUP_A, GROUP_B)
        start = stop
    return Dataset(_perturb(X, perturbation, rng), y, AGRAWAL_SCHEMA)


def drift_boundaries(segments: tuple[tuple[str, int], ...]) -> list[int]:
    """Cumulative row offsets of each segment boundary (ends exclusive)."""
    bounds: list[int] = []
    total = 0
    for _, n_records in segments:
        total += n_records
        bounds.append(total)
    return bounds
