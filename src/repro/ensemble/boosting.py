"""Histogram gradient boosting over the shared-scan machinery.

:class:`HistGradientBoostingBuilder` fits softmax gradient-boosted
trees: every iteration trains ``n_classes`` regression trees on the
current class gradients, and — like the bagged forest — all trees of an
iteration grow level-synchronously with **one** accounted table scan
per level.  The scan accumulates per-``(tree, slot)`` binned gradient
histograms (first/second-order sums plus record counts) over the
equal-depth bins fixed by a single up-front quantiling pass, reusing
:func:`repro.data.discretize.equal_depth_edges` / ``bin_index``.

Determinism: float gradient sums are *not* associative, so worker
deltas are not merged by accumulation.  Each worker returns its
per-chunk partial histograms and the parent folds them in chunk order —
the exact fold a serial pass produces — making every built tree
bit-identical across worker counts and scan backends.  Prediction-side
parity is structural: the training loop updates the raw-score matrix in
the same member order the packed :class:`~repro.core.compiled.CompiledForest`
accumulates leaf rows, so serving scores equal training scores on the
training set itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import BuilderConfig
from repro.core import native_scan
from repro.core.checkpoint import SlotCounter
from repro.core.parallel import ScanEngine
from repro.core.splits import CategoricalSplit, NumericSplit
from repro.core.tree import DecisionTree, Node, TreeAccount
from repro.data.dataset import Dataset
from repro.data.discretize import bin_index, equal_depth_edges
from repro.ensemble.forest import Forest, ForestBuildResult
from repro.io.metrics import BuildStats, Stopwatch
from repro.io.pager import ScanChunk
from repro.io.retry import RetryingTable
from repro.obs.trace import NULL_TRACER


@dataclass
class _OpenNode:
    """A frontier node of one class-tree within the current iteration."""

    node: Node
    slot: int
    depth: int
    grad: float  #: first-order gradient sum over the node's records
    hess: float  #: second-order gradient sum
    count: int  #: record count


class _ChunkSums:
    """Scan accumulator: per-chunk partial gradient histograms.

    Workers only *append*; the owner folds the chunks in start order
    after the scan, so the reduction order never depends on scheduling.
    """

    def __init__(self) -> None:
        self.chunks: list[tuple[int, dict]] = []

    def merge_from(self, other: "_ChunkSums") -> None:
        self.chunks.extend(other.chunks)

    def folded(self) -> dict:
        """Per-key histograms folded left-to-right in chunk order."""
        out: dict = {}
        for _, partial in sorted(self.chunks, key=lambda item: item[0]):
            for key, attrs in partial.items():
                acc = out.setdefault(key, {})
                for j, (g, h, cnt) in attrs.items():
                    if j in acc:
                        ag, ah, ac = acc[j]
                        acc[j] = (ag + g, ah + h, ac + cnt)
                    else:
                        acc[j] = (g, h, cnt)
        return out


class HistGradientBoostingBuilder:
    """Softmax gradient boosting with shared per-level scans."""

    name = "hist-gbdt"

    def __init__(
        self,
        config: BuilderConfig | None = None,
        n_iterations: int = 10,
        learning_rate: float = 0.1,
        l2: float = 1.0,
        tracer=None,
    ) -> None:
        self.config = config if config is not None else BuilderConfig()
        if n_iterations < 1:
            raise ValueError("n_iterations must be positive")
        if not (learning_rate > 0.0):
            raise ValueError("learning_rate must be positive")
        if l2 < 0.0:
            raise ValueError("l2 must be non-negative")
        if self.config.checkpoint_path:
            raise ValueError(f"{self.name} does not support checkpointing")
        self.n_iterations = int(n_iterations)
        self.learning_rate = float(learning_rate)
        self.l2 = float(l2)
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def build(self, dataset: Dataset) -> ForestBuildResult:
        """Train the boosted forest (``n_iterations * n_classes`` members)."""
        if dataset.n_records == 0:
            raise ValueError("cannot build a forest on an empty dataset")
        stats = BuildStats()
        stats.scan_workers = self.config.scan_workers
        stats.tracer = self.tracer
        kernel_calls_before = native_scan.kernel_calls_total()
        engine = ScanEngine(
            self.config.scan_workers,
            tracer=self.tracer,
            backend=self.config.scan_backend,
        )
        stats.scan_backend = engine.effective_backend
        with Stopwatch(stats):
            with self.tracer.span(
                "build",
                builder=self.name,
                records=dataset.n_records,
                iterations=self.n_iterations,
            ) as build_span:
                try:
                    trees, values, base = self._boost(dataset, stats, engine)
                finally:
                    stats.parallel_batches += engine.batches_dispatched
                    engine.close()
        stats.nodes_created = sum(t.n_nodes for t in trees)
        stats.leaves = sum(t.n_leaves for t in trees)
        stats.levels_built = max(t.depth for t in trees)
        stats.ensemble_members = len(trees)
        stats.native_kernel_calls = (
            native_scan.kernel_calls_total() - kernel_calls_before
        )
        build_span.annotate(
            scans=stats.io.scans,
            pages_read=stats.io.pages_read,
            levels=stats.levels_built,
            nodes=stats.nodes_created,
            wall_seconds=round(stats.wall_seconds, 6),
        )
        forest = Forest(
            trees,
            mode="sum_softmax",
            values=values,
            base=base,
            counts=dataset.class_counts()[None, :].astype(np.float64),
        )
        return ForestBuildResult(forest=forest, stats=stats)

    # -- the boosting loop ----------------------------------------------------

    def _boost(self, dataset: Dataset, stats: BuildStats, engine: ScanEngine):
        cfg = self.config
        schema = dataset.schema
        n, K = dataset.n_records, dataset.n_classes
        lam, lr = self.l2, self.learning_rate
        cont = schema.continuous_indices()
        cats = schema.categorical_indices()
        table = RetryingTable(
            dataset.as_paged(stats.io, cfg.page_records),
            cfg.scan_retries,
            cfg.retry_backoff_ms,
            tracer=self.tracer,
        )

        # --- One quantiling/binning pass fixes the global bin grid. -------
        with stats.phase("scan"):
            pieces_X: list[np.ndarray] = []
            pieces_y: list[np.ndarray] = []
            for chunk in table.scan():
                pieces_X.append(chunk.X)
                pieces_y.append(chunk.y)
            Xfull = np.concatenate(pieces_X)
            y = np.concatenate(pieces_y)
            del pieces_X, pieces_y
        edges = {j: equal_depth_edges(Xfull[:, j], cfg.n_intervals) for j in cont}
        binned: dict[int, np.ndarray] = {
            j: bin_index(Xfull[:, j], edges[j]) for j in cont
        }
        for j in cats:
            binned[j] = Xfull[:, j].astype(np.int64)
        n_bins = {j: len(edges[j]) + 1 for j in cont}
        for j in cats:
            n_bins[j] = schema.attribute(j).cardinality
        del Xfull
        stats.memory.allocate(
            "boost/binned", sum(b.nbytes for b in binned.values())
        )

        # Accumulator state: raw scores start at the class log-priors.
        class_counts = np.bincount(y, minlength=K).astype(np.float64)
        base = np.log(np.maximum(class_counts, 1.0) / n)
        raw = np.tile(base, (n, 1))
        onehot = np.zeros((n, K), dtype=np.float64)
        onehot[np.arange(n), y] = 1.0
        stats.memory.allocate("boost/scores", raw.nbytes + onehot.nbytes)

        trees: list[DecisionTree] = []
        values: list[np.ndarray] = []
        attr_order = cont + cats

        for it in range(self.n_iterations):
            # Class probabilities and softmax gradients for this round.
            shifted = raw - raw.max(axis=1, keepdims=True)
            np.exp(shifted, out=shifted)
            prob = shifted / shifted.sum(axis=1, keepdims=True)
            grad = prob - onehot
            hess = prob * (1.0 - prob)

            nid = np.zeros((n, K), dtype=np.int64)
            counters = [SlotCounter() for _ in range(K)]
            accounts = [TreeAccount() for _ in range(K)]
            leaf_values: list[dict[int, float]] = [{} for _ in range(K)]
            slot_values: list[dict[int, float]] = [{} for _ in range(K)]
            roots: list[Node] = []
            frontier: dict[tuple[int, int], _OpenNode] = {}
            with self.tracer.span("boost-iteration", iteration=it, classes=K):
                for k in range(K):
                    root = accounts[k].new_node(0, np.zeros(K, dtype=np.float64))
                    roots.append(root)
                    opened = _OpenNode(
                        node=root,
                        slot=0,
                        depth=0,
                        grad=float(grad[:, k].sum()),
                        hess=float(hess[:, k].sum()),
                        count=n,
                    )
                    self._open_or_close(
                        opened, k, frontier, leaf_values[k], slot_values[k], lam, lr
                    )

                while frontier:
                    stats.shared_level_scans += 1
                    sums = self._scan_level(
                        table, engine, stats, frontier, nid, grad, hess,
                        binned, n_bins, attr_order,
                    )
                    folded = sums.folded()
                    next_frontier: dict[tuple[int, int], _OpenNode] = {}
                    with stats.phase("resolve"):
                        for key in sorted(frontier):
                            open_node = frontier[key]
                            self._split_or_leaf(
                                key,
                                open_node,
                                folded.get(key, {}),
                                attr_order,
                                cont,
                                edges,
                                nid,
                                binned,
                                counters[key[0]],
                                accounts[key[0]],
                                next_frontier,
                                leaf_values[key[0]],
                                slot_values[key[0]],
                                lam,
                                lr,
                                K,
                            )
                    # Record→leaf routing is an in-memory nid rewrite,
                    # charged like the CMP nid swap.
                    stats.io.count_aux_read(n * K)
                    stats.io.count_aux_write(n * K)
                    frontier = next_frontier

                # Fold this round's trees into the raw scores — column
                # ``k`` gets tree ``k``'s leaf value per record, in the
                # same member order serving accumulates.
                for k in range(K):
                    tree = DecisionTree(roots[k], schema)
                    trees.append(tree)
                    values.append(self._leaf_value_rows(tree, leaf_values[k], k, K))
                    lookup = np.zeros(counters[k].next, dtype=np.float64)
                    for slot, value in slot_values[k].items():
                        lookup[slot] = value
                    raw[:, k] += lookup[nid[:, k]]

        stats.memory.release("boost/scores")
        stats.memory.release("boost/binned")
        return trees, values, base

    def _open_or_close(
        self,
        opened: _OpenNode,
        k: int,
        frontier: dict[tuple[int, int], _OpenNode],
        leaf_values: dict[int, float],
        slot_values: dict[int, float],
        lam: float,
        lr: float,
    ) -> None:
        """Queue a node for splitting, or seal it as a leaf immediately.

        Leaf values are recorded twice: by ``node_id`` (feeds the packed
        value table in pre-order leaf order) and by ``slot`` (feeds the
        in-memory raw-score update through the ``nid`` map).
        """
        cfg = self.config
        if opened.depth >= cfg.max_depth or opened.count < cfg.min_records:
            value = -lr * opened.grad / (opened.hess + lam)
            leaf_values[opened.node.node_id] = value
            slot_values[opened.slot] = value
        else:
            frontier[(k, opened.slot)] = opened

    def _scan_level(
        self,
        table,
        engine: ScanEngine,
        stats: BuildStats,
        frontier: dict[tuple[int, int], _OpenNode],
        nid: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        binned: dict[int, np.ndarray],
        n_bins: dict[int, int],
        attr_order: list[int],
    ) -> _ChunkSums:
        """One accounted pass accumulating every open node's histograms."""
        keys = sorted(frontier)

        def route(chunk: ScanChunk, target: _ChunkSums) -> None:
            lo, hi = chunk.start, chunk.stop
            partial: dict = {}
            for k, slot in keys:
                mask = nid[lo:hi, k] == slot
                if not mask.any():
                    continue
                gk = grad[lo:hi, k][mask]
                hk = hess[lo:hi, k][mask]
                attrs = {}
                for j in attr_order:
                    b = binned[j][lo:hi][mask]
                    nb = n_bins[j]
                    attrs[j] = (
                        np.bincount(b, weights=gk, minlength=nb),
                        np.bincount(b, weights=hk, minlength=nb),
                        np.bincount(b, minlength=nb),
                    )
                partial[(k, slot)] = attrs
            target.chunks.append((lo, partial))

        sums = _ChunkSums()
        hist_bytes = 3 * 8 * sum(n_bins[j] for j in attr_order) * len(keys)
        with stats.phase("scan"):
            engine.scan(
                table,
                route=route,
                live=sums,
                make_delta=_ChunkSums,
                merge_delta=sums.merge_from,
                memory=stats.memory,
                delta_nbytes=hist_bytes,
            )
        return sums

    def _split_or_leaf(
        self,
        key: tuple[int, int],
        open_node: _OpenNode,
        attrs: dict,
        attr_order: list[int],
        cont: list[int],
        edges: dict[int, np.ndarray],
        nid: np.ndarray,
        binned: dict[int, np.ndarray],
        counter: SlotCounter,
        account: TreeAccount,
        next_frontier: dict[tuple[int, int], _OpenNode],
        leaf_values: dict[int, float],
        slot_values: dict[int, float],
        lam: float,
        lr: float,
        K: int,
    ) -> None:
        """Pick the node's best binned split or seal it as a leaf."""
        k, slot = key
        G, H, C = open_node.grad, open_node.hess, open_node.count
        parent_score = G * G / (H + lam)
        best = None  # (gain, j, boundary, GL, HL, CL, left_selector)
        for j in attr_order:
            if j not in attrs:
                continue
            g, h, cnt = attrs[j]
            if j in cont:
                gl = np.cumsum(g)[:-1]
                hl = np.cumsum(h)[:-1]
                cl = np.cumsum(cnt)[:-1]
                order = None
            else:
                # Order categories by gradient ratio (the optimal 1-D
                # ordering for second-order gain), scan prefix subsets.
                with np.errstate(divide="ignore", invalid="ignore"):
                    ratio = np.where(cnt > 0, g / (h + lam), np.inf)
                order = np.argsort(ratio, kind="stable")
                gl = np.cumsum(g[order])[:-1]
                hl = np.cumsum(h[order])[:-1]
                cl = np.cumsum(cnt[order])[:-1]
            if len(gl) == 0:
                continue
            valid = (cl > 0) & (cl < C)
            if not valid.any():
                continue
            gr, hr = G - gl, H - hl
            gain = gl * gl / (hl + lam) + gr * gr / (hr + lam) - parent_score
            gain = np.where(valid, gain, -np.inf)
            b = int(np.argmax(gain))
            if best is None or gain[b] > best[0]:
                best = (float(gain[b]), j, b, float(gl[b]), float(hl[b]), int(cl[b]), order)

        if best is None or best[0] <= 0.0:
            value = -lr * G / (H + lam)
            leaf_values[open_node.node.node_id] = value
            slot_values[slot] = value
            return

        gain, j, b, GL, HL, CL, order = best
        node = open_node.node
        mask = nid[:, k] == slot
        if order is None:
            node.split = NumericSplit(
                j, float(edges[j][b]), n_candidates=max(1, len(edges[j]))
            )
            goes_left = binned[j][mask] <= b
        else:
            left_mask = np.zeros(len(order), dtype=bool)
            left_mask[order[: b + 1]] = True
            node.split = CategoricalSplit(j, tuple(bool(v) for v in left_mask))
            goes_left = left_mask[binned[j][mask]]
        lslot, rslot = counter(), counter()
        rows = np.flatnonzero(mask)
        nid[rows[goes_left], k] = lslot
        nid[rows[~goes_left], k] = rslot

        left = account.new_node(node.depth + 1, np.zeros(K, dtype=np.float64))
        right = account.new_node(node.depth + 1, np.zeros(K, dtype=np.float64))
        node.left, node.right = left, right
        for child, child_slot, cg, ch, cc in (
            (left, lslot, GL, HL, CL),
            (right, rslot, G - GL, H - HL, C - CL),
        ):
            self._open_or_close(
                _OpenNode(
                    node=child,
                    slot=child_slot,
                    depth=child.depth,
                    grad=cg,
                    hess=ch,
                    count=cc,
                ),
                k,
                next_frontier,
                leaf_values,
                slot_values,
                lam,
                lr,
            )

    @staticmethod
    def _leaf_value_rows(
        tree: DecisionTree, leaf_values: dict[int, float], k: int, K: int
    ) -> np.ndarray:
        """Per-leaf value rows in compile (pre-order) leaf order.

        Each row is one-hot at column ``k``: a class-``k`` tree only
        moves class ``k``'s raw score.
        """
        leaves = [node for node in tree.iter_nodes() if node.is_leaf]
        rows = np.zeros((len(leaves), K), dtype=np.float64)
        for row, node in enumerate(leaves):
            rows[row, k] = leaf_values[node.node_id]
        return rows


__all__ = ["HistGradientBoostingBuilder"]
