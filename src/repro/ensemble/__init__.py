"""Ensembles of CMP trees trained with shared level scans."""

from repro.ensemble.bagging import BaggedForestBuilder
from repro.ensemble.boosting import HistGradientBoostingBuilder
from repro.ensemble.bootstrap import bootstrap_indices, bootstrap_weights, member_seed
from repro.ensemble.forest import Forest, ForestBuildResult

__all__ = [
    "BaggedForestBuilder",
    "Forest",
    "ForestBuildResult",
    "HistGradientBoostingBuilder",
    "bootstrap_indices",
    "bootstrap_weights",
    "member_seed",
]
