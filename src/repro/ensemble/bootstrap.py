"""Deterministic per-member bootstrap derivation.

Every ensemble member owns two independent random streams derived from
the forest seed and the member index through ``np.random.SeedSequence``:
one for the member's builder (reservoir sampling inside CMP-S), one for
its bootstrap draw.  Keeping the two separate means a member trained
inside the shared-scan forest loop and the same member trained alone via
``CMPSBuilder(config.with_(seed=member_seed(seed, t)))`` consume
identical random streams — the bit-identity contract of
:class:`repro.ensemble.bagging.BaggedForestBuilder` rests on it.
"""

from __future__ import annotations

import numpy as np

#: Stream tags mixed into the SeedSequence entropy so the builder stream
#: and the bootstrap stream never collide.
_BUILDER_STREAM = 0
_BOOTSTRAP_STREAM = 1


def member_seed(seed: int, t: int) -> int:
    """Builder seed for member ``t`` of a forest seeded with ``seed``."""
    ss = np.random.SeedSequence(entropy=[int(seed), int(t), _BUILDER_STREAM])
    return int(ss.generate_state(1)[0])


def bootstrap_indices(seed: int, t: int, n: int) -> np.ndarray:
    """Member ``t``'s bootstrap draw: ``n`` record ids sampled with replacement."""
    ss = np.random.SeedSequence(entropy=[int(seed), int(t), _BOOTSTRAP_STREAM])
    return np.random.default_rng(ss).integers(0, n, size=n)


def bootstrap_weights(seed: int, t: int, n: int) -> np.ndarray:
    """Member ``t``'s draw as per-record multiplicities (float64, length ``n``).

    ``weights[r]`` counts how often record ``r`` was drawn; roughly 36.8%
    of the entries are zero.  Integer-valued float64 so weighted histogram
    updates stay exact (see :meth:`repro.core.histogram.ClassHistogram.update`).
    """
    idx = bootstrap_indices(seed, t, n)
    return np.bincount(idx, minlength=n).astype(np.float64)


__all__ = ["member_seed", "bootstrap_indices", "bootstrap_weights"]
