"""Bagged CMP-S forests trained with shared level scans.

Training ``T`` bootstrap members independently costs ``T`` full table
scans per tree level.  :class:`BaggedForestBuilder` grows all members
level-synchronously instead: **one** scan per level routes each chunk
once and scatters per-member accumulator deltas keyed by
``(tree_id, slot)``, merged in submission (= chunk) order.  The trick
that makes this exact is representing member ``t``'s bootstrap draw as
per-record multiplicity *weights* over the original table rather than a
materialized resampled copy:

* histogram updates add each drawn record with its weight — exact for
  integer-valued float64 weights, hence bit-identical to the repeated
  unit adds a materialized bootstrap sample would produce;
* alive-interval buffers append ``np.repeat``-expanded rows, so the
  concatenated buffer contents equal the solo build's byte for byte
  (both walk records in ascending original order);
* the per-member ``nid`` column marks never-drawn records ``-1`` — a
  slot number is never negative, so those records fall through every
  routing mask without an explicit weight filter.

Each member also consumes exactly the random stream its solo twin
would: the scan-1 reservoirs are fed the member's *expanded* value
stream re-chunked to the table's chunk size (same ``extend`` batch
lengths, same shared per-member generator, same attribute
interleaving).  The resulting guarantee — asserted by the differential
harness — is that member ``t`` is **bit-identical** to::

    cfg_t = config.with_(seed=member_seed(config.seed, t))
    CMPSBuilder(cfg_t).build(dataset.take(np.sort(bootstrap_indices(config.seed, t, n))))

while the shared loop reads the table once per level instead of ``T``
times.  All split decisions and resolutions reuse the
:class:`~repro.core.cmp_s.CMPSBuilder` methods verbatim through
per-member helper instances, so the two code paths cannot drift apart.
"""

from __future__ import annotations

import numpy as np

from repro.config import BuilderConfig
from repro.core import native_scan
from repro.core.builder import (
    PartState,
    RecordBuffer,
    classify_zones,
    make_part_hists,
)
from repro.core.checkpoint import SlotCounter
from repro.core.cmp_s import CMPSBuilder, PendingSplit, _hists_nbytes
from repro.core.parallel import ScanEngine
from repro.core.tree import DecisionTree, TreeAccount
from repro.data.dataset import Dataset
from repro.data.discretize import ReservoirSampler, equal_depth_edges
from repro.ensemble.bootstrap import bootstrap_weights, member_seed
from repro.ensemble.forest import Forest, ForestBuildResult
from repro.io.metrics import BuildStats, Stopwatch
from repro.io.pager import ScanChunk
from repro.io.retry import RetryingTable
from repro.obs.trace import NULL_TRACER


class _PrefixedLedger:
    """Namespaces one member's ledger keys inside the shared tracker.

    ``CMPSBuilder._decide`` / ``_resolve`` allocate keys like
    ``parts/{node_id}`` — node ids restart at zero for every member, so
    without a prefix the members would silently replace each other's
    allocations.
    """

    def __init__(self, inner, prefix: str) -> None:
        self._inner = inner
        self._prefix = prefix

    def allocate(self, name: str, nbytes: int) -> None:
        self._inner.allocate(self._prefix + name, nbytes)

    def release(self, name: str) -> None:
        self._inner.release(self._prefix + name)


class _MemberStats:
    """The slice of :class:`BuildStats` the reused CMP-S helpers touch.

    A full ``BuildStats`` per member would double-count wall clock and
    I/O; the helpers only need a memory ledger and the exact-resolution
    counter, so that is all this facade carries.  The counter is folded
    into the shared stats by the caller.
    """

    def __init__(self, shared: BuildStats, t: int) -> None:
        self.memory = _PrefixedLedger(shared.memory, f"m{t}/")
        self.splits_resolved_exactly = 0


class BaggedForestBuilder:
    """Bootstrap-aggregated CMP-S forest with shared level scans."""

    name = "bagged-CMP-S"

    def __init__(
        self,
        config: BuilderConfig | None = None,
        n_trees: int = 10,
        tracer=None,
    ) -> None:
        self.config = config if config is not None else BuilderConfig()
        if n_trees < 1:
            raise ValueError("n_trees must be positive")
        if self.config.checkpoint_path:
            raise ValueError(f"{self.name} does not support checkpointing")
        if self.config.criterion != "gini":
            raise ValueError(f"{self.name} supports only the gini criterion")
        self.n_trees = int(n_trees)
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def build(self, dataset: Dataset) -> ForestBuildResult:
        """Train the forest; one table scan per shared tree level."""
        if dataset.n_records == 0:
            raise ValueError("cannot build a forest on an empty dataset")
        stats = BuildStats()
        stats.scan_workers = self.config.scan_workers
        stats.tracer = self.tracer
        kernel_calls_before = native_scan.kernel_calls_total()
        engine = ScanEngine(
            self.config.scan_workers,
            tracer=self.tracer,
            backend=self.config.scan_backend,
        )
        stats.scan_backend = engine.effective_backend
        with Stopwatch(stats):
            with self.tracer.span(
                "build",
                builder=self.name,
                records=dataset.n_records,
                members=self.n_trees,
            ) as build_span:
                try:
                    trees = self._build_members(dataset, stats, engine)
                finally:
                    stats.parallel_batches += engine.batches_dispatched
                    engine.close()
                if self.config.prune == "mdl":
                    from repro.pruning.mdl import mdl_prune

                    with stats.phase("prune"):
                        for tree in trees:
                            mdl_prune(tree)
        stats.nodes_created = sum(t.n_nodes for t in trees)
        stats.leaves = sum(t.n_leaves for t in trees)
        stats.levels_built = max(t.depth for t in trees)
        stats.ensemble_members = self.n_trees
        stats.native_kernel_calls = (
            native_scan.kernel_calls_total() - kernel_calls_before
        )
        build_span.annotate(
            scans=stats.io.scans,
            pages_read=stats.io.pages_read,
            levels=stats.levels_built,
            nodes=stats.nodes_created,
            wall_seconds=round(stats.wall_seconds, 6),
        )
        forest = Forest(trees, mode="average")
        return ForestBuildResult(forest=forest, stats=stats)

    # -- the shared level-synchronous loop ------------------------------------

    def _build_members(
        self, dataset: Dataset, stats: BuildStats, engine: ScanEngine
    ) -> list[DecisionTree]:
        cfg = self.config
        schema = dataset.schema
        n, c = dataset.n_records, dataset.n_classes
        T = self.n_trees
        cont = schema.continuous_indices()
        table = RetryingTable(
            dataset.as_paged(stats.io, cfg.page_records),
            cfg.scan_retries,
            cfg.retry_backoff_ms,
            tracer=self.tracer,
        )

        # Per-member machinery: a helper CMPSBuilder carrying the member's
        # derived seed supplies every split decision/resolution, so those
        # computations are literally the solo build's code.
        helpers = [
            CMPSBuilder(cfg.with_(seed=member_seed(cfg.seed, t)), tracer=self.tracer)
            for t in range(T)
        ]
        weights = [bootstrap_weights(cfg.seed, t, n) for t in range(T)]
        mstats = [_MemberStats(stats, t) for t in range(T)]
        accounts = [TreeAccount() for _ in range(T)]
        slot_counters = [SlotCounter() for _ in range(T)]

        # --- Scan 1 (shared): quantiling pass. ----------------------------
        # Solo scan 1 is serial (reservoir sampling consumes records in
        # stream order); here one serial pass feeds every member.  Each
        # member's reservoirs must see its *bootstrap-expanded* value
        # stream in batches of the solo build's chunk size, interleaved
        # per attribute exactly like the solo loop, so the member's rng
        # consumption replays identically.
        chunk_cap = cfg.page_records * table.pages_per_chunk
        rngs = [np.random.default_rng(helpers[t].config.seed) for t in range(T)]
        reservoirs = [
            {j: ReservoirSampler(cfg.reservoir_capacity, rngs[t]) for j in cont}
            for t in range(T)
        ]
        totals = np.zeros((T, c), dtype=np.float64)
        pend: list[list[np.ndarray]] = [[] for _ in range(T)]
        pend_len = [0] * T

        def emit_pseudo_chunk(t: int, block: np.ndarray) -> None:
            for j in cont:
                reservoirs[t][j].extend(block[:, j])

        with stats.phase("scan"):
            for chunk in table.scan():
                for t in range(T):
                    w = weights[t][chunk.start : chunk.stop]
                    totals[t] += np.bincount(chunk.y, weights=w, minlength=c)
                    rep = np.repeat(
                        np.arange(chunk.stop - chunk.start), w.astype(np.int64)
                    )
                    if rep.size:
                        pend[t].append(chunk.X[rep])
                        pend_len[t] += rep.size
                    while pend_len[t] >= chunk_cap:
                        block = (
                            np.concatenate(pend[t])
                            if len(pend[t]) > 1
                            else pend[t][0]
                        )
                        emit_pseudo_chunk(t, block[:chunk_cap])
                        rest = block[chunk_cap:]
                        pend[t] = [rest] if len(rest) else []
                        pend_len[t] = len(rest)
            for t in range(T):
                if pend_len[t]:
                    block = (
                        np.concatenate(pend[t]) if len(pend[t]) > 1 else pend[t][0]
                    )
                    emit_pseudo_chunk(t, block)
        del pend

        root_edges = [
            {
                j: equal_depth_edges(reservoirs[t][j].sample(), cfg.n_intervals)
                for j in cont
            }
            for t in range(T)
        ]
        del reservoirs
        roots = [accounts[t].new_node(0, totals[t].copy()) for t in range(T)]

        # Member t's record→slot map lives in column t; never-drawn
        # records stay -1 for the whole build.
        nid = np.full((n, T), -1, dtype=np.int64)
        for t in range(T):
            nid[weights[t] > 0, t] = 0

        # --- Scan 2 (shared): root histograms. ----------------------------
        root_parts = [
            PartState(0, c, make_part_hists(schema, root_edges[t])) for t in range(T)
        ]
        for t in range(T):
            mstats[t].memory.allocate("hist/root", root_parts[t].nbytes())

        def route_root(chunk: ScanChunk, parts: list[PartState]) -> None:
            for t, part in enumerate(parts):
                w = weights[t][chunk.start : chunk.stop]
                drawn = w > 0
                if drawn.any():
                    part.update(chunk.X[drawn], chunk.y[drawn], w[drawn])

        with stats.phase("scan"):
            engine.scan(
                table,
                route=route_root,
                live=root_parts,
                make_delta=lambda: [p.clone_empty() for p in root_parts],
                merge_delta=lambda delta: [
                    p.merge_from(d) for p, d in zip(root_parts, delta)
                ],
                memory=stats.memory,
                delta_nbytes=sum(p.nbytes() for p in root_parts),
            )
        CMPSBuilder._charge_nid(stats, n * T)

        pendings: list[dict[int, PendingSplit]] = [{} for _ in range(T)]
        with stats.phase("resolve"):
            for t in range(T):
                first = helpers[t]._decide(
                    roots[t], 0, root_parts[t].hists, slot_counters[t], schema, mstats[t]
                )
                mstats[t].memory.release("hist/root")
                if first is not None:
                    pendings[t][0] = first
        del root_parts

        # --- One shared scan per level. ------------------------------------
        level = 0
        while any(pendings):
            live = {t: pendings[t] for t in range(T) if pendings[t]}
            stats.shared_level_scans += 1
            with stats.tracer.span(
                "level",
                level=level + 1,
                members=len(live),
                pendings=sum(len(d) for d in live.values()),
            ):
                with stats.phase("scan"):
                    engine.scan(
                        table,
                        route=lambda chunk, tgt: self._route_members(
                            chunk, nid, weights, tgt
                        ),
                        live=live,
                        make_delta=lambda: {
                            t: {slot: p.scan_delta() for slot, p in d.items()}
                            for t, d in live.items()
                        },
                        merge_delta=lambda delta: [
                            live[t][slot].merge_scan_delta(dp)
                            for t, d in delta.items()
                            for slot, dp in d.items()
                        ],
                        memory=stats.memory,
                        delta_nbytes=sum(
                            p.delta_nbytes() for d in live.values() for p in d.values()
                        ),
                        writeback=nid,
                    )
                CMPSBuilder._charge_nid(stats, n * len(live))
                overflowed = {
                    t: [
                        p
                        for p in d.values()
                        if p.is_estimated and p.buffer.overflowed
                    ]
                    for t, d in live.items()
                }
                overflowed = {t: ps for t, ps in overflowed.items() if ps}
                if overflowed:
                    with stats.phase("scan"):
                        self._refill_overflowed(
                            table, nid, weights, overflowed, stats, n, engine
                        )
                for t, d in live.items():
                    for p in d.values():
                        mstats[t].memory.allocate(
                            f"buf/{p.node.node_id}", p.buffer.nbytes()
                        )

                with stats.phase("resolve"):
                    for t in sorted(live):
                        nid_col = nid[:, t]
                        new_pendings: dict[int, PendingSplit] = {}
                        remap: dict[int, int] = {}
                        for p in live[t].values():
                            children = helpers[t]._resolve(
                                p,
                                nid_col,
                                remap,
                                slot_counters[t],
                                accounts[t],
                                schema,
                                mstats[t],
                            )
                            mstats[t].memory.release(f"parts/{p.node.node_id}")
                            mstats[t].memory.release(f"buf/{p.node.node_id}")
                            for child, slot, hists in children:
                                mstats[t].memory.allocate(
                                    f"hist/{child.node_id}", _hists_nbytes(hists)
                                )
                                q = helpers[t]._decide(
                                    child, slot, hists, slot_counters[t], schema, mstats[t]
                                )
                                mstats[t].memory.release(f"hist/{child.node_id}")
                                if q is not None:
                                    new_pendings[slot] = q
                        if remap:
                            self._apply_member_remap(nid_col, remap)
                        pendings[t] = new_pendings
                        if cfg.prune == "public":
                            pendings[t] = helpers[t]._public_pass(
                                roots[t], pendings[t]
                            )
                level += 1

        stats.splits_resolved_exactly += sum(
            ms.splits_resolved_exactly for ms in mstats
        )
        return [DecisionTree(root, schema) for root in roots]

    # -- scan-time routing ----------------------------------------------------

    @staticmethod
    def _route_members(
        chunk: ScanChunk,
        nid: np.ndarray,
        weights: list[np.ndarray],
        tgt: dict[int, dict[int, PendingSplit]],
    ) -> None:
        """Route one chunk through every live member's pending splits.

        The per-member body mirrors ``CMPSBuilder._route_chunk`` with
        weighted part updates and ``np.repeat``-expanded buffer appends;
        see the module docstring for why both are exact.
        """
        for t, pendings in tgt.items():
            nid_col = nid[:, t]
            slots = nid_col[chunk.start : chunk.stop]
            w_col = weights[t][chunk.start : chunk.stop]
            for slot, p in pendings.items():
                mask = slots == slot
                if not mask.any():
                    continue
                X = chunk.X[mask]
                y = chunk.y[mask]
                rids = chunk.rids[mask]
                wm = w_col[mask]
                if p.exact_split is not None:
                    left = p.exact_split.goes_left(X)
                    p.parts[0].update(X[left], y[left], wm[left])
                    p.parts[1].update(X[~left], y[~left], wm[~left])
                    nid_col[rids[left]] = p.parts[0].slot
                    nid_col[rids[~left]] = p.parts[1].slot
                    continue
                zones = classify_zones(X[:, p.attr], p.zone_bounds)
                alive = (zones & 1) == 1
                if alive.any():
                    reps = wm[alive].astype(np.int64)
                    p.buffer.append(
                        np.repeat(X[alive], reps, axis=0),
                        np.repeat(y[alive], reps),
                        np.repeat(rids[alive], reps),
                    )
                for r, part in enumerate(p.parts):
                    m = zones == 2 * r
                    if m.any():
                        part.update(X[m], y[m], wm[m])
                        nid_col[rids[m]] = part.slot

    def _refill_overflowed(
        self,
        table,
        nid: np.ndarray,
        weights: list[np.ndarray],
        overflowed: dict[int, list[PendingSplit]],
        stats: BuildStats,
        n: int,
        engine: ScanEngine,
    ) -> None:
        """Re-collect dropped alive-interval buffers with one extra scan.

        Same degradation path as ``CMPSBuilder._refill_overflowed`` —
        alive records keep their parent slot, so one shared pass refills
        every overflowed member buffer in the exact append order of the
        un-budgeted path (expanded rows, ascending record order).
        """
        stats.buffer_overflow_rescans += 1
        by_key: dict[tuple[int, int], PendingSplit] = {}
        for t, ps in overflowed.items():
            for p in ps:
                p.buffer = RecordBuffer()  # unbounded, as in the solo path
                by_key[(t, p.parent_slot)] = p

        def route(chunk: ScanChunk, buffers: dict[tuple[int, int], RecordBuffer]) -> None:
            for (t, slot), buf in buffers.items():
                mask = nid[chunk.start : chunk.stop, t] == slot
                if mask.any():
                    reps = weights[t][chunk.start : chunk.stop][mask].astype(np.int64)
                    buf.append(
                        np.repeat(chunk.X[mask], reps, axis=0),
                        np.repeat(chunk.y[mask], reps),
                        np.repeat(chunk.rids[mask], reps),
                    )

        engine.scan(
            table,
            route=route,
            live={key: p.buffer for key, p in by_key.items()},
            make_delta=lambda: {key: RecordBuffer() for key in by_key},
            merge_delta=lambda delta: [
                by_key[key].buffer.extend_from(buf) for key, buf in delta.items()
            ],
        )
        stats.io.count_aux_read(n * len(overflowed))

    @staticmethod
    def _apply_member_remap(nid_col: np.ndarray, remap: dict[int, int]) -> None:
        """Slot remap for one member column, preserving the ``-1`` sentinel.

        ``CMPSBuilder._apply_remap`` gathers ``lookup[nid]``, which would
        send ``-1`` to the table's last entry; shifting the lookup by one
        keeps never-drawn records parked at ``-1``.
        """
        upper = max(int(nid_col.max()), max(remap))
        lookup = np.arange(-1, upper + 1, dtype=np.int64)
        for src, dst in remap.items():
            lookup[src + 1] = dst
        nid_col[:] = lookup[nid_col + 1]


__all__ = ["BaggedForestBuilder"]
