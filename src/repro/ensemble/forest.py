"""The trained-forest model object returned by the ensemble builders.

A :class:`Forest` is to :class:`~repro.core.compiled.CompiledForest` what
:class:`~repro.core.tree.DecisionTree` is to ``CompiledTree``: the
object-level training artifact that lazily compiles itself into the
packed array form for serving.  It deliberately does **not** expose a
``fingerprint`` attribute — :meth:`repro.serve.engine.ModelRegistry.register`
probes for one before probing for a ``compiled()`` factory, and a forest
must take the factory path so the registry keys it under the packed
forest's content hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.compiled import CompiledForest, compile_forest
from repro.core.tree import DecisionTree
from repro.io.metrics import BuildStats


class Forest:
    """An ordered ensemble of member trees with one aggregation mode.

    ``values`` (optional) carries per-member leaf value tables for
    boosted forests; ``base`` the accumulator start (log priors for
    boosting).  Prediction methods delegate to the lazily-built
    :class:`CompiledForest`, so every forest prediction in the repository
    goes through the packed single-call path.
    """

    def __init__(
        self,
        members: "tuple[DecisionTree, ...] | list[DecisionTree]",
        mode: str = "average",
        values: "list[np.ndarray] | None" = None,
        base: np.ndarray | None = None,
        counts: np.ndarray | None = None,
    ) -> None:
        if not members:
            raise ValueError("a forest needs at least one member tree")
        self.members = tuple(members)
        self.mode = mode
        self.values = values
        self.base = base
        self.counts = counts
        self._compiled: CompiledForest | None = None

    @property
    def n_trees(self) -> int:
        """Member count."""
        return len(self.members)

    @property
    def schema(self):
        """The (shared) member schema."""
        return self.members[0].schema

    @property
    def n_classes(self) -> int:
        """Number of classes."""
        return self.schema.n_classes

    def compiled(self) -> CompiledForest:
        """The packed array form (built once, cached)."""
        if self._compiled is None:
            self._compiled = compile_forest(
                list(self.members),
                mode=self.mode,
                values=self.values,
                base=self.base,
                counts=self.counts,
            )
        return self._compiled

    def decision_values(self, X: np.ndarray) -> np.ndarray:
        """Raw aggregated scores, shape ``(n, n_classes)``."""
        return self.compiled().decision_values(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Aggregated class label per record."""
        return self.compiled().predict(X)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Aggregated per-class probabilities."""
        return self.compiled().predict_proba(X)

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Member-leaf ``node_id`` per record, shape ``(n, n_trees)``."""
        return self.compiled().apply(X)


@dataclass
class ForestBuildResult:
    """A trained forest plus the accounting of how it was built."""

    forest: Forest
    stats: BuildStats
    member_stats: list[BuildStats] = field(default_factory=list)

    @property
    def summary(self) -> dict[str, float]:
        """Flat stats dict (see :meth:`repro.io.metrics.BuildStats.summary`)."""
        return self.stats.summary()


__all__ = ["Forest", "ForestBuildResult"]
