"""Reproduction of Wang & Zaniolo, "CMP: A Fast Decision Tree Classifier
Using Multivariate Predictions" (ICDE 2000).

Public API highlights:

* :class:`repro.core.cmp_s.CMPSBuilder` — CMP-S (single-variable CMP).
* :class:`repro.core.cmp_b.CMPBBuilder` — CMP-B (bivariate histograms +
  split prediction, up to two tree levels per scan).
* :class:`repro.core.cmp_full.CMPBuilder` — full CMP (CMP-B + linear
  combination splits).
* :mod:`repro.baselines` — SPRINT, CLOUDS and RainForest reimplementations.
* :mod:`repro.data` — Agrawal synthetic functions, STATLOG stand-ins.
* :mod:`repro.eval.experiments` — drivers for every table and figure of
  the paper's evaluation.
"""

from repro.config import DEFAULT_CONFIG, BuilderConfig
from repro.core import (
    BuildResult,
    CMPBBuilder,
    CMPBuilder,
    CMPSBuilder,
    DecisionTree,
    Node,
    TreeBuilder,
)
from repro.data import Dataset, generate_agrawal, generate_function_f, generate_statlog

__version__ = "1.0.0"

__all__ = [
    "BuilderConfig",
    "DEFAULT_CONFIG",
    "BuildResult",
    "TreeBuilder",
    "CMPSBuilder",
    "CMPBBuilder",
    "CMPBuilder",
    "DecisionTree",
    "Node",
    "Dataset",
    "generate_agrawal",
    "generate_function_f",
    "generate_statlog",
    "__version__",
]
