"""RainForest RF-Hybrid (Gehrke, Ramakrishnan & Ganti, VLDB 1998).

RainForest observes that split selection only needs, per node, the
**AVC-group**: for every attribute, the counts of (attribute value, class)
pairs.  AVC-groups are usually far smaller than the node's data, so they
can be kept in main memory and exact splits computed from them in a single
scan per tree level.

RF-Hybrid works against a fixed-size AVC buffer (the paper's experiments
use 2.5 million entries, i.e. ``2.5M * sizeof(int) * c = 20 MB`` for two
classes).  When one scan cannot hold the AVC-groups of every frontier
node, the frontier is processed in batches that fit, one scan per batch
(the re-reads RF-Hybrid performs instead of materializing partitions).

This is the baseline the paper finds *slightly faster* than CMP — it does
exact splits with one scan per level and keeps everything in memory — but
at a memory cost an order of magnitude above CMP's (Figure 19).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.builder import TreeBuilder
from repro.core.impurity import boundary_impurities, get_criterion
from repro.core.histogram import CategoryHistogram
from repro.core.splits import CategoricalSplit, NumericSplit, Split
from repro.core.tree import DecisionTree, Node, TreeAccount
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.io.metrics import BuildStats
from repro.io.pager import ScanChunk

#: Bytes per AVC entry per class (the paper's ``sizeof(int)``).
AVC_ENTRY_BYTES = 4


@dataclass
class _AvcSet:
    """AVC-set of one continuous attribute: counts per (distinct value, class)."""

    values: np.ndarray  # sorted distinct values
    counts: np.ndarray  # (k, c)

    @property
    def entries(self) -> int:
        return len(self.values)


@dataclass
class _NodeWork:
    """A frontier node whose AVC-group is built in the current batch."""

    node: Node
    slot: int
    #: raw column/label gatherings, chunk by chunk
    gathered_X: list[np.ndarray] = field(default_factory=list)
    gathered_y: list[np.ndarray] = field(default_factory=list)


@dataclass
class _Router:
    parent_slot: int
    split: Split
    left_slot: int
    right_slot: int


class RainForestBuilder(TreeBuilder):
    """The RainForest RF-Hybrid classifier."""

    name = "RainForest"

    def _build(self, dataset: Dataset, stats: BuildStats) -> DecisionTree:
        cfg = self.config
        schema = dataset.schema
        n, c = dataset.n_records, dataset.n_classes
        table = self._open_table(dataset, stats)
        account = TreeAccount()

        # RF-Hybrid reserves its AVC buffer for the whole build (Figure 19:
        # a flat 20 MB line for the paper's configuration).
        buffer_bytes = cfg.avc_buffer_entries * AVC_ENTRY_BYTES * c
        stats.memory.allocate("rainforest/avc_buffer", buffer_bytes)

        nid = np.zeros(n, dtype=np.int64)
        next_slot = iter(range(1, 2**62)).__next__

        # Root class counts come from the first AVC scan itself.
        root = account.new_node(0, np.zeros(c, dtype=np.float64))
        frontier: list[_NodeWork] = [_NodeWork(root, 0)]
        routers: list[_Router] = []

        while frontier:
            new_frontier: list[_NodeWork] = []
            pending_routers = routers
            routers = []
            for batch in self._batches(frontier, c):
                batch_slots = {w.slot: w for w in batch}
                for chunk in table.scan():
                    self._gather_chunk(chunk, nid, pending_routers, batch_slots)
                self._charge_nid(stats, n)
                # Routers must only run once per level; afterwards nids are
                # final and later batches match on the child slots directly.
                pending_routers = []
                for work in batch:
                    kids = self._process_node(work, nid, next_slot, account, schema, stats, routers)
                    new_frontier.extend(kids)
            frontier = new_frontier

        stats.memory.release("rainforest/avc_buffer")
        return DecisionTree(root, schema)

    # -- batching against the AVC buffer ---------------------------------------

    def _batches(self, frontier: list[_NodeWork], c: int) -> list[list[_NodeWork]]:
        """Split the frontier into groups whose AVC-groups fit the buffer.

        AVC sizes are only known after the scan, so RF-Hybrid plans with an
        upper bound: a node's AVC-group can never exceed ``n_node`` entries
        per attribute (every value distinct).
        """
        cfg = self.config
        capacity = cfg.avc_buffer_entries
        batches: list[list[_NodeWork]] = []
        current: list[_NodeWork] = []
        used = 0
        for work in frontier:
            n_node = max(int(work.node.n_records), 1)
            bound = n_node * self._n_attrs_bound(work)
            if current and used + bound > capacity:
                batches.append(current)
                current, used = [], 0
            current.append(work)
            used += bound
        if current:
            batches.append(current)
        return batches

    @staticmethod
    def _n_attrs_bound(work: _NodeWork) -> int:
        # The schema is not reachable from the work item; a constant factor
        # suffices for the batching heuristic.
        return 8

    # -- scan body ---------------------------------------------------------------

    def _gather_chunk(
        self,
        chunk: ScanChunk,
        nid: np.ndarray,
        routers: list[_Router],
        batch_slots: dict[int, _NodeWork],
    ) -> None:
        slots = nid[chunk.start : chunk.stop]
        for router in routers:
            mask = slots == router.parent_slot
            if not mask.any():
                continue
            left = router.split.goes_left(chunk.X[mask])
            rids = chunk.rids[mask]
            nid[rids[left]] = router.left_slot
            nid[rids[~left]] = router.right_slot
        slots = nid[chunk.start : chunk.stop]
        for slot, work in batch_slots.items():
            mask = slots == slot
            if mask.any():
                work.gathered_X.append(np.array(chunk.X[mask], copy=True))
                work.gathered_y.append(np.array(chunk.y[mask], copy=True))

    # -- per-node split from the AVC-group -----------------------------------------

    def _process_node(
        self,
        work: _NodeWork,
        nid: np.ndarray,
        next_slot,
        account: TreeAccount,
        schema: Schema,
        stats: BuildStats,
        routers: list[_Router],
    ) -> list[_NodeWork]:
        cfg = self.config
        node = work.node
        if work.gathered_y:
            X = np.concatenate(work.gathered_X)
            y = np.concatenate(work.gathered_y)
        else:
            X = np.empty((0, schema.n_attributes))
            y = np.empty(0, dtype=np.int64)
        work.gathered_X.clear()
        work.gathered_y.clear()
        if node.depth == 0:
            node.class_counts = np.bincount(y, minlength=schema.n_classes).astype(
                np.float64
            )
        if (
            node.n_records < cfg.min_records
            or node.gini <= cfg.min_gini
            or node.depth >= cfg.max_depth
            or len(y) == 0
        ):
            return []

        criterion = get_criterion(cfg.criterion)
        best_gini = np.inf
        best_split: Split | None = None
        best_left: np.ndarray | None = None
        totals = node.class_counts
        for j, attr in enumerate(schema.attributes):
            if attr.is_continuous:
                avc = self._avc_set(X[:, j], y, schema.n_classes)
                if avc.entries < 2:
                    continue
                cum = np.cumsum(avc.counts, axis=0)[:-1]
                ginis = boundary_impurities(cum, totals, criterion)
                sizes = cum.sum(axis=1)
                valid = (sizes > 0) & (sizes < totals.sum())
                if not valid.any():
                    continue
                ginis = np.where(valid, ginis, np.inf)
                k = int(np.argmin(ginis))
                if ginis[k] < best_gini:
                    best_gini = float(ginis[k])
                    best_split = NumericSplit(
                        j, float(avc.values[k]), n_candidates=max(1, avc.entries - 1)
                    )
                    best_left = cum[k]
            else:
                hist = CategoryHistogram(attr.cardinality, schema.n_classes)
                hist.update(X[:, j], y)
                try:
                    mask, g = hist.best_subset_split(criterion)
                except ValueError:
                    continue
                if g < best_gini:
                    best_gini = float(g)
                    best_split = CategoricalSplit(j, tuple(bool(b) for b in mask))
                    best_left = hist.counts[np.asarray(mask, dtype=bool)].sum(axis=0)
        node_impurity = float(criterion(node.class_counts))
        if best_split is None or best_gini >= node_impurity - cfg.min_gain:
            return []

        assert best_left is not None
        right_counts = totals - best_left
        if best_left.sum() <= 0 or right_counts.sum() <= 0:
            return []
        node.split = best_split
        left = account.new_node(node.depth + 1, best_left)
        right = account.new_node(node.depth + 1, right_counts)
        node.left, node.right = left, right
        lslot, rslot = next_slot(), next_slot()
        routers.append(_Router(work.slot, best_split, lslot, rslot))
        kids = []
        for child, slot in ((left, lslot), (right, rslot)):
            if (
                child.n_records >= cfg.min_records
                and child.gini > cfg.min_gini
                and child.depth < cfg.max_depth
            ):
                kids.append(_NodeWork(child, slot))
        return kids

    @staticmethod
    def _avc_set(col: np.ndarray, y: np.ndarray, n_classes: int) -> _AvcSet:
        values, inverse = np.unique(col, return_inverse=True)
        counts = np.zeros((len(values), n_classes), dtype=np.float64)
        np.add.at(counts, (inverse, y), 1.0)
        return _AvcSet(values, counts)

    @staticmethod
    def _charge_nid(stats: BuildStats, n: int) -> None:
        stats.io.count_aux_read(n)
        stats.io.count_aux_write(n)
