"""C4.5-style windowing (§1.1 "Sampling and discretization") — extension.

The paper describes the technique it contrasts CMP against: "A small
sample is drawn from the dataset to build an initial tree.  This sample is
augmented with records that were misclassified in the initial tree.  This
process is repeated for a number of iterations."

This meta-builder wraps any exact in-memory builder (SPRINT by default):

1. one scan draws a uniform initial window;
2. a tree is built on the (memory-resident) window;
3. one scan classifies the full dataset; a sample of the misclassified
   records is added to the window;
4. repeat until the training error stops improving or the iteration cap
   is hit.

Cost accounting: the window lives in memory (charged to the memory
tracker), window builds are charged as auxiliary record I/O, and each
augmentation round costs one full dataset scan — which is how windowing
trades accuracy for I/O, the §1.1 trade-off CMP is designed to avoid.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.sprint import SprintBuilder
from repro.config import BuilderConfig
from repro.core.builder import TreeBuilder
from repro.core.tree import DecisionTree
from repro.data.dataset import Dataset
from repro.io.metrics import BuildStats


class WindowingBuilder(TreeBuilder):
    """Windowed sampling around a base (exact) builder."""

    name = "C4.5-window"

    def __init__(
        self,
        config: BuilderConfig | None = None,
        base_builder: type[TreeBuilder] = SprintBuilder,
        initial_fraction: float = 0.1,
        growth_fraction: float = 0.5,
        max_iterations: int = 4,
    ) -> None:
        super().__init__(config)
        if not 0.0 < initial_fraction <= 1.0:
            raise ValueError("initial_fraction must be in (0, 1]")
        if not 0.0 < growth_fraction <= 1.0:
            raise ValueError("growth_fraction must be in (0, 1]")
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        self.base_builder = base_builder
        self.initial_fraction = initial_fraction
        self.growth_fraction = growth_fraction
        self.max_iterations = max_iterations

    def _build(self, dataset: Dataset, stats: BuildStats) -> DecisionTree:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        n = dataset.n_records
        table = self._open_table(dataset, stats)

        # --- Scan 1: draw the initial window. ------------------------------
        window_size = max(cfg.min_records * 2, int(n * self.initial_fraction))
        keep = rng.random(n) < window_size / n
        X_parts, y_parts = [], []
        for chunk in table.scan():
            sel = keep[chunk.start : chunk.stop]
            X_parts.append(np.array(chunk.X[sel], copy=True))
            y_parts.append(np.array(chunk.y[sel], copy=True))
        window_X = np.concatenate(X_parts)
        window_y = np.concatenate(y_parts)

        best_tree: DecisionTree | None = None
        best_errors = n + 1
        for iteration in range(self.max_iterations):
            # Release the previous window's entry before re-allocating the
            # grown one: the ledger must hold exactly one live window at a
            # time, so current stays balanced and peak equals the largest
            # single window (release is idempotent on iteration 0).
            stats.memory.release("window/records")
            stats.memory.allocate(
                "window/records", window_X.nbytes + 8 * len(window_y)
            )
            window = Dataset(window_X, window_y, dataset.schema)
            sub = self.base_builder(cfg).build(window)
            # The window is memory-resident: charge its build as aux I/O.
            stats.io.count_aux_read(
                sub.stats.io.records_read
                + sub.stats.io.aux_records_read
            )
            tree = sub.tree

            # --- One scan: classify everything, collect misclassified. ----
            wrong_X, wrong_y = [], []
            errors = 0
            for chunk in table.scan():
                pred = tree.predict(chunk.X)
                bad = pred != chunk.y
                errors += int(bad.sum())
                if bad.any():
                    wrong_X.append(np.array(chunk.X[bad], copy=True))
                    wrong_y.append(np.array(chunk.y[bad], copy=True))

            if errors < best_errors:
                best_errors = errors
                best_tree = tree
            if errors == 0 or iteration == self.max_iterations - 1:
                break
            if not wrong_X:
                break
            # Augment the window with a sample of the misclassified records.
            add_X = np.concatenate(wrong_X)
            add_y = np.concatenate(wrong_y)
            cap = max(1, int(len(window_y) * self.growth_fraction))
            if len(add_y) > cap:
                pick = rng.choice(len(add_y), size=cap, replace=False)
                add_X, add_y = add_X[pick], add_y[pick]
            window_X = np.concatenate([window_X, add_X])
            window_y = np.concatenate([window_y, add_y])

        stats.memory.release("window/records")
        assert best_tree is not None
        return best_tree
