"""SLIQ (Mehta, Agrawal & Rissanen, EDBT 1996) — extension baseline.

SLIQ is SPRINT's predecessor and the other "exact approach" the paper
names (§1.1: "decision trees built by an approximate approach can carry a
significant loss of accuracy in comparison with trees built by an exact
approach like SLIQ and SPRINT").  It presorts each continuous attribute
once into a disk-resident attribute list of ``(value, rid)`` entries and
keeps a single **class list** — ``rid -> (class, current leaf)`` — pinned
in main memory.

Per tree level, every attribute list is scanned exactly once; each entry
is routed to its record's current leaf via the class list, so the exact
best split of *every* frontier leaf is found simultaneously.  Unlike
SPRINT, the attribute lists are never partitioned or rewritten — the class
list absorbs all bookkeeping — so SLIQ's per-level I/O is one read of the
lists (SPRINT pays a read *and* a rewrite).  The price is the in-memory
class list, which is what limits SLIQ's scalability and motivated SPRINT.

Cost accounting: one dataset scan plus ``n x p`` auxiliary writes for list
creation; one auxiliary read of every list per level; memory charged for
the class list (12 bytes per record: class byte padded + leaf id) plus
per-leaf histograms.
"""

from __future__ import annotations

import numpy as np

from repro.core.builder import TreeBuilder
from repro.core.impurity import best_threshold_sorted, get_criterion
from repro.core.histogram import CategoryHistogram
from repro.core.splits import CategoricalSplit, NumericSplit, Split
from repro.core.tree import DecisionTree, Node, TreeAccount
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.io.metrics import BuildStats

#: Bytes per class-list entry (class label + leaf pointer).
CLASS_LIST_ENTRY_BYTES = 12


class SliqBuilder(TreeBuilder):
    """The SLIQ exact classifier (extension; not in the paper's figures)."""

    name = "SLIQ"

    def _build(self, dataset: Dataset, stats: BuildStats) -> DecisionTree:
        cfg = self.config
        schema = dataset.schema
        n, c = dataset.n_records, dataset.n_classes
        p = schema.n_attributes
        table = self._open_table(dataset, stats)
        account = TreeAccount()

        # --- Presort pass: one scan + attribute-list creation. ------------
        X_parts, y_parts = [], []
        for chunk in table.scan():
            X_parts.append(np.array(chunk.X, copy=True))
            y_parts.append(np.array(chunk.y, copy=True))
        X = np.concatenate(X_parts)
        y = np.concatenate(y_parts)
        stats.io.count_aux_write(n * p)

        cont = set(schema.continuous_indices())
        # Attribute lists: (sorted values, rids) for continuous attributes;
        # categorical columns stay unsorted.
        lists: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for j in range(p):
            if j in cont:
                order = np.argsort(X[:, j], kind="stable")
                lists[j] = (X[order, j], order.astype(np.int64))
            else:
                lists[j] = (X[:, j], np.arange(n, dtype=np.int64))

        # The in-memory class list: rid -> current leaf node.
        stats.memory.allocate("sliq/class_list", CLASS_LIST_ENTRY_BYTES * n)
        leaf_of = np.zeros(n, dtype=np.int64)

        root = account.new_node(0, np.bincount(y, minlength=c).astype(np.float64))
        frontier: dict[int, Node] = {0: root}
        next_leaf = 1

        while frontier:
            stats.io.count_aux_read(n * len(lists))  # one pass over each list
            growable = {
                lid: node
                for lid, node in frontier.items()
                if self._worth_splitting(node)
            }
            if not growable:
                break
            splits = self._best_splits(growable, lists, leaf_of, y, schema)
            criterion = get_criterion(cfg.criterion)

            new_frontier: dict[int, Node] = {}
            for lid, node in growable.items():
                found = splits.get(lid)
                if found is None:
                    continue
                split, gini_value = found
                if gini_value >= float(criterion(node.class_counts)) - cfg.min_gain:
                    continue
                member = leaf_of == lid
                goes_left = np.zeros(n, dtype=bool)
                goes_left[member] = split.goes_left(X[member])
                left_counts = np.bincount(y[member & goes_left], minlength=c)
                right_counts = np.bincount(y[member & ~goes_left], minlength=c)
                if left_counts.sum() == 0 or right_counts.sum() == 0:
                    continue
                node.split = split
                left = account.new_node(node.depth + 1, left_counts.astype(float))
                right = account.new_node(node.depth + 1, right_counts.astype(float))
                node.left, node.right = left, right
                lid_l, lid_r = next_leaf, next_leaf + 1
                next_leaf += 2
                # Class-list update (in memory).
                leaf_of[member & goes_left] = lid_l
                leaf_of[member & ~goes_left] = lid_r
                new_frontier[lid_l] = left
                new_frontier[lid_r] = right
            frontier = new_frontier

        stats.memory.release("sliq/class_list")
        return DecisionTree(root, schema)

    def _worth_splitting(self, node: Node) -> bool:
        cfg = self.config
        return (
            node.n_records >= cfg.min_records
            and node.gini > cfg.min_gini
            and node.depth < cfg.max_depth
        )

    def _best_splits(
        self,
        growable: dict[int, Node],
        lists: dict[int, tuple[np.ndarray, np.ndarray]],
        leaf_of: np.ndarray,
        y: np.ndarray,
        schema: Schema,
    ) -> dict[int, tuple[Split, float]]:
        """One simultaneous pass over every attribute list (SLIQ's core)."""
        best: dict[int, tuple[Split, float]] = {}
        n_classes = schema.n_classes
        criterion = get_criterion(self.config.criterion)
        for j, (values, rids) in lists.items():
            entry_leaf = leaf_of[rids]
            entry_label = y[rids]
            if schema.attributes[j].is_continuous:
                for lid in growable:
                    sel = entry_leaf == lid
                    if not sel.any():
                        continue
                    try:
                        thr, g = best_threshold_sorted(
                            values[sel], entry_label[sel], n_classes, criterion
                        )
                    except ValueError:
                        continue
                    if lid not in best or g < best[lid][1]:
                        v = values[sel]  # sorted subset of a sorted list
                        n_cand = max(1, int(np.count_nonzero(v[:-1] < v[1:])))
                        best[lid] = (NumericSplit(j, thr, n_candidates=n_cand), g)
            else:
                for lid in growable:
                    sel = entry_leaf == lid
                    if not sel.any():
                        continue
                    hist = CategoryHistogram(
                        schema.attributes[j].cardinality, n_classes
                    )
                    hist.update(values[sel], entry_label[sel])
                    try:
                        mask, g = hist.best_subset_split(criterion)
                    except ValueError:
                        continue
                    if lid not in best or g < best[lid][1]:
                        best[lid] = (
                            CategoricalSplit(j, tuple(bool(b) for b in mask)),
                            g,
                        )
        return best
