"""SPRINT (Shafer, Agrawal & Mehta, VLDB 1996) — the exact baseline.

SPRINT presorts every continuous attribute once into a disk-resident
*attribute list* of ``(value, class, rid)`` entries.  At each node it scans
the node's portion of every attribute list, evaluating the gini index at
every distinct value — the exact best split.  Partitioning a node moves
each attribute-list entry to the winning child after probing a hash table
(rid -> side) built from the split attribute's list; sorted order is
preserved because entries move in presorted order.

Cost accounting (DESIGN.md §3):

* one scan of the training set (list creation) plus ``n x p`` auxiliary
  record writes for the initial sort;
* per level: one auxiliary read of every active list (split evaluation),
  then one read + one write of every active list (partitioning);
* memory: the rid hash table, proportional to the size of the node being
  partitioned — the paper's Figure 19 curve.

This heavy attribute-list traffic is exactly what CMP's histograms avoid,
and is why the paper reports CMP "nearly five times faster" than SPRINT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builder import TreeBuilder
from repro.core.impurity import best_threshold_sorted, get_criterion
from repro.core.histogram import CategoryHistogram
from repro.core.splits import CategoricalSplit, NumericSplit, Split
from repro.core.tree import DecisionTree, Node, TreeAccount
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.io.metrics import BuildStats


@dataclass
class _AttrList:
    """One node's slice of a (presorted) attribute list."""

    values: np.ndarray
    labels: np.ndarray
    rids: np.ndarray

    def __len__(self) -> int:
        return len(self.values)


class SprintBuilder(TreeBuilder):
    """The SPRINT exact classifier."""

    name = "SPRINT"

    def _build(self, dataset: Dataset, stats: BuildStats) -> DecisionTree:
        cfg = self.config
        schema = dataset.schema
        n, c = dataset.n_records, dataset.n_classes
        p = schema.n_attributes
        table = self._open_table(dataset, stats)
        account = TreeAccount()

        # --- Presort pass: one scan + attribute-list creation. ------------
        X_parts, y_parts = [], []
        for chunk in table.scan():
            X_parts.append(np.array(chunk.X, copy=True))
            y_parts.append(np.array(chunk.y, copy=True))
        X = np.concatenate(X_parts)
        y = np.concatenate(y_parts)
        del X_parts, y_parts
        stats.io.count_aux_write(n * p)  # writing the attribute lists

        cont = set(schema.continuous_indices())
        root_lists: dict[int, _AttrList] = {}
        rids = np.arange(n, dtype=np.int64)
        for j in range(p):
            if j in cont:
                order = np.argsort(X[:, j], kind="stable")
                root_lists[j] = _AttrList(X[order, j], y[order], rids[order])
            else:
                root_lists[j] = _AttrList(X[:, j].astype(np.intp), y, rids)

        totals = np.bincount(y, minlength=c).astype(np.float64)
        root = account.new_node(0, totals)

        # --- Breadth-first exact growth. -----------------------------------
        frontier: list[tuple[Node, dict[int, _AttrList]]] = [(root, root_lists)]
        while frontier:
            next_frontier: list[tuple[Node, dict[int, _AttrList]]] = []
            for node, lists in frontier:
                split = self._best_split(node, lists, schema, stats)
                if split is None:
                    continue
                children = self._partition(node, lists, split, account, schema, stats)
                next_frontier.extend(children)
            frontier = next_frontier

        return DecisionTree(root, schema)

    # -- split selection -------------------------------------------------------

    def _best_split(
        self,
        node: Node,
        lists: dict[int, _AttrList],
        schema: Schema,
        stats: BuildStats,
    ) -> Split | None:
        cfg = self.config
        if (
            node.n_records < cfg.min_records
            or node.gini <= cfg.min_gini
            or node.depth >= cfg.max_depth
        ):
            return None
        n_node = int(node.n_records)
        stats.io.count_aux_read(n_node * len(lists))  # read every list
        criterion = get_criterion(self.config.criterion)
        best_gini = np.inf
        best: Split | None = None
        for j, alist in lists.items():
            if schema.attributes[j].is_continuous:
                try:
                    thr, g = best_threshold_sorted(
                        alist.values, alist.labels, schema.n_classes, criterion
                    )
                except ValueError:
                    continue
                if g < best_gini:
                    # Candidate thresholds = boundaries between distinct
                    # values of the (sorted) attribute list — the MDL
                    # split-encoding value term.
                    v = alist.values
                    n_cand = max(1, int(np.count_nonzero(v[:-1] < v[1:])))
                    best_gini, best = g, NumericSplit(j, thr, n_candidates=n_cand)
            else:
                hist = CategoryHistogram(
                    schema.attributes[j].cardinality, schema.n_classes
                )
                hist.update(alist.values, alist.labels)
                try:
                    mask, g = hist.best_subset_split(criterion)
                except ValueError:
                    continue
                if g < best_gini:
                    best_gini, best = g, CategoricalSplit(j, tuple(bool(b) for b in mask))
        node_impurity = float(criterion(node.class_counts))
        if best is None or best_gini >= node_impurity - cfg.min_gain:
            return None
        return best

    # -- partitioning ------------------------------------------------------------

    def _partition(
        self,
        node: Node,
        lists: dict[int, _AttrList],
        split: Split,
        account: TreeAccount,
        schema: Schema,
        stats: BuildStats,
    ) -> list[tuple[Node, dict[int, _AttrList]]]:
        n_node = int(node.n_records)
        # Build the rid hash table from the split attribute's list.
        attr = split.attributes()[0]
        alist = lists[attr]
        if isinstance(split, NumericSplit):
            left_entry = alist.values <= split.threshold
        else:
            mask = np.asarray(split.left_mask, dtype=bool)  # type: ignore[union-attr]
            left_entry = mask[alist.values.astype(np.intp)]
        left_rids = alist.rids[left_entry]
        if len(left_rids) == 0 or len(left_rids) == n_node:
            return []  # degenerate split; keep as leaf
        hash_table = np.zeros(int(alist.rids.max()) + 1, dtype=bool)
        hash_table[left_rids] = True
        stats.memory.allocate("sprint/hash", 8 * n_node)

        # Probe and move every attribute list (read + write each entry).
        stats.io.count_aux_read(n_node * len(lists))
        stats.io.count_aux_write(n_node * len(lists))
        left_lists: dict[int, _AttrList] = {}
        right_lists: dict[int, _AttrList] = {}
        for j, jl in lists.items():
            goes_left = hash_table[jl.rids]
            left_lists[j] = _AttrList(jl.values[goes_left], jl.labels[goes_left], jl.rids[goes_left])
            right_lists[j] = _AttrList(jl.values[~goes_left], jl.labels[~goes_left], jl.rids[~goes_left])
        left_counts = np.bincount(
            left_lists[attr].labels, minlength=schema.n_classes
        ).astype(np.float64)
        right_counts = np.bincount(
            right_lists[attr].labels, minlength=schema.n_classes
        ).astype(np.float64)
        stats.memory.release("sprint/hash")

        node.split = split
        left = account.new_node(node.depth + 1, left_counts)
        right = account.new_node(node.depth + 1, right_counts)
        node.left, node.right = left, right
        return [(left, left_lists), (right, right_lists)]
