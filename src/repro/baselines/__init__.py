"""From-scratch reimplementations of the paper's comparison systems."""

from repro.baselines.clouds import CloudsBuilder
from repro.baselines.rainforest import RainForestBuilder
from repro.baselines.sliq import SliqBuilder
from repro.baselines.sprint import SprintBuilder

__all__ = ["CloudsBuilder", "RainForestBuilder", "SliqBuilder", "SprintBuilder"]
