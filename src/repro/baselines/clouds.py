"""CLOUDS (Alsabti, Ranka & Singh, KDD 1998) — the interval baseline.

CLOUDS discretizes each continuous attribute into equal-depth intervals and
evaluates the gini index only at interval boundaries.  Two modes, both from
the original paper and both implemented here:

* **SS** ("sampling the splitting points"): split at the best boundary —
  one scan per level, but the split point is approximate.
* **SSE** ("sampling the splitting points with estimation"): estimate a
  gini lower bound inside every interval (the hill climb of
  :mod:`repro.core.estimation`), keep the intervals that might beat the
  best boundary (*alive*), then make a **second full scan** to evaluate
  the gini at every distinct point inside the alive intervals and split
  exactly.

That second scan is precisely what CMP-S eliminates by buffering the alive
records during the *next* level's scan, so CLOUDS-SSE costs roughly two
scans per level against CMP-S's one — the "up to 50%" disk-access saving
claimed in §2.  Unlike CMP-S, CLOUDS never needs preliminary subnodes: the
exact split is known before any record is routed to a child, at the price
of the extra pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.builder import PartState, TreeBuilder, adaptive_intervals, make_part_hists
from repro.core.gini import gini_partition
from repro.core.histogram import CategoryHistogram, ClassHistogram
from repro.core.intervals import AttributeAnalysis, analyze_attribute
from repro.core.splits import CategoricalSplit, NumericSplit, Split
from repro.core.tree import DecisionTree, Node, TreeAccount
from repro.data.dataset import Dataset
from repro.data.discretize import ReservoirSampler, edges_from_histogram, equal_depth_edges
from repro.data.schema import Schema
from repro.io.metrics import BuildStats
from repro.io.pager import ScanChunk

Hists = dict[int, ClassHistogram | CategoryHistogram]

_EPS = 1e-12


@dataclass
class _GrowTask:
    """A node whose histograms are built during the next histogram scan."""

    node: Node
    slot: int
    part: PartState
    child_edges: dict[int, np.ndarray]


@dataclass
class _Router:
    """A resolved split routing records from a parent slot to its children."""

    parent_slot: int
    split: Split
    left_slot: int
    right_slot: int
    left_task: _GrowTask | None
    right_task: _GrowTask | None


@dataclass
class _AliveProbe:
    """One alive interval awaiting the exact pass."""

    attr: int
    lo: float
    hi: float
    cum_below: np.ndarray
    values: list[np.ndarray] = field(default_factory=list)
    labels: list[np.ndarray] = field(default_factory=list)


@dataclass
class _ExactPending:
    """A node whose exact split waits for the SSE second pass.

    ``fallback_*`` describe the best split known exactly at decision time
    (a boundary or categorical split); the probes must beat its gini.
    """

    node: Node
    slot: int
    totals: np.ndarray
    probes: list[_AliveProbe]
    fallback_split: Split | None
    fallback_gini: float
    fallback_left_counts: np.ndarray
    child_edges: dict[int, np.ndarray]


class CloudsBuilder(TreeBuilder):
    """The CLOUDS classifier (modes "ss" and "sse")."""

    name = "CLOUDS"

    def _build(self, dataset: Dataset, stats: BuildStats) -> DecisionTree:
        cfg = self.config
        if cfg.criterion != "gini":
            raise ValueError(f"{self.name} supports only the gini criterion")
        schema = dataset.schema
        n, c = dataset.n_records, dataset.n_classes
        table = self._open_table(dataset, stats)
        account = TreeAccount()
        rng = np.random.default_rng(cfg.seed)
        cont = schema.continuous_indices()

        # --- Quantiling pass: root interval grid (charged as in CMP). ------
        reservoirs = {j: ReservoirSampler(cfg.reservoir_capacity, rng) for j in cont}
        totals = np.zeros(c, dtype=np.float64)
        for chunk in table.scan():
            totals += np.bincount(chunk.y, minlength=c)
            for j in cont:
                reservoirs[j].extend(chunk.X[:, j])
        root_edges = {
            j: equal_depth_edges(reservoirs[j].sample(), cfg.n_intervals) for j in cont
        }
        del reservoirs

        nid = np.zeros(n, dtype=np.int64)
        next_slot = iter(range(1, 2**62)).__next__
        root = account.new_node(0, totals)
        root_task = _GrowTask(
            root, 0, PartState(0, c, make_part_hists(schema, root_edges)), root_edges
        )

        routers: list[_Router] = []
        tasks: list[_GrowTask] = [root_task]
        first_scan = True
        while tasks:
            # --- Histogram scan: route through routers, fill task hists. ---
            for t in tasks:
                stats.memory.allocate(f"hist/{t.node.node_id}", t.part.nbytes())
            for chunk in table.scan():
                self._histogram_chunk(chunk, nid, routers, root_task if first_scan else None)
            self._charge_nid(stats, n)
            routers = []
            first_scan = False

            # --- Decide splits; collect SSE pendings. -----------------------
            pendings: list[_ExactPending] = []
            new_tasks: list[_GrowTask] = []
            for t in tasks:
                outcome = self._decide(t, next_slot, account, schema)
                stats.memory.release(f"hist/{t.node.node_id}")
                if outcome is None:
                    continue
                if isinstance(outcome, _ExactPending):
                    pendings.append(outcome)
                else:
                    router, kids = outcome
                    routers.append(router)
                    new_tasks.extend(kids)

            # --- SSE exact pass over the alive intervals. -------------------
            if pendings:
                pending_by_slot = {p.slot: p for p in pendings}
                for chunk in table.scan():
                    self._probe_chunk(chunk, nid, pending_by_slot)
                self._charge_nid(stats, n)
                for p in pendings:
                    stats.memory.allocate(
                        f"probe/{p.node.node_id}",
                        sum(2 * v.nbytes for pr in p.probes for v in pr.values),
                    )
                    outcome = self._finish_pending(p, next_slot, account, schema, stats)
                    stats.memory.release(f"probe/{p.node.node_id}")
                    if outcome is not None:
                        router, kids = outcome
                        routers.append(router)
                        new_tasks.extend(kids)
            tasks = new_tasks

        return DecisionTree(root, schema)

    # -- scan bodies -------------------------------------------------------------

    def _histogram_chunk(
        self,
        chunk: ScanChunk,
        nid: np.ndarray,
        routers: list[_Router],
        root_task: _GrowTask | None,
    ) -> None:
        slots = nid[chunk.start : chunk.stop]
        if root_task is not None:
            root_task.part.update(chunk.X, chunk.y)
            return
        for router in routers:
            mask = slots == router.parent_slot
            if not mask.any():
                continue
            X = chunk.X[mask]
            y = chunk.y[mask]
            rids = chunk.rids[mask]
            left = router.split.goes_left(X)
            nid[rids[left]] = router.left_slot
            nid[rids[~left]] = router.right_slot
            if router.left_task is not None and left.any():
                router.left_task.part.update(X[left], y[left])
            if router.right_task is not None and (~left).any():
                router.right_task.part.update(X[~left], y[~left])

    def _probe_chunk(
        self,
        chunk: ScanChunk,
        nid: np.ndarray,
        pending_by_slot: dict[int, _ExactPending],
    ) -> None:
        slots = nid[chunk.start : chunk.stop]
        for slot, p in pending_by_slot.items():
            mask = slots == slot
            if not mask.any():
                continue
            X = chunk.X[mask]
            y = chunk.y[mask]
            for probe in p.probes:
                v = X[:, probe.attr]
                inside = (v > probe.lo) & (v <= probe.hi)
                if inside.any():
                    probe.values.append(np.array(v[inside], copy=True))
                    probe.labels.append(np.array(y[inside], copy=True))

    # -- decisions -----------------------------------------------------------------

    def _decide(
        self,
        task: _GrowTask,
        next_slot: Callable[[], int],
        account: TreeAccount,
        schema: Schema,
    ) -> "tuple[_Router, list[_GrowTask]] | _ExactPending | None":
        cfg = self.config
        node = task.node
        hists = task.part.hists
        if (
            node.n_records < cfg.min_records
            or node.gini <= cfg.min_gini
            or node.depth >= cfg.max_depth
        ):
            return None
        cont = schema.continuous_indices()
        analyses = [analyze_attribute(j, hists[j]) for j in cont]  # type: ignore[arg-type]

        # Exact candidates available right now: boundaries & subset splits.
        best_cat_gini = np.inf
        best_cat: tuple[int, np.ndarray] | None = None
        for j in schema.categorical_indices():
            hist = hists[j]
            assert isinstance(hist, CategoryHistogram)
            try:
                mask, g = hist.best_subset_split()
            except ValueError:
                continue
            if g < best_cat_gini:
                best_cat_gini, best_cat = g, (j, mask)

        boundary_best: AttributeAnalysis | None = None
        for a in analyses:
            if a.has_boundaries and (
                boundary_best is None or a.gini_min < boundary_best.gini_min
            ):
                boundary_best = a
        gini_min = boundary_best.gini_min if boundary_best is not None else np.inf

        fallback_split: Split | None = None
        fallback_gini = np.inf
        fallback_left = np.zeros(schema.n_classes, dtype=np.float64)
        if best_cat is not None and best_cat_gini < gini_min:
            j, mask = best_cat
            fallback_split = CategoricalSplit(j, tuple(bool(b) for b in mask))
            fallback_gini = best_cat_gini
            cat_hist = hists[j]
            assert isinstance(cat_hist, CategoryHistogram)
            fallback_left = cat_hist.counts[np.asarray(mask, dtype=bool)].sum(axis=0)
        elif boundary_best is not None:
            a = boundary_best
            hist = hists[a.attr]
            assert isinstance(hist, ClassHistogram)
            fallback_split = NumericSplit(
                a.attr,
                float(a.edges[a.best_boundary]),
                n_candidates=max(1, len(a.edges)),
            )
            fallback_gini = a.gini_min
            fallback_left = hist.cumulative()[a.best_boundary]

        q_child = adaptive_intervals(cfg.n_intervals, node.n_records)
        child_edges = {
            j: edges_from_histogram(
                hists[j].edges,  # type: ignore[union-attr]
                hists[j].counts.sum(axis=1),
                q_child,
                hists[j].vmin,  # type: ignore[union-attr]
                hists[j].vmax,  # type: ignore[union-attr]
            )
            for j in cont
        }

        if cfg.clouds_mode == "ss":
            if fallback_split is None or fallback_gini >= node.gini - cfg.min_gain:
                return None
            return self._make_children(
                node, task.slot, fallback_split, fallback_left, child_edges,
                next_slot, account, schema,
            )

        # SSE: alive intervals across all attributes vs the best exact split.
        probes: list[_AliveProbe] = []
        for a in analyses:
            hist = hists[a.attr]
            assert isinstance(hist, ClassHistogram)
            q = hist.n_intervals
            for i in np.nonzero(a.est < fallback_gini - _EPS)[0]:
                lo = -np.inf if i == 0 else float(hist.edges[i - 1])
                hi = np.inf if i == q - 1 else float(hist.edges[i])
                probes.append(_AliveProbe(a.attr, lo, hi, hist.cum_below(int(i))))

        best_possible = min(fallback_gini, min((a.est_min for a in analyses), default=np.inf))
        if best_possible >= node.gini - cfg.min_gain:
            return None
        if not probes:
            if fallback_split is None or fallback_gini >= node.gini - cfg.min_gain:
                return None
            return self._make_children(
                node, task.slot, fallback_split, fallback_left, child_edges,
                next_slot, account, schema,
            )
        return _ExactPending(
            node=node,
            slot=task.slot,
            totals=node.class_counts,
            probes=probes,
            fallback_split=fallback_split,
            fallback_gini=fallback_gini,
            fallback_left_counts=fallback_left,
            child_edges=child_edges,
        )

    def _finish_pending(
        self,
        p: _ExactPending,
        next_slot: Callable[[], int],
        account: TreeAccount,
        schema: Schema,
        stats: BuildStats,
    ) -> tuple[_Router, list[_GrowTask]] | None:
        cfg = self.config
        node = p.node
        totals = np.asarray(p.totals, dtype=np.float64)
        n = totals.sum()
        best_gini = p.fallback_gini
        best_split = p.fallback_split
        best_left = p.fallback_left_counts
        improved = False
        for probe in p.probes:
            if not probe.values:
                continue
            v = np.concatenate(probe.values)
            lab = np.concatenate(probe.labels)
            order = np.argsort(v, kind="stable")
            v, lab = v[order], lab[order]
            onehot = np.zeros((len(v), schema.n_classes), dtype=np.float64)
            onehot[np.arange(len(v)), lab] = 1.0
            cum = np.cumsum(onehot, axis=0) + probe.cum_below[None, :]
            distinct = np.nonzero(v[:-1] < v[1:])[0]
            if len(distinct) == 0:
                continue
            left = cum[distinct]
            nl = left.sum(axis=1)
            valid = (nl > 0) & (nl < n)
            if not valid.any():
                continue
            ginis = np.where(
                valid,
                np.asarray(gini_partition(left, totals[None, :] - left)),
                np.inf,
            )
            k = int(np.argmin(ginis))
            if ginis[k] < best_gini - _EPS:
                best_gini = float(ginis[k])
                best_split = NumericSplit(
                    probe.attr, float(v[distinct[k]]), n_candidates=len(distinct)
                )
                best_left = left[k]
                improved = True
        if best_split is None or not np.isfinite(best_gini):
            return None
        if best_gini >= node.gini - cfg.min_gain:
            return None
        if improved:
            stats.splits_resolved_exactly += 1
        return self._make_children(
            node, p.slot, best_split, best_left, p.child_edges, next_slot, account, schema
        )

    def _make_children(
        self,
        node: Node,
        slot: int,
        split: Split,
        left_counts: np.ndarray,
        child_edges: dict[int, np.ndarray],
        next_slot: Callable[[], int],
        account: TreeAccount,
        schema: Schema,
    ) -> tuple[_Router, list[_GrowTask]] | None:
        left_counts = np.asarray(left_counts, dtype=np.float64)
        right_counts = node.class_counts - left_counts
        if left_counts.sum() <= 0 or right_counts.sum() <= 0:
            return None
        node.split = split
        left = account.new_node(node.depth + 1, left_counts)
        right = account.new_node(node.depth + 1, right_counts)
        node.left, node.right = left, right
        lslot, rslot = next_slot(), next_slot()
        kids: list[_GrowTask] = []
        left_task = right_task = None
        if self._worth_growing(left):
            left_task = _GrowTask(
                left,
                lslot,
                PartState(lslot, schema.n_classes, make_part_hists(schema, child_edges)),
                child_edges,
            )
            kids.append(left_task)
        if self._worth_growing(right):
            right_task = _GrowTask(
                right,
                rslot,
                PartState(rslot, schema.n_classes, make_part_hists(schema, child_edges)),
                child_edges,
            )
            kids.append(right_task)
        router = _Router(
            parent_slot=slot,
            split=split,
            left_slot=lslot,
            right_slot=rslot,
            left_task=left_task,
            right_task=right_task,
        )
        return router, kids

    def _worth_growing(self, node: Node) -> bool:
        cfg = self.config
        return (
            node.n_records >= cfg.min_records
            and node.gini > cfg.min_gini
            and node.depth < cfg.max_depth
        )

    @staticmethod
    def _charge_nid(stats: BuildStats, n: int) -> None:
        stats.io.count_aux_read(n)
        stats.io.count_aux_write(n)
