"""Zero-downtime sliding-window hot-swap under sustained serving traffic.

The refresher's background trainer must flip the endpoint's stable
pointer N times while clients hammer the engine, with zero request
errors, no responses from fingerprints that were never promoted, and a
monotone model version per sticky route key.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.config import BuilderConfig
from repro.data.synthetic import generate_drift
from repro.obs.access import AccessLog
from repro.serve.engine import ModelRegistry, ServingEngine
from repro.stream import SlidingWindowRefresher, StreamingTrainer

CFG = BuilderConfig(n_intervals=24, max_depth=6, min_records=20)


def _drift_stream():
    return generate_drift((("F2", 6_000), ("F5", 6_000), ("F7", 6_000)), seed=3)


class TestHotSwapUnderTraffic:
    def test_zero_downtime_refresh(self):
        data = _drift_stream()
        registry = ModelRegistry()
        access_log = AccessLog()
        refresher = SlidingWindowRefresher(
            registry,
            "live",
            data.schema,
            window_records=3_000,
            refresh_every=1_200,
            config=CFG,
        )
        # Prime the endpoint before opening traffic.
        assert refresher.observe(data.X[:1500], data.y[:1500]) is True
        assert len(refresher.history) == 1

        stop = threading.Event()
        client_errors: list[BaseException] = []
        Xq = data.X[:32]

        def client(key: str) -> None:
            while not stop.is_set():
                try:
                    out = engine.predict("live", Xq, route_key=key)
                    assert len(out) == len(Xq)
                except BaseException as exc:  # noqa: BLE001 - collected for assert
                    client_errors.append(exc)
                    return

        with ServingEngine(registry, access_log=access_log) as engine:
            threads = [
                threading.Thread(target=client, args=(f"client-{i}",), daemon=True)
                for i in range(4)
            ]
            refresher.start()
            try:
                for t in threads:
                    t.start()
                for lo in range(1_500, data.n_records, 500):
                    refresher.observe(data.X[lo : lo + 500], data.y[lo : lo + 500])
                    time.sleep(0.002)
                deadline = time.monotonic() + 30.0
                while len(refresher.history) < 4 and time.monotonic() < deadline:
                    time.sleep(0.01)
            finally:
                refresher.stop(final_refresh=True)
                stop.set()
                for t in threads:
                    t.join(timeout=10.0)

        history = refresher.history
        assert len(history) >= 4, "expected several background refreshes"
        assert not client_errors, f"client saw errors: {client_errors[:3]}"

        records = access_log.records()
        assert records, "traffic should have been logged"
        bad = [r for r in records if r.outcome != "ok"]
        assert not bad, f"non-ok outcomes: {[(r.outcome, r.error) for r in bad[:3]]}"

        # Every served fingerprint was promoted at some point — nothing
        # stale, nothing that bypassed the rollout path.
        promoted = {e.fingerprint for e in history}
        served = {r.fingerprint for r in records}
        assert served <= promoted

        # Monotone model version per sticky route key: each client issues
        # requests sequentially, so its log order is its issue order.
        version_of = {}
        for e in history:
            version_of[e.fingerprint] = max(
                e.version, version_of.get(e.fingerprint, 0)
            )
        versions = [e.version for e in history]
        assert versions == sorted(versions), "endpoint version must be monotone"
        by_key: dict[str, list[int]] = {}
        for r in records:
            assert r.route_key is not None
            by_key.setdefault(r.route_key, []).append(version_of[r.fingerprint])
        assert set(by_key) == {f"client-{i}" for i in range(4)}
        for key, seq in by_key.items():
            assert seq == sorted(seq), f"version went backwards for {key}"

        # Drain-aware retirement: displaced models are unregistered once
        # their last in-flight lease completes, so with traffic stopped
        # the registry converges to exactly the live model.
        assert registry.endpoint_version("live") == history[-1].version
        final = history[-1].fingerprint
        assert final in registry
        assert len(registry) == 1

    def test_window_trim_and_refresh_accounting(self):
        data = _drift_stream()
        registry = ModelRegistry()
        refresher = SlidingWindowRefresher(
            registry,
            "live",
            data.schema,
            window_records=2_000,
            refresh_every=1_000,
            config=CFG,
        )
        n_refreshes = 0
        for lo in range(0, 8_000, 400):
            if refresher.observe(data.X[lo : lo + 400], data.y[lo : lo + 400]):
                n_refreshes += 1
            assert refresher.window_size <= 2_000
        # A refresh fires on the first chunk that crosses refresh_every,
        # i.e. every ceil(1000/400)=3 chunks: 20 chunks -> 6 refreshes.
        assert n_refreshes == len(refresher.history) == 6
        assert all(e.window_records <= 2_000 for e in refresher.history)
        assert [e.seq for e in refresher.history] == list(range(1, 7))

    def test_hot_swap_same_model_is_noop(self):
        data = _drift_stream()
        registry = ModelRegistry()
        tree = StreamingTrainer(data.schema, CFG).fit_stream(
            iter([(data.X[:2000], data.y[:2000])])
        ).tree
        fp1 = registry.hot_swap("ep", tree)
        v1 = registry.endpoint_version("ep")
        fp2 = registry.hot_swap("ep", tree)
        assert fp1 == fp2
        assert registry.endpoint_version("ep") == v1
        assert len(registry) == 1

    def test_hot_swap_bumps_version_per_distinct_model(self):
        data = _drift_stream()
        registry = ModelRegistry()
        fps, versions = [], []
        for lo in (0, 6_000, 12_000):
            tree = StreamingTrainer(data.schema, CFG).fit_stream(
                iter([(data.X[lo : lo + 2_000], data.y[lo : lo + 2_000])])
            ).tree
            fps.append(registry.hot_swap("ep", tree))
            versions.append(registry.endpoint_version("ep"))
        assert len(set(fps)) == 3
        assert versions == [versions[0], versions[0] + 1, versions[0] + 2]
        # Undisturbed retirement: only the live model remains.
        assert len(registry) == 1
        assert fps[-1] in registry
