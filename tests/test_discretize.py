"""Tests for repro.data.discretize, including property-based tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.discretize import (
    Discretizer,
    ReservoirSampler,
    bin_index,
    edges_from_histogram,
    equal_depth_edges,
    equal_width_edges,
)

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
value_arrays = hnp.arrays(
    np.float64, st.integers(min_value=1, max_value=300), elements=finite_floats
)


class TestEqualWidth:
    def test_even_spacing(self):
        edges = equal_width_edges(np.array([0.0, 10.0]), 5)
        np.testing.assert_allclose(edges, [2, 4, 6, 8])

    def test_constant_column(self):
        assert len(equal_width_edges(np.full(10, 3.0), 4)) == 0

    def test_q_one(self):
        assert len(equal_width_edges(np.arange(5.0), 1)) == 0

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            equal_width_edges(np.arange(5.0), 0)
        with pytest.raises(ValueError):
            equal_width_edges(np.empty(0), 3)


class TestEqualDepth:
    def test_roughly_equal_population(self, rng):
        values = rng.normal(size=10_000)
        edges = equal_depth_edges(values, 10)
        bins = bin_index(values, edges)
        counts = np.bincount(bins, minlength=len(edges) + 1)
        assert counts.min() > 700
        assert counts.max() < 1300

    def test_edges_are_data_values(self, rng):
        values = rng.uniform(0, 1, 500)
        edges = equal_depth_edges(values, 8)
        assert set(edges).issubset(set(values))

    def test_heavy_atom_collapses(self):
        values = np.concatenate([np.zeros(900), np.arange(1, 101, dtype=float)])
        edges = equal_depth_edges(values, 10)
        # 0 appears at most once as an edge despite covering 90% of the mass.
        assert np.count_nonzero(edges == 0.0) <= 1

    @given(value_arrays, st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_edges_strictly_increasing_and_below_max(self, values, q):
        edges = equal_depth_edges(values, q)
        if len(edges) > 1:
            assert np.all(np.diff(edges) > 0)
        if len(edges):
            assert edges.max() < values.max()


class TestBinIndex:
    def test_boundary_convention(self):
        # Interval i holds (edges[i-1], edges[i]]: boundary values bin left.
        edges = np.array([1.0, 2.0])
        values = np.array([0.5, 1.0, 1.5, 2.0, 2.5])
        np.testing.assert_array_equal(bin_index(values, edges), [0, 0, 1, 1, 2])

    @given(value_arrays)
    @settings(max_examples=50, deadline=None)
    def test_bins_within_range(self, values):
        edges = equal_depth_edges(values, 5)
        bins = bin_index(values, edges)
        assert bins.min() >= 0
        assert bins.max() <= len(edges)


class TestDiscretizer:
    def test_interval_bounds(self):
        d = Discretizer(np.array([1.0, 2.0]))
        assert d.n_intervals == 3
        assert d.interval_bounds(0) == (-np.inf, 1.0)
        assert d.interval_bounds(1) == (1.0, 2.0)
        assert d.interval_bounds(2) == (2.0, np.inf)

    def test_interval_bounds_out_of_range(self):
        with pytest.raises(IndexError):
            Discretizer(np.array([1.0])).interval_bounds(5)

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError, match="increasing"):
            Discretizer(np.array([2.0, 1.0]))

    def test_bin_matches_bounds(self, rng):
        values = rng.normal(size=200)
        d = Discretizer.equal_depth(values, 6)
        bins = d.bin(values)
        for i in range(d.n_intervals):
            lo, hi = d.interval_bounds(i)
            sel = values[bins == i]
            assert np.all((sel > lo) & (sel <= hi))


class TestEdgesFromHistogram:
    def test_uniform_refinement(self):
        # Uniform counts over [0, 10] in 5 intervals -> evenly spread edges.
        edges = np.array([2.0, 4.0, 6.0, 8.0])
        counts = np.full(5, 100.0)
        new = edges_from_histogram(edges, counts, 10)
        assert len(new) >= 7
        assert np.all(np.diff(new) > 0)

    def test_concentrated_mass_gets_resolution(self):
        # All mass in one parent interval: the new edges subdivide it.
        edges = np.array([1.0, 2.0, 3.0])
        counts = np.array([0.0, 1000.0, 0.0, 0.0])
        new = edges_from_histogram(edges, counts, 8)
        inside = (new >= 1.0) & (new <= 2.0)
        assert inside.sum() >= len(new) - 2

    def test_empty_histogram(self):
        assert len(edges_from_histogram(np.array([1.0]), np.zeros(2), 4)) == 0

    def test_q_one(self):
        assert len(edges_from_histogram(np.array([1.0]), np.array([5.0, 5.0]), 1)) == 0

    def test_count_length_validated(self):
        with pytest.raises(ValueError, match="len\\(edges\\) \\+ 1"):
            edges_from_histogram(np.array([1.0]), np.array([1.0]), 4)


class TestReservoirSampler:
    def test_small_stream_kept_verbatim(self, rng):
        r = ReservoirSampler(100, rng)
        r.extend(np.arange(30.0))
        assert sorted(r.sample()) == sorted(np.arange(30.0))
        assert r.n_seen == 30

    def test_capacity_respected(self, rng):
        r = ReservoirSampler(50, rng)
        for __ in range(10):
            r.extend(np.arange(100.0))
        assert len(r.sample()) == 50
        assert r.n_seen == 1000

    def test_distribution_roughly_uniform(self, rng):
        # Sampling 1..10000 with capacity 1000: the mean should be near 5000.
        r = ReservoirSampler(1000, rng)
        r.extend(np.arange(10_000, dtype=float))
        assert abs(r.sample().mean() - 5000) < 400

    def test_edges_from_reservoir(self, rng):
        r = ReservoirSampler(500, rng)
        r.extend(rng.uniform(0, 1, 5000))
        edges = r.edges(4)
        assert len(edges) == 3
        assert np.all((edges > 0) & (edges < 1))

    def test_empty_reservoir_edges(self):
        r = ReservoirSampler(10, np.random.default_rng(0))
        assert len(r.edges(5)) == 0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0, np.random.default_rng(0))


class TestHeavyDuplicateRegressions:
    """Minimized cases from the verify-harness audit of tie handling.

    Parent (fresh equal-depth) grids must never produce empty intervals
    and must isolate ULP-separated atoms; interpolated child grids are
    allowed to miss an atom that shares its parent interval with other
    values (the footnote-1 estimator slack), but must isolate an atom
    that fills its interval.
    """

    def test_ulp_separated_atoms_get_distinct_edges(self):
        # Two values one ULP-step apart, heavily duplicated: the parent
        # grid must keep them in separate intervals.
        values = np.array([0.500000001] * 15 + [0.500000002] * 27)
        edges = equal_depth_edges(values, 4)
        assert list(edges) == [0.500000001]
        bins = bin_index(values, edges)
        counts = np.bincount(bins, minlength=2)
        assert list(counts) == [15, 27]

    def test_no_empty_parent_intervals_under_ties(self):
        # 90/10 duplicate split at any q: every interval stays populated.
        values = np.array([1.0] * 90 + [2.0] * 10)
        for q in (1, 2, 4, 8, 16):
            edges = equal_depth_edges(values, q)
            counts = np.bincount(bin_index(values, edges), minlength=len(edges) + 1)
            assert (counts > 0).all(), (q, edges, counts)

    def test_value_equal_to_edge_goes_below(self):
        # The (lo, hi] convention: a value exactly on an edge belongs to
        # the closed-above interval, matching the `a <= C` split rule.
        edges = np.array([1.0, 2.0])
        assert list(bin_index(np.array([1.0, 2.0]), edges)) == [0, 1]
        assert list(bin_index(np.array([np.nextafter(1.0, 2.0)]), edges)) == [1]

    def test_every_edge_is_a_data_value(self, rng):
        pool = np.array([0.25, 0.25 + 1e-9, 0.5, 0.5 - 1e-9, -3.0])
        for __ in range(50):
            values = rng.choice(pool, size=int(rng.integers(1, 40)))
            edges = equal_depth_edges(values, int(rng.integers(1, 10)))
            assert np.all(np.isin(edges, values))
            if len(edges):
                assert edges.max() < values.max()

    def test_interpolated_child_isolates_atom_filling_its_interval(self):
        # Interval 1 is a pure atom (vmin == vmax): the CDF jump must put
        # a child edge exactly on the atom value.
        values = np.array([-3.0] * 6 + [0.5] * 6 + [2.0] * 6)
        edges = equal_depth_edges(values, 3)
        bins = bin_index(values, edges)
        counts = np.bincount(bins, minlength=len(edges) + 1).astype(float)
        vmin = np.full(len(edges) + 1, np.inf)
        vmax = np.full(len(edges) + 1, -np.inf)
        np.minimum.at(vmin, bins, values)
        np.maximum.at(vmax, bins, values)
        child = edges_from_histogram(edges, counts, 3, vmin, vmax)
        assert 0.5 in child

    def test_interpolated_child_may_miss_shared_atom(self):
        # Minimized from the audit: one record at -3 shares interval 0
        # with a 6-record atom at 0.500000001.  Uniform spreading puts
        # child edges in the empty value gap — a documented estimator
        # limitation (not a correctness bug: alive-interval buffering
        # resolves the exact cut), so pin the behaviour here.
        values = np.array([-3.000000002] + [0.500000001] * 6 + [0.500000002] * 6)
        edges = equal_depth_edges(values, 7)
        assert list(edges) == [0.500000001]
        bins = bin_index(values, edges)
        counts = np.bincount(bins, minlength=2).astype(float)
        assert list(counts) == [7.0, 6.0]
        vmin = np.full(2, np.inf)
        vmax = np.full(2, -np.inf)
        np.minimum.at(vmin, bins, values)
        np.maximum.at(vmax, bins, values)
        child = edges_from_histogram(edges, counts, 7, vmin, vmax)
        # Child edges are strictly increasing and inside the value range,
        # but none lands on the shared atom.
        assert np.all(np.diff(child) > 0)
        assert 0.500000001 not in child

    def test_all_identical_values_yield_no_edges(self):
        assert len(equal_depth_edges(np.full(100, 3.14), 8)) == 0
