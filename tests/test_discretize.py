"""Tests for repro.data.discretize, including property-based tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.discretize import (
    Discretizer,
    ReservoirSampler,
    bin_index,
    edges_from_histogram,
    equal_depth_edges,
    equal_width_edges,
)

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
value_arrays = hnp.arrays(
    np.float64, st.integers(min_value=1, max_value=300), elements=finite_floats
)


class TestEqualWidth:
    def test_even_spacing(self):
        edges = equal_width_edges(np.array([0.0, 10.0]), 5)
        np.testing.assert_allclose(edges, [2, 4, 6, 8])

    def test_constant_column(self):
        assert len(equal_width_edges(np.full(10, 3.0), 4)) == 0

    def test_q_one(self):
        assert len(equal_width_edges(np.arange(5.0), 1)) == 0

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            equal_width_edges(np.arange(5.0), 0)
        with pytest.raises(ValueError):
            equal_width_edges(np.empty(0), 3)


class TestEqualDepth:
    def test_roughly_equal_population(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=10_000)
        edges = equal_depth_edges(values, 10)
        bins = bin_index(values, edges)
        counts = np.bincount(bins, minlength=len(edges) + 1)
        assert counts.min() > 700
        assert counts.max() < 1300

    def test_edges_are_data_values(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 1, 500)
        edges = equal_depth_edges(values, 8)
        assert set(edges).issubset(set(values))

    def test_heavy_atom_collapses(self):
        values = np.concatenate([np.zeros(900), np.arange(1, 101, dtype=float)])
        edges = equal_depth_edges(values, 10)
        # 0 appears at most once as an edge despite covering 90% of the mass.
        assert np.count_nonzero(edges == 0.0) <= 1

    @given(value_arrays, st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_edges_strictly_increasing_and_below_max(self, values, q):
        edges = equal_depth_edges(values, q)
        if len(edges) > 1:
            assert np.all(np.diff(edges) > 0)
        if len(edges):
            assert edges.max() < values.max()


class TestBinIndex:
    def test_boundary_convention(self):
        # Interval i holds (edges[i-1], edges[i]]: boundary values bin left.
        edges = np.array([1.0, 2.0])
        values = np.array([0.5, 1.0, 1.5, 2.0, 2.5])
        np.testing.assert_array_equal(bin_index(values, edges), [0, 0, 1, 1, 2])

    @given(value_arrays)
    @settings(max_examples=50, deadline=None)
    def test_bins_within_range(self, values):
        edges = equal_depth_edges(values, 5)
        bins = bin_index(values, edges)
        assert bins.min() >= 0
        assert bins.max() <= len(edges)


class TestDiscretizer:
    def test_interval_bounds(self):
        d = Discretizer(np.array([1.0, 2.0]))
        assert d.n_intervals == 3
        assert d.interval_bounds(0) == (-np.inf, 1.0)
        assert d.interval_bounds(1) == (1.0, 2.0)
        assert d.interval_bounds(2) == (2.0, np.inf)

    def test_interval_bounds_out_of_range(self):
        with pytest.raises(IndexError):
            Discretizer(np.array([1.0])).interval_bounds(5)

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError, match="increasing"):
            Discretizer(np.array([2.0, 1.0]))

    def test_bin_matches_bounds(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=200)
        d = Discretizer.equal_depth(values, 6)
        bins = d.bin(values)
        for i in range(d.n_intervals):
            lo, hi = d.interval_bounds(i)
            sel = values[bins == i]
            assert np.all((sel > lo) & (sel <= hi))


class TestEdgesFromHistogram:
    def test_uniform_refinement(self):
        # Uniform counts over [0, 10] in 5 intervals -> evenly spread edges.
        edges = np.array([2.0, 4.0, 6.0, 8.0])
        counts = np.full(5, 100.0)
        new = edges_from_histogram(edges, counts, 10)
        assert len(new) >= 7
        assert np.all(np.diff(new) > 0)

    def test_concentrated_mass_gets_resolution(self):
        # All mass in one parent interval: the new edges subdivide it.
        edges = np.array([1.0, 2.0, 3.0])
        counts = np.array([0.0, 1000.0, 0.0, 0.0])
        new = edges_from_histogram(edges, counts, 8)
        inside = (new >= 1.0) & (new <= 2.0)
        assert inside.sum() >= len(new) - 2

    def test_empty_histogram(self):
        assert len(edges_from_histogram(np.array([1.0]), np.zeros(2), 4)) == 0

    def test_q_one(self):
        assert len(edges_from_histogram(np.array([1.0]), np.array([5.0, 5.0]), 1)) == 0

    def test_count_length_validated(self):
        with pytest.raises(ValueError, match="len\\(edges\\) \\+ 1"):
            edges_from_histogram(np.array([1.0]), np.array([1.0]), 4)


class TestReservoirSampler:
    def test_small_stream_kept_verbatim(self):
        rng = np.random.default_rng(0)
        r = ReservoirSampler(100, rng)
        r.extend(np.arange(30.0))
        assert sorted(r.sample()) == sorted(np.arange(30.0))
        assert r.n_seen == 30

    def test_capacity_respected(self):
        rng = np.random.default_rng(0)
        r = ReservoirSampler(50, rng)
        for __ in range(10):
            r.extend(np.arange(100.0))
        assert len(r.sample()) == 50
        assert r.n_seen == 1000

    def test_distribution_roughly_uniform(self):
        # Sampling 1..10000 with capacity 1000: the mean should be near 5000.
        rng = np.random.default_rng(42)
        r = ReservoirSampler(1000, rng)
        r.extend(np.arange(10_000, dtype=float))
        assert abs(r.sample().mean() - 5000) < 400

    def test_edges_from_reservoir(self):
        rng = np.random.default_rng(1)
        r = ReservoirSampler(500, rng)
        r.extend(rng.uniform(0, 1, 5000))
        edges = r.edges(4)
        assert len(edges) == 3
        assert np.all((edges > 0) & (edges < 1))

    def test_empty_reservoir_edges(self):
        r = ReservoirSampler(10, np.random.default_rng(0))
        assert len(r.edges(5)) == 0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0, np.random.default_rng(0))
