"""Tests for shared builder machinery (zones, buffers, exact resolution)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import (
    RecordBuffer,
    ResolvedThreshold,
    adaptive_intervals,
    classify_zones,
    resolve_exact_threshold,
    zone_boundaries,
)
from repro.core.gini import gini_partition


class TestZones:
    def test_boundaries_flatten(self):
        b = zone_boundaries([(1.0, 2.0), (5.0, 7.0)])
        np.testing.assert_array_equal(b, [1.0, 2.0, 5.0, 7.0])

    def test_classification_layout(self):
        b = zone_boundaries([(1.0, 2.0), (5.0, 7.0)])
        values = np.array([0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 6.0, 7.0, 9.0])
        zones = classify_zones(values, b)
        # regions are even, alive intervals odd
        np.testing.assert_array_equal(zones, [0, 0, 1, 1, 2, 2, 3, 3, 4])

    def test_unbounded_alive(self):
        b = zone_boundaries([(-np.inf, 2.0)])
        zones = classify_zones(np.array([-100.0, 2.0, 3.0]), b)
        np.testing.assert_array_equal(zones, [1, 1, 2])

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError, match="empty"):
            zone_boundaries([(2.0, 2.0)])

    def test_rejects_overlap(self):
        with pytest.raises(ValueError, match="disjoint"):
            zone_boundaries([(1.0, 3.0), (2.0, 4.0)])

    def test_adjacent_intervals_allowed(self):
        b = zone_boundaries([(1.0, 2.0), (2.0, 3.0)])
        zones = classify_zones(np.array([1.5, 2.5]), b)
        np.testing.assert_array_equal(zones, [1, 3])


class TestRecordBuffer:
    def test_append_and_concat(self):
        buf = RecordBuffer()
        buf.append(np.ones((2, 3)), np.array([0, 1]), np.array([5, 6]))
        buf.append(np.zeros((1, 3)), np.array([1]), np.array([9]))
        X, y, rids = buf.concatenated()
        assert X.shape == (3, 3)
        np.testing.assert_array_equal(y, [0, 1, 1])
        np.testing.assert_array_equal(rids, [5, 6, 9])
        assert buf.n_records == 3
        assert buf.nbytes() > 0

    def test_empty_buffer(self):
        X, y, rids = RecordBuffer().concatenated()
        assert len(y) == 0 and len(rids) == 0

    def test_copies_inputs(self):
        buf = RecordBuffer()
        X = np.ones((1, 2))
        buf.append(X, np.array([0]), np.array([0]))
        X[0, 0] = 99.0
        got, __, __ = buf.concatenated()
        assert got[0, 0] == 1.0


class TestAdaptiveIntervals:
    def test_large_nodes_get_configured_grid(self):
        assert adaptive_intervals(100, 1_000_000) == 100

    def test_small_nodes_shrink(self):
        assert adaptive_intervals(100, 100) == 6
        assert adaptive_intervals(100, 10) >= 4

    def test_floor(self):
        assert adaptive_intervals(100, 0) == 4


class TestResolveExactThreshold:
    def test_boundary_wins_when_buffer_empty(self):
        totals = np.array([10.0, 10.0])
        res = resolve_exact_threshold(
            totals, 5.0, 0.25, [(4.0, 6.0)], [np.array([5.0, 1.0])],
            np.empty(0), np.empty(0, dtype=int),
        )
        assert res == ResolvedThreshold(5.0, 0.25, False, n_candidates=1)

    def test_interior_beats_boundary(self):
        # 6 class-0 records below the interval; buffered records split
        # perfectly at 5.0 inside the alive interval.
        totals = np.array([8.0, 4.0])
        cum_below = np.array([6.0, 0.0])
        buf_v = np.array([4.5, 4.8, 5.0, 5.5, 6.0, 6.5])
        buf_y = np.array([0, 0, 0, 1, 1, 1])
        res = resolve_exact_threshold(
            totals, 4.0, 0.4, [(4.0, 7.0)], [cum_below], buf_v, buf_y
        )
        assert res is not None
        assert res.from_buffer
        assert res.threshold == 5.0
        left = cum_below + np.array([3.0, 0.0])
        expected = gini_partition(left, totals - left)
        assert res.gini == pytest.approx(expected)

    def test_no_candidates_returns_none(self):
        totals = np.array([3.0, 3.0])
        res = resolve_exact_threshold(
            totals, None, np.inf, [(0.0, 1.0)], [np.zeros(2)],
            np.full(6, 0.5), np.array([0, 1, 0, 1, 0, 1]),
        )
        assert res is None  # single distinct buffered value, no boundary

    def test_degenerate_candidates_skipped(self):
        # All records buffered with the same label layout such that every
        # split leaves one side empty except the interior one.
        totals = np.array([2.0, 2.0])
        buf_v = np.array([1.0, 2.0, 3.0, 4.0])
        buf_y = np.array([0, 0, 1, 1])
        res = resolve_exact_threshold(
            totals, None, np.inf, [(-np.inf, np.inf)], [np.zeros(2)], buf_v, buf_y
        )
        assert res is not None
        assert res.threshold == 2.0
        assert res.gini == pytest.approx(0.0)

    @given(
        st.lists(
            st.tuples(st.floats(0, 10, allow_nan=False), st.integers(0, 1)),
            min_size=5,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force_within_alive(self, pairs):
        # With the entire axis alive and everything buffered, resolution
        # must find the global exact optimum.
        values = np.array([v for v, _ in pairs])
        labels = np.array([c for _, c in pairs], dtype=np.int64)
        if len(np.unique(values)) < 2:
            return
        totals = np.bincount(labels, minlength=2).astype(float)
        res = resolve_exact_threshold(
            totals, None, np.inf, [(-np.inf, np.inf)], [np.zeros(2)], values, labels
        )
        assert res is not None
        best = np.inf
        for cand in np.unique(values)[:-1]:
            left = np.bincount(labels[values <= cand], minlength=2)
            right = np.bincount(labels[values > cand], minlength=2)
            best = min(best, gini_partition(left, right))
        assert res.gini == pytest.approx(best)
