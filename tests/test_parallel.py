"""Tests for the chunk-parallel scan engine and its determinism guarantees.

Two layers of evidence:

* **merge equivalence** — every accumulator the engine clones for worker
  deltas (class/category histograms, histogram matrices, axis extrema,
  matrix sets, record buffers) produces identical state whether a batch
  stream is folded in one pass or partitioned arbitrarily and merged; and
* **bit-identity** — the three CMP builders produce the same serialized
  tree, predictions and scan counts under any worker count, either
  backend (thread or forked-process workers) and with native kernels on
  or off, including under fault injection, buffer-budget overflow and
  checkpoint/resume.
"""

import multiprocessing
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BuilderConfig
from repro.core import native_scan
from repro.core import parallel as parallel_mod
from repro.core.builder import PartState, RecordBuffer, make_part_hists
from repro.core.cmp_b import CMPBBuilder
from repro.core.cmp_full import CMPBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.core.histogram import CategoryHistogram, ClassHistogram
from repro.core.matrix import AxisStats, HistogramMatrix, MatrixSet
from repro.core.parallel import (
    SCAN_BACKENDS,
    ScanEngine,
    partition_chunks,
    process_backend_available,
)
from repro.core.serialize import tree_to_json
from repro.data.schema import Schema, categorical, continuous
from repro.data.synthetic import generate_agrawal
from repro.io.faults import FaultInjector, FaultyDataset, InjectedCrash
from repro.verify.differential import tree_signature

CFG = BuilderConfig(n_intervals=16, max_depth=4, min_records=30)
BUILDERS = [CMPSBuilder, CMPBBuilder, CMPBuilder]

needs_fork = pytest.mark.skipif(
    not process_backend_available(), reason="fork start method unavailable"
)


@pytest.fixture(scope="module", params=["F2", "F7"])
def dataset(request):
    return generate_agrawal(request.param, 3_000, seed=5)


# ---------------------------------------------------------------------------
# partition_chunks
# ---------------------------------------------------------------------------


class TestPartitionChunks:
    def test_contiguous_and_complete(self):
        starts = list(range(0, 1000, 100))
        slices = partition_chunks(starts, 3)
        assert [s for sl in slices for s in sl] == starts
        assert len(slices) == 3
        # Balanced: sizes differ by at most one, largest first.
        sizes = [len(sl) for sl in slices]
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)

    def test_more_workers_than_chunks(self):
        slices = partition_chunks([0, 64], 8)
        assert slices == [[0], [64]]

    def test_empty(self):
        assert partition_chunks([], 4) == []

    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            partition_chunks([0], 0)

    @given(
        n=st.integers(min_value=0, max_value=200),
        workers=st.integers(min_value=1, max_value=16),
    )
    def test_property_order_preserved(self, n, workers):
        starts = list(range(n))
        slices = partition_chunks(starts, workers)
        assert [s for sl in slices for s in sl] == starts
        assert len(slices) == min(workers, n)


# ---------------------------------------------------------------------------
# Merge equivalence: chunked-and-merged == single pass
# ---------------------------------------------------------------------------


def _partition(n: int, cuts: list[int]) -> list[slice]:
    """Slices covering [0, n) with the given (possibly ragged) cut points."""
    points = sorted({c % (n + 1) for c in cuts} | {0, n})
    return [slice(a, b) for a, b in zip(points, points[1:])]


batches = st.lists(st.integers(min_value=0, max_value=10_000), max_size=6)


class TestMergeEquivalence:
    @given(seed=st.integers(0, 2**16), cuts=batches)
    @settings(max_examples=50, deadline=None)
    def test_class_histogram(self, seed, cuts):
        rng = np.random.default_rng(seed)
        n = 300
        values = rng.uniform(0, 10, n)
        labels = rng.integers(0, 3, n)
        edges = np.array([2.0, 5.0, 8.0])
        serial = ClassHistogram(edges, 3)
        serial.update(values, labels)
        merged = ClassHistogram(edges, 3)
        for sl in _partition(n, cuts):
            delta = merged.clone_empty()
            delta.update(values[sl], labels[sl])
            merged.merge_from(delta)
        np.testing.assert_array_equal(merged.counts, serial.counts)
        np.testing.assert_array_equal(merged.vmin, serial.vmin)
        np.testing.assert_array_equal(merged.vmax, serial.vmax)

    @given(seed=st.integers(0, 2**16), cuts=batches)
    @settings(max_examples=50, deadline=None)
    def test_category_histogram(self, seed, cuts):
        rng = np.random.default_rng(seed)
        n = 300
        codes = rng.integers(0, 4, n).astype(float)
        labels = rng.integers(0, 2, n)
        serial = CategoryHistogram(4, 2)
        serial.update(codes, labels)
        merged = CategoryHistogram(4, 2)
        for sl in _partition(n, cuts):
            delta = merged.clone_empty()
            delta.update(codes[sl], labels[sl])
            merged.merge_from(delta)
        np.testing.assert_array_equal(merged.counts, serial.counts)

    @given(seed=st.integers(0, 2**16), cuts=batches)
    @settings(max_examples=50, deadline=None)
    def test_axis_stats(self, seed, cuts):
        rng = np.random.default_rng(seed)
        n = 300
        bins = rng.integers(0, 5, n)
        values = rng.normal(size=n)
        serial = AxisStats(5)
        serial.update(bins, values)
        merged = AxisStats(5)
        for sl in _partition(n, cuts):
            delta = AxisStats(5)
            delta.update(bins[sl], values[sl])
            merged.merge_from(delta)
        np.testing.assert_array_equal(merged.vmin, serial.vmin)
        np.testing.assert_array_equal(merged.vmax, serial.vmax)

    @given(seed=st.integers(0, 2**16), cuts=batches)
    @settings(max_examples=50, deadline=None)
    def test_histogram_matrix(self, seed, cuts):
        rng = np.random.default_rng(seed)
        n = 300
        x_bins = rng.integers(0, 3, n)
        y_values = rng.uniform(0, 10, n)
        labels = rng.integers(0, 2, n)
        x_edges = np.array([3.0, 6.0])
        y_edges = np.array([2.0, 5.0, 8.0])
        serial = HistogramMatrix(0, 1, x_edges, y_edges, 2)
        serial.update_binned(x_bins, y_values, labels)
        merged = serial.clone_empty()
        for sl in _partition(n, cuts):
            delta = merged.clone_empty()
            delta.update_binned(x_bins[sl], y_values[sl], labels[sl])
            merged.merge_from(delta)
        np.testing.assert_array_equal(merged.counts, serial.counts)
        np.testing.assert_array_equal(merged.y_stats.vmin, serial.y_stats.vmin)
        np.testing.assert_array_equal(merged.y_stats.vmax, serial.y_stats.vmax)

    @given(seed=st.integers(0, 2**16), cuts=batches)
    @settings(max_examples=25, deadline=None)
    def test_matrix_set(self, seed, cuts):
        schema = Schema(
            (continuous("x"), continuous("y"), categorical("c", ("a", "b"))),
            ("n", "p"),
        )
        rng = np.random.default_rng(seed)
        n = 300
        X = np.column_stack(
            [rng.uniform(0, 10, n), rng.uniform(0, 10, n), rng.integers(0, 2, n)]
        ).astype(float)
        y = rng.integers(0, 2, n)
        edges = {0: np.array([3.0, 6.0]), 1: np.array([2.0, 5.0, 8.0])}
        serial = MatrixSet.create(schema, 0, edges)
        serial.update(X, y)
        merged = serial.clone_empty()
        for sl in _partition(n, cuts):
            delta = merged.clone_empty()
            delta.update(X[sl], y[sl])
            merged.merge_from(delta)
        np.testing.assert_array_equal(merged.class_counts, serial.class_counts)
        for j in serial.matrices:
            np.testing.assert_array_equal(
                merged.matrices[j].counts, serial.matrices[j].counts
            )
        for j in serial.categorical:
            np.testing.assert_array_equal(
                merged.categorical[j].counts, serial.categorical[j].counts
            )

    @given(seed=st.integers(0, 2**16), cuts=batches)
    @settings(max_examples=25, deadline=None)
    def test_part_state(self, seed, cuts):
        schema = Schema(
            (continuous("x"), continuous("y"), categorical("c", ("a", "b"))),
            ("n", "p"),
        )
        rng = np.random.default_rng(seed)
        n = 300
        X = np.column_stack(
            [rng.uniform(0, 10, n), rng.uniform(0, 10, n), rng.integers(0, 2, n)]
        ).astype(float)
        y = rng.integers(0, 2, n)
        edges = {0: np.array([3.0, 6.0]), 1: np.array([2.0, 5.0, 8.0])}
        serial = PartState(0, 2, make_part_hists(schema, edges))
        serial.update(X, y)
        merged = PartState(0, 2, make_part_hists(schema, edges))
        for sl in _partition(n, cuts):
            delta = merged.clone_empty()
            delta.update(X[sl], y[sl])
            merged.merge_from(delta)
        np.testing.assert_array_equal(merged.class_counts, serial.class_counts)
        for j in serial.hists:
            np.testing.assert_array_equal(
                merged.hists[j].counts, serial.hists[j].counts
            )


class TestRecordBufferExtend:
    def _batch(self, k, n=10):
        X = np.full((n, 2), float(k))
        y = np.full(n, k % 2, dtype=np.int64)
        rids = np.arange(k * n, (k + 1) * n, dtype=np.int64)
        return X, y, rids

    def test_concatenation_order(self):
        serial = RecordBuffer()
        merged = RecordBuffer()
        workers = [RecordBuffer(), RecordBuffer()]
        for k in range(4):
            serial.append(*self._batch(k))
            workers[k // 2].append(*self._batch(k))
        for w in workers:
            merged.extend_from(w)
        for a, b in zip(serial.concatenated(), merged.concatenated()):
            np.testing.assert_array_equal(a, b)
        assert merged.n_records == serial.n_records

    def test_overflow_latches_from_worker(self):
        merged = RecordBuffer(budget_bytes=1)
        worker = RecordBuffer(budget_bytes=1)
        worker.append(*self._batch(0))
        assert worker.overflowed
        merged.extend_from(worker)
        assert merged.overflowed
        assert merged.n_records == 10
        assert not merged.X_chunks

    def test_overflow_latches_on_total(self):
        # Each worker fits its budget alone; the merged total does not —
        # exactly when a serial pass would have overflowed too.
        budget = 400
        workers = [RecordBuffer(budget_bytes=budget) for _ in range(2)]
        for k, w in enumerate(workers):
            w.append(*self._batch(k, n=2))
            assert not w.overflowed
        merged = RecordBuffer(budget_bytes=120)
        serial = RecordBuffer(budget_bytes=120)
        for k in range(2):
            serial.append(*self._batch(k, n=2))
        for w in workers:
            merged.extend_from(w)
        assert serial.overflowed
        assert merged.overflowed

    def test_records_counted_after_overflow(self):
        merged = RecordBuffer(budget_bytes=1)
        w1 = RecordBuffer(budget_bytes=1)
        w1.append(*self._batch(0))
        merged.extend_from(w1)
        w2 = RecordBuffer(budget_bytes=1)
        w2.append(*self._batch(1))
        merged.extend_from(w2)
        assert merged.n_records == 20


# ---------------------------------------------------------------------------
# ScanEngine behaviour
# ---------------------------------------------------------------------------


class _FakeStats:
    def __init__(self):
        self.scans = 0
        self.merged_deltas = []

    def begin_scan(self):
        self.scans += 1

    def snapshot(self):
        return {"scans": self.scans}

    def merge_counter_delta(self, delta):
        self.merged_deltas.append(dict(delta))
        self.scans += delta.get("scans", 0)


class _FakeTable:
    """Minimal chunked table: chunks are just ints."""

    def __init__(self, n_chunks):
        self.stats = _FakeStats()
        self._n = n_chunks

    def chunk_starts(self):
        return range(self._n)

    def read_chunk(self, start):
        return start

    def scan(self):
        self.stats.begin_scan()
        yield from self.chunk_starts()


class TestScanEngine:
    def test_serial_streams_into_live(self):
        table = _FakeTable(5)
        seen = []
        with ScanEngine(1) as engine:
            assert not engine.parallel
            engine.scan(
                table,
                route=lambda chunk, tgt: tgt.append(chunk),
                live=seen,
                make_delta=list,
                merge_delta=lambda d: pytest.fail("serial path must not merge"),
            )
        assert seen == [0, 1, 2, 3, 4]
        assert table.stats.scans == 1

    def test_parallel_merges_in_chunk_order(self):
        table = _FakeTable(10)
        merged = []
        with ScanEngine(3) as engine:
            assert engine.parallel
            engine.scan(
                table,
                route=lambda chunk, tgt: tgt.append(chunk),
                live=merged,
                make_delta=list,
                merge_delta=merged.extend,
            )
            assert engine.batches_dispatched == 3
        assert merged == list(range(10))
        assert table.stats.scans == 1

    def test_worker_error_propagates(self):
        table = _FakeTable(4)

        def route(chunk, tgt):
            if chunk == 2:
                raise RuntimeError("boom")

        with ScanEngine(2) as engine:
            with pytest.raises(RuntimeError, match="boom"):
                engine.scan(
                    table,
                    route=route,
                    live=None,
                    make_delta=list,
                    merge_delta=lambda d: None,
                )

    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ScanEngine(0)

    def test_invalid_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ScanEngine(2, backend="mpi")


@needs_fork
class TestScanEngineProcess:
    def test_parallel_merges_in_chunk_order(self):
        table = _FakeTable(10)
        merged = []
        with ScanEngine(3, backend="process") as engine:
            assert engine.effective_backend == "process"
            engine.scan(
                table,
                route=lambda chunk, tgt: tgt.append(chunk),
                live=merged,
                make_delta=list,
                merge_delta=merged.extend,
            )
            assert engine.batches_dispatched == 3
        assert merged == list(range(10))
        assert table.stats.scans == 1
        # Every worker handed an IO-counter delta back to the parent.
        assert len(table.stats.merged_deltas) == 3

    def test_serial_path_ignores_backend(self):
        table = _FakeTable(4)
        seen = []
        with ScanEngine(1, backend="process") as engine:
            assert not engine.parallel
            engine.scan(
                table,
                route=lambda chunk, tgt: tgt.append(chunk),
                live=seen,
                make_delta=list,
                merge_delta=lambda d: pytest.fail("serial path must not merge"),
            )
        assert seen == [0, 1, 2, 3]

    def test_worker_error_propagates_from_child(self):
        table = _FakeTable(4)

        def route(chunk, tgt):
            if chunk == 2:
                raise RuntimeError("boom")

        with ScanEngine(2, backend="process") as engine:
            with pytest.raises(RuntimeError, match="boom"):
                engine.scan(
                    table,
                    route=route,
                    live=None,
                    make_delta=list,
                    merge_delta=lambda d: None,
                )
        assert parallel_mod._FORK_JOB is None


class TestPoisonedScanTeardown:
    """Regression: a scan whose route or merge raises must not leak workers."""

    def _poisoned_route(self, chunk, tgt):
        if chunk == 3:
            raise RuntimeError("poisoned")

    def test_thread_pool_torn_down(self):
        engine = ScanEngine(3)
        before = set(threading.enumerate())
        with pytest.raises(RuntimeError, match="poisoned"):
            engine.scan(
                _FakeTable(6),
                route=self._poisoned_route,
                live=None,
                make_delta=list,
                merge_delta=lambda d: None,
            )
        assert engine._pool is None
        leaked = [
            t
            for t in threading.enumerate()
            if t not in before and t.name.startswith("cmp-scan") and t.is_alive()
        ]
        assert leaked == []
        # The engine stays usable: the next scan builds a fresh pool.
        merged = []
        engine.scan(
            _FakeTable(4),
            route=lambda chunk, tgt: tgt.append(chunk),
            live=merged,
            make_delta=list,
            merge_delta=merged.extend,
        )
        assert merged == [0, 1, 2, 3]
        engine.close()

    def test_merge_error_tears_down_thread_pool(self):
        def merge(delta):
            raise RuntimeError("merge blew up")

        engine = ScanEngine(2)
        with pytest.raises(RuntimeError, match="merge blew up"):
            engine.scan(
                _FakeTable(6),
                route=lambda chunk, tgt: tgt.append(chunk),
                live=None,
                make_delta=list,
                merge_delta=merge,
            )
        assert engine._pool is None

    @needs_fork
    def test_process_pool_torn_down(self):
        engine = ScanEngine(3, backend="process")
        with pytest.raises(RuntimeError, match="poisoned"):
            engine.scan(
                _FakeTable(6),
                route=self._poisoned_route,
                live=None,
                make_delta=list,
                merge_delta=lambda d: None,
            )
        assert parallel_mod._FORK_JOB is None
        # shutdown(wait=True) ran in the engine's finally; give the OS a
        # moment to reap, then require no surviving workers.
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []


# ---------------------------------------------------------------------------
# Builder bit-identity, serial vs parallel
# ---------------------------------------------------------------------------


class TestParallelBitIdentity:
    @pytest.mark.parametrize("builder_cls", BUILDERS)
    def test_tree_and_io_identical(self, dataset, builder_cls):
        serial = builder_cls(CFG).build(dataset)
        parallel = builder_cls(CFG.with_(scan_workers=4)).build(dataset)
        assert tree_to_json(parallel.tree) == tree_to_json(serial.tree)
        np.testing.assert_array_equal(
            parallel.tree.predict(dataset.X), serial.tree.predict(dataset.X)
        )
        # Same number of passes and the same pages touched: parallelism
        # redistributes work, it never changes what is read.
        assert parallel.stats.io.scans == serial.stats.io.scans
        assert parallel.stats.io.pages_read == serial.stats.io.pages_read
        assert parallel.stats.scan_workers == 4
        assert parallel.stats.parallel_batches > 0
        assert serial.stats.parallel_batches == 0

    def test_many_worker_counts(self, dataset):
        reference = tree_to_json(CMPBuilder(CFG).build(dataset).tree)
        for workers in (2, 3, 7):
            got = CMPBuilder(CFG.with_(scan_workers=workers)).build(dataset)
            assert tree_to_json(got.tree) == reference, f"workers={workers}"

    def test_phase_timings_recorded(self, dataset):
        result = CMPBuilder(CFG.with_(scan_workers=2)).build(dataset)
        assert {"scan", "resolve"} <= set(result.stats.phase_seconds)
        summary = result.summary
        assert "phase_scan_s" in summary
        assert summary["scan_workers"] == 2

    @pytest.mark.parametrize("builder_cls", BUILDERS)
    def test_identical_under_fault_injection(self, dataset, builder_cls):
        clean = builder_cls(CFG).build(dataset)
        injector = FaultInjector(
            transient_rate=0.08, truncate_rate=0.04, corrupt_rate=0.04, seed=3
        )
        faulty = builder_cls(CFG.with_(scan_workers=4)).build(
            FaultyDataset(dataset, injector)
        )
        assert injector.total_injected > 0
        assert faulty.stats.io.read_retries > 0
        assert tree_to_json(faulty.tree) == tree_to_json(clean.tree)

    def test_overflow_rescan_identical(self, dataset):
        cfg = CFG.with_(buffer_budget_bytes=2_048)
        serial = CMPSBuilder(cfg).build(dataset)
        parallel = CMPSBuilder(cfg.with_(scan_workers=4)).build(dataset)
        assert serial.stats.buffer_overflow_rescans > 0
        assert (
            parallel.stats.buffer_overflow_rescans
            == serial.stats.buffer_overflow_rescans
        )
        assert tree_to_json(parallel.tree) == tree_to_json(serial.tree)
        # And the degraded path still matches the unbudgeted tree.
        unbudgeted = CMPSBuilder(CFG).build(dataset)
        assert tree_to_json(parallel.tree) == tree_to_json(unbudgeted.tree)


class TestBackendKernelMatrix:
    """Tree bit-identity over {backend} x {workers} x {kernels on/off}.

    ``page_records=10`` shrinks chunks to 640 records so the 3,000-record
    datasets really span multiple chunks and both parallel backends get a
    genuine fan-out instead of a single-slice pass.
    """

    @pytest.mark.parametrize("builder_cls", BUILDERS)
    def test_signature_matrix(self, dataset, builder_cls):
        cfg = CFG.with_(page_records=10)
        reference = tree_signature(builder_cls(cfg).build(dataset).tree)
        for backend in SCAN_BACKENDS:
            if backend == "process" and not process_backend_available():
                continue
            for workers in (1, 4):
                for native in (True, False):
                    combo = cfg.with_(scan_workers=workers, scan_backend=backend)
                    if native:
                        result = builder_cls(combo).build(dataset)
                    else:
                        with native_scan.force_numpy():
                            result = builder_cls(combo).build(dataset)
                    assert tree_signature(result.tree) == reference, (
                        f"backend={backend} workers={workers} native={native}"
                    )


@needs_fork
class TestProcessBackendBuilds:
    def test_identical_under_fault_injection(self, dataset):
        cfg = CFG.with_(page_records=10)
        clean = CMPSBuilder(cfg).build(dataset)
        injector = FaultInjector(
            transient_rate=0.08, truncate_rate=0.04, corrupt_rate=0.04, seed=3
        )
        faulty = CMPSBuilder(
            cfg.with_(scan_workers=4, scan_backend="process")
        ).build(FaultyDataset(dataset, injector))
        # Retries fire inside forked children, so the parent-side
        # injector counters stay at zero (copy-on-write); the retry
        # accounting still reaches the parent via the IO-counter deltas.
        assert faulty.stats.io.read_retries > 0
        assert tree_to_json(faulty.tree) == tree_to_json(clean.tree)

    def test_checkpoint_cross_backend_resume(self, dataset, tmp_path):
        """A checkpoint written by a process-backend build resumes
        bit-identically on the thread backend (and vice versa is covered
        by the fingerprint ignoring ``scan_backend``)."""
        reference = CMPBuilder(CFG).build(dataset)
        path = tmp_path / "build.ckpt"
        injector = FaultInjector(kill_at_scan=4)
        with pytest.raises(InjectedCrash):
            CMPBuilder(
                CFG.with_(
                    checkpoint_path=str(path),
                    scan_workers=4,
                    scan_backend="process",
                )
            ).build(FaultyDataset(dataset, injector))
        assert path.exists()
        resumed = CMPBuilder(
            CFG.with_(checkpoint_path=str(path), resume=True, scan_workers=2)
        ).build(dataset)
        assert resumed.stats.resumed_from_level >= 0
        assert tree_to_json(resumed.tree) == tree_to_json(reference.tree)
        assert not path.exists()

    def test_stats_report_backend_and_kernels(self, dataset):
        result = CMPSBuilder(
            CFG.with_(scan_workers=2, scan_backend="process")
        ).build(dataset)
        assert result.stats.scan_backend == "process"
        assert result.summary["scan_backend"] == "process"
        if native_scan.available():
            # Parent-side kernel calls only; forked workers count in
            # their own copy of the module counters.
            assert result.stats.native_kernel_calls >= 0


class TestParallelCheckpointResume:
    @pytest.mark.parametrize("resume_workers", [1, 4])
    def test_crash_parallel_resume_any_workers(
        self, dataset, tmp_path, resume_workers
    ):
        """A mid-build checkpoint written under workers=4 resumes
        bit-identically under any worker count."""
        reference = CMPBuilder(CFG).build(dataset)
        path = tmp_path / "build.ckpt"
        injector = FaultInjector(kill_at_scan=4)
        with pytest.raises(InjectedCrash):
            CMPBuilder(
                CFG.with_(checkpoint_path=str(path), scan_workers=4)
            ).build(FaultyDataset(dataset, injector))
        assert path.exists()
        resumed = CMPBuilder(
            CFG.with_(
                checkpoint_path=str(path), resume=True, scan_workers=resume_workers
            )
        ).build(dataset)
        assert resumed.stats.resumed_from_level >= 0
        assert tree_to_json(resumed.tree) == tree_to_json(reference.tree)
        assert not path.exists()  # cleared on completion


class TestConfig:
    def test_workers_validated(self):
        with pytest.raises(ValueError, match="scan_workers"):
            BuilderConfig(scan_workers=0)

    def test_backend_validated(self):
        with pytest.raises(ValueError, match="scan_backend"):
            BuilderConfig(scan_backend="mpi")

    def test_io_counter_delta_roundtrip(self):
        from repro.io.metrics import IOStats

        stats = IOStats()
        before = stats.snapshot()
        stats.count_pages(3, 700)
        stats.count_aux_read(11)
        delta = {k: v - before[k] for k, v in stats.snapshot().items()}
        other = IOStats()
        other.merge_counter_delta(delta)
        assert other.pages_read == 3
        assert other.records_read == 700
        assert other.aux_records_read == 11
        with pytest.raises(ValueError, match="unknown"):
            other.merge_counter_delta({"not_a_counter": 1})

    def test_simulated_time_divides_cpu_only(self):
        from repro.io.metrics import CostModel, IOStats

        stats = IOStats()
        stats.count_pages(10, 2_000)
        model = CostModel()
        serial = model.simulated_ms(stats)
        parallel = model.simulated_ms(stats, scan_workers=4)
        io_ms = 10 * model.seq_page_ms
        cpu_ms = 2_000 * model.cpu_record_us / 1000.0
        assert serial == pytest.approx(io_ms + cpu_ms)
        assert parallel == pytest.approx(io_ms + cpu_ms / 4)
