"""Tests for the SPRINT baseline."""

import numpy as np
import pytest

from repro.baselines.sprint import SprintBuilder
from repro.core.gini import exact_best_threshold, gini_partition
from repro.eval.metrics import accuracy

from conftest import assert_tree_consistent


class TestSprint:
    def test_counts_consistent(self, f2_small, fast_config):
        result = SprintBuilder(fast_config).build(f2_small)
        assert_tree_consistent(result.tree, f2_small)

    def test_root_split_is_globally_optimal(self, f2_small, fast_config):
        tree = SprintBuilder(fast_config).build(f2_small).tree
        root = tree.root
        attr = root.split.attr
        thr = root.split.threshold
        # Root gini must equal the best exact threshold of the chosen attr...
        __, expected = exact_best_threshold(
            f2_small.column(attr), f2_small.y, f2_small.n_classes
        )
        left = np.bincount(
            f2_small.y[f2_small.column(attr) <= thr], minlength=f2_small.n_classes
        )
        right = f2_small.class_counts() - left
        assert gini_partition(left, right) == pytest.approx(expected)
        # ...and no other continuous attribute can beat it.
        for j in f2_small.schema.continuous_indices():
            try:
                __, other = exact_best_threshold(
                    f2_small.column(j), f2_small.y, f2_small.n_classes
                )
            except ValueError:
                continue
            assert other >= expected - 1e-12

    def test_perfect_on_separable_data(self, two_blob, fast_config):
        tree = SprintBuilder(fast_config).build(two_blob).tree
        assert accuracy(tree, two_blob) == 1.0
        assert tree.depth <= 2

    def test_categorical_handling(self, mixed_types, fast_config):
        result = SprintBuilder(fast_config).build(mixed_types)
        assert accuracy(result.tree, mixed_types) == 1.0
        assert result.tree.root.split.attributes() == (1,)

    def test_single_dataset_scan(self, f2_small, fast_config):
        # SPRINT reads the training file once (presort); everything else is
        # attribute-list I/O.
        result = SprintBuilder(fast_config).build(f2_small)
        assert result.stats.io.scans == 1
        assert result.stats.io.aux_records_written > 0
        assert result.stats.io.aux_records_read > 0

    def test_attribute_list_io_grows_with_levels(self, f2_small, fast_config):
        shallow = SprintBuilder(fast_config.with_(max_depth=2)).build(f2_small)
        deep = SprintBuilder(fast_config.with_(max_depth=8)).build(f2_small)
        assert (
            deep.stats.io.aux_records_read > shallow.stats.io.aux_records_read
        )

    def test_hash_table_memory_tracked(self, f2_small, fast_config):
        result = SprintBuilder(fast_config).build(f2_small)
        # The root partition probes a hash of the full training set.
        assert result.stats.memory.peak >= 8 * f2_small.n_records

    def test_stop_conditions(self, f2_small, fast_config):
        cfg = fast_config.with_(max_depth=3, min_records=500)
        tree = SprintBuilder(cfg).build(f2_small).tree
        assert tree.depth <= 3
        for node in tree.iter_nodes():
            if not node.is_leaf:
                assert node.n_records >= 500
