"""Tests for the gini gradient and hill-climbing estimator (Eq. 4-5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.estimation import (
    gini_gradient,
    interval_estimate,
    interval_estimates,
)
from repro.core.gini import gini_partition

hist_arrays = hnp.arrays(
    np.float64,
    st.tuples(st.integers(2, 12), st.integers(2, 4)),
    elements=st.integers(min_value=0, max_value=200).map(float),
)


class TestGradient:
    def test_matches_finite_differences(self):
        # Equation 4 against a numeric derivative of gini^D.
        totals = np.array([400.0, 300.0, 300.0])
        x = np.array([120.0, 80.0, 40.0])

        def f(xv):
            return gini_partition(xv, totals - xv)

        grad = gini_gradient(x, totals)
        eps = 1e-5
        for i in range(3):
            xp = x.copy()
            xp[i] += eps
            xm = x.copy()
            xm[i] -= eps
            numeric = (f(xp) - f(xm)) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, rel=1e-4)

    def test_degenerate_points_are_zero(self):
        totals = np.array([10.0, 10.0])
        assert np.all(gini_gradient(np.zeros(2), totals) == 0)
        assert np.all(gini_gradient(totals, totals) == 0)


class TestIntervalEstimate:
    def test_at_most_boundary_values(self):
        # Equation 5 takes the min with both boundaries, so the estimate can
        # never exceed either boundary's gini.
        cum_left = np.array([50.0, 10.0])
        interval = np.array([20.0, 30.0])
        totals = np.array([100.0, 100.0])
        est = interval_estimate(cum_left, interval, totals)
        g_left = gini_partition(cum_left, totals - cum_left)
        cum_right = cum_left + interval
        g_right = gini_partition(cum_right, totals - cum_right)
        assert est <= min(g_left, g_right) + 1e-12

    def test_detects_interior_optimum(self):
        # All of class 0 in the interval can move left first: a perfect
        # interior split exists and the climb must see a much lower gini.
        cum_left = np.array([50.0, 0.0])
        interval = np.array([50.0, 50.0])
        totals = np.array([100.0, 100.0])
        est = interval_estimate(cum_left, interval, totals)
        assert est == pytest.approx(0.0, abs=1e-9)

    def test_empty_interval(self):
        cum_left = np.array([30.0, 20.0])
        totals = np.array([60.0, 60.0])
        est = interval_estimate(cum_left, np.zeros(2), totals)
        g_left = gini_partition(cum_left, totals - cum_left)
        assert est == pytest.approx(g_left)

    def test_atomic_skips_climb(self):
        cum_left = np.array([50.0, 0.0])
        interval = np.array([50.0, 50.0])
        totals = np.array([100.0, 100.0])
        est = interval_estimate(cum_left, interval, totals, atomic=True)
        # Without climbing, only the boundary values remain.
        cum_right = cum_left + interval
        expected = min(
            gini_partition(cum_left, totals - cum_left),
            gini_partition(cum_right, totals - cum_right),
        )
        assert est == pytest.approx(expected)


class TestVectorizedParity:
    @given(hist_arrays)
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_reference(self, hist):
        if hist.sum() == 0:
            return
        vec = interval_estimates(hist)
        totals = hist.sum(axis=0)
        cum_left = np.zeros(hist.shape[1])
        for i in range(hist.shape[0]):
            scalar = interval_estimate(cum_left, hist[i], totals)
            assert vec[i] == pytest.approx(scalar, abs=1e-9), f"interval {i}"
            cum_left += hist[i]

    @given(hist_arrays)
    @settings(max_examples=60, deadline=None)
    def test_estimates_bounded(self, hist):
        if hist.sum() == 0:
            return
        est = interval_estimates(hist)
        c = hist.shape[1]
        assert np.all(est >= -1e-12)
        assert np.all(est <= 1.0 - 1.0 / c + 1e-9)

    def test_atomic_mask(self):
        hist = np.array([[10.0, 0.0], [30.0, 30.0], [0.0, 10.0]])
        atomic = np.array([False, True, False])
        est_plain = interval_estimates(hist)
        est_atomic = interval_estimates(hist, atomic=atomic)
        # The middle interval cannot climb when atomic.
        assert est_atomic[1] >= est_plain[1]
        # Other intervals unchanged.
        assert est_atomic[0] == pytest.approx(est_plain[0])
        assert est_atomic[2] == pytest.approx(est_plain[2])

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="intervals, classes"):
            interval_estimates(np.zeros(5))
