"""Tests for split criteria."""

import numpy as np
import pytest

from repro.core.splits import CategoricalSplit, LinearSplit, NumericSplit
from repro.data.schema import Schema, categorical, continuous


def schema():
    return Schema(
        (continuous("salary"), continuous("commission"), categorical("car", ("a", "b", "c"))),
        ("no", "yes"),
    )


class TestNumericSplit:
    def test_goes_left_inclusive(self):
        s = NumericSplit(0, 5.0)
        X = np.array([[4.0, 0, 0], [5.0, 0, 0], [5.1, 0, 0]])
        np.testing.assert_array_equal(s.goes_left(X), [True, True, False])

    def test_describe(self):
        assert NumericSplit(0, 5.0).describe(schema()) == "salary <= 5"
        assert NumericSplit(1, 5.0).describe() == "x1 <= 5"

    def test_attributes(self):
        assert NumericSplit(1, 0.0).attributes() == (1,)


class TestCategoricalSplit:
    def test_goes_left_by_membership(self):
        s = CategoricalSplit(2, (True, False, True))
        X = np.array([[0, 0, 0.0], [0, 0, 1.0], [0, 0, 2.0]])
        np.testing.assert_array_equal(s.goes_left(X), [True, False, True])

    def test_describe_with_schema(self):
        s = CategoricalSplit(2, (True, False, True))
        assert s.describe(schema()) == "car in {a, c}"

    def test_describe_without_schema(self):
        s = CategoricalSplit(2, (False, True, False))
        assert s.describe() == "x2 in {1}"


class TestLinearSplit:
    def test_projection_and_routing(self):
        s = LinearSplit(0, 1, b=2.0, c=10.0)
        X = np.array([[2.0, 3.0, 0], [2.0, 4.1, 0]])
        np.testing.assert_allclose(s.project(X), [8.0, 10.2])
        np.testing.assert_array_equal(s.goes_left(X), [True, False])

    def test_negative_a(self):
        s = LinearSplit(0, 1, b=1.0, c=0.0, a=-1.0)
        X = np.array([[5.0, 2.0, 0], [1.0, 2.0, 0]])
        np.testing.assert_allclose(s.project(X), [-3.0, 1.0])
        np.testing.assert_array_equal(s.goes_left(X), [True, False])

    def test_describe(self):
        s = LinearSplit(0, 1, b=0.93, c=95796.0)
        assert s.describe(schema()) == "salary + 0.93*commission <= 95796"
        s2 = LinearSplit(0, 1, b=-0.5, c=1.0)
        assert "- 0.5*commission" in s2.describe(schema())

    def test_attributes(self):
        assert LinearSplit(0, 1, b=1.0, c=0.0).attributes() == (0, 1)
